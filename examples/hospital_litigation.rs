//! HIPAA record keeping with a litigation hold.
//!
//! A hospital stores patient records under HIPAA's six-year retention. A
//! malpractice suit places a court-ordered hold on one record (§4.2.2,
//! *Litigation*); the hold outlives the retention period, the record
//! survives until the court releases it, and only then is it shredded.
//!
//! Run with: `cargo run --example hospital_litigation`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Clock, VirtualClock};
use strongworm::{
    ReadOutcome, ReadVerdict, RegulatoryAuthority, RetentionPolicy, Verifier, WormConfig,
    WormServer,
};

const YEAR: u64 = 365 * 24 * 3600;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(9);
    let court = RegulatoryAuthority::generate(&mut rng, 512);
    let hospital = WormServer::new(WormConfig::test_small(), clock.clone(), court.public())?;
    let auditor = Verifier::new(hospital.keys(), Duration::from_secs(300), clock.clone())?;

    // Admit records for several patients.
    let charts: Vec<_> = (0..5)
        .map(|i| {
            hospital
                .write(
                    &[format!("patient-{i}: chart, imaging, prescriptions").as_bytes()],
                    RetentionPolicy::hipaa(),
                )
                .expect("admit")
        })
        .collect();
    println!(
        "admitted {} patient records under HIPAA (6y retention)",
        charts.len()
    );

    // Year 5: a malpractice suit. The court orders a hold on patient 2's
    // record lasting until year 9.
    clock.advance(Duration::from_secs(5 * YEAR));
    let disputed = charts[2];
    let hold_until = clock.now().after(Duration::from_secs(4 * YEAR));
    let credential = court.issue_hold(disputed, clock.now(), 2024_0042, hold_until);
    hospital.lit_hold(credential)?;
    println!("year 5: litigation hold placed on {disputed} until year 9");

    // Year 7: HIPAA retention has elapsed. Unheld records are deleted;
    // the disputed one survives.
    clock.advance(Duration::from_secs(2 * YEAR));
    hospital.tick()?;
    for &sn in &charts {
        let outcome = hospital.read(sn)?;
        let verdict = auditor.verify_read(sn, &outcome)?;
        if sn == disputed {
            assert_eq!(verdict, ReadVerdict::Intact { sn });
        } else {
            assert!(matches!(verdict, ReadVerdict::ConfirmedDeleted { .. }));
        }
    }
    println!("year 7: retention elapsed — all records deleted except the held one");

    // The hold is visible (and SCPU-signed) in the record's attributes.
    if let ReadOutcome::Data { vrd, .. } = hospital.read(disputed)? {
        let hold = vrd.attr.litigation_hold.as_ref().expect("hold present");
        println!(
            "        held record carries litigation id {} in its signed attributes",
            hold.litigation_id
        );
    }

    // Year 8: the suit settles; the court releases the hold. The record
    // is now past retention and the Retention Monitor deletes it promptly.
    clock.advance(Duration::from_secs(YEAR));
    let release = court.issue_release(disputed, clock.now(), 2024_0042);
    hospital.lit_release(release)?;
    clock.advance(Duration::from_secs(60));
    hospital.tick()?;

    let outcome = hospital.read(disputed)?;
    assert!(matches!(
        auditor.verify_read(disputed, &outcome)?,
        ReadVerdict::ConfirmedDeleted { .. }
    ));
    println!("year 8: hold released — record verifiably deleted and shredded");

    // An impostor's "court order" never works.
    let impostor = RegulatoryAuthority::generate(&mut rng, 512);
    let remaining = hospital.write(&[b"patient-5"], RetentionPolicy::hipaa())?;
    let forged = impostor.issue_hold(
        remaining,
        clock.now(),
        666,
        clock.now().after(Duration::from_secs(YEAR)),
    );
    assert!(hospital.lit_hold(forged).is_err());
    println!("forged hold credential rejected by the SCPU");
    Ok(())
}
