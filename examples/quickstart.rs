//! Quickstart: boot a Strong WORM store, commit a record, verify a read,
//! and watch retention-driven deletion produce a verifiable proof.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use strongworm::{
    ReadVerdict, RegulatoryAuthority, RetentionPolicy, Verifier, WormConfig, WormServer,
};
use wormstore::Shredder;

fn main() -> Result<(), Box<dyn Error>> {
    // A virtual trusted clock lets this example fast-forward retention
    // periods that would be years in production.
    let clock = VirtualClock::new();

    // The regulatory authority's key pair is the external trust anchor
    // for litigation credentials; its public half is burned into the SCPU.
    let mut rng = StdRng::seed_from_u64(42);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);

    // Boot the server: this generates the SCPU's witnessing keys inside
    // the (emulated) secure enclosure.
    let server = WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public())?;
    println!("server booted; SCPU keys generated inside the enclosure");

    // Clients only need the SCPU's public keys and a rough clock.
    let client = Verifier::new(server.keys(), Duration::from_secs(300), clock.clone())?;

    // Commit a record with a 90-day retention policy.
    let policy = RetentionPolicy::custom(Duration::from_secs(90 * 24 * 3600), Shredder::ZeroFill);
    let sn = server.write(&[b"Q2 financial statement, final"], policy)?;
    println!("committed record {sn}");

    // Read it back and verify end to end.
    let outcome = server.read(sn)?;
    match client.verify_read(sn, &outcome)? {
        ReadVerdict::Intact { sn } => println!("verified: {sn} is intact and SCPU-witnessed"),
        other => panic!("unexpected verdict: {other:?}"),
    }

    // Fast-forward past the retention period. The Retention Monitor
    // inside the SCPU wakes, signs a deletion proof, and orders the host
    // to shred the data.
    clock.advance(Duration::from_secs(91 * 24 * 3600));
    server.tick()?;

    let outcome = server.read(sn)?;
    match client.verify_read(sn, &outcome)? {
        ReadVerdict::ConfirmedDeleted { deleted_at } => match deleted_at {
            Some(t) => println!("verified: {sn} was rightfully deleted at {t}"),
            None => println!(
                "verified: {sn} was rightfully deleted (window/base evidence, \
                 per-record proof already compacted away)"
            ),
        },
        other => panic!("unexpected verdict: {other:?}"),
    }

    // A serial number that was never issued is provably absent.
    let ghost = strongworm::SerialNumber(999);
    let outcome = server.read(ghost)?;
    assert_eq!(
        client.verify_read(ghost, &outcome)?,
        ReadVerdict::ConfirmedNeverExisted
    );
    println!("verified: {ghost} provably never existed");
    Ok(())
}
