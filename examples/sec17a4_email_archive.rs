//! SEC Rule 17a-4 broker-dealer email archive.
//!
//! The paper's motivating workload: a financial firm must retain all
//! business communications for six years on WORM storage. Mornings bring
//! ingest bursts far above the SCPU's full-strength signing rate, so the
//! archive uses the deferred-strength scheme (§4.3): 512-bit witnesses in
//! the burst, strengthened to 1024-bit during the overnight idle window.
//!
//! Run with: `cargo run --release --example sec17a4_email_archive`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Clock, CostModel, VirtualClock};
use strongworm::{
    HashMode, ReadVerdict, RegulatoryAuthority, RetentionPolicy, Verifier, WitnessMode, WormConfig,
    WormServer,
};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(1);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);

    // Production-shaped config: real IBM 4764 cost model, burst hashing
    // trusted to the host (audited later), deferred witnesses by default.
    let mut config = WormConfig::test_small();
    config.device.cost_model = CostModel::ibm4764();
    config.hash_mode = HashMode::TrustHostHash;
    config.default_witness = WitnessMode::Deferred;
    config.store_capacity = 32 << 20;
    let archive = WormServer::new(config, clock.clone(), regulator.public())?;
    let mut compliance_officer =
        Verifier::new(archive.keys(), Duration::from_secs(300), clock.clone())?;

    // --- Morning burst: 500 emails arrive in minutes -----------------------
    let mut sns = Vec::new();
    for i in 0..500 {
        let body = format!(
            "From: trader{}@firm.example\nSubject: order ticket {i}\n\nBUY 100 XYZ @ 42.00",
            i % 7
        );
        let attachment = format!("ticket-{i}.pdf-bytes");
        let sn = archive.write(
            &[body.as_bytes(), attachment.as_bytes()],
            RetentionPolicy::sec17a4(),
        )?;
        sns.push(sn);
    }
    let burst_scpu_ms = archive.device_meter().busy_ns() as f64 / 1e6;
    println!(
        "burst: 500 emails witnessed in {:.0} ms of SCPU time ({:.0} emails/s burst rate)",
        burst_scpu_ms,
        500.0 / (burst_scpu_ms / 1000.0)
    );

    // During the burst records carry weak witnesses; clients can already
    // verify them (512-bit is safe for ~2 hours).
    let outcome = archive.read(sns[0])?;
    assert_eq!(
        compliance_officer.verify_read(sns[0], &outcome)?,
        ReadVerdict::Intact { sn: sns[0] }
    );
    println!("compliance spot-check during burst: weak witness verifies");

    // --- Overnight idle: strengthening + hash audits ------------------------
    let pending = archive.firmware_for_test().pending_strengthen();
    println!("overnight: {pending} witnesses queued for strengthening");
    clock.advance(Duration::from_secs(60 * 60));
    while archive.firmware_for_test().pending_strengthen() > 0 {
        // Grant the SCPU idle time in 100 ms slices, as a real scheduler
        // would between night-time requests.
        archive.idle(100_000_000)?;
    }
    println!("overnight: backlog strengthened to 1024-bit permanent signatures");
    assert!(
        archive.audit_failures().is_empty(),
        "host hashes audited clean"
    );

    // Weak-key rotations may have published new certificates.
    for cert in archive.weak_certs().to_vec() {
        let _ = compliance_officer.add_weak_cert(cert);
    }

    // Six months later the SEC examines a sample — strengthened witnesses
    // verify long after the weak lifetime lapsed.
    clock.advance(Duration::from_secs(180 * 24 * 3600));
    for &sn in &[sns[0], sns[250], sns[499]] {
        let outcome = archive.read(sn)?;
        assert_eq!(
            compliance_officer.verify_read(sn, &outcome)?,
            ReadVerdict::Intact { sn }
        );
    }
    println!("SEC exam at +6 months: sampled records verify as intact");

    // --- Six years later: retention elapses --------------------------------
    clock.advance(Duration::from_secs(6 * 365 * 24 * 3600));
    archive.tick()?;
    archive.compact()?;
    let outcome = archive.read(sns[100])?;
    assert!(matches!(
        compliance_officer.verify_read(sns[100], &outcome)?,
        ReadVerdict::ConfirmedDeleted { .. }
    ));
    println!(
        "after 6y retention: records provably deleted; VRDT holds {} entries + {} windows at t={}",
        archive.vrdt().resident_entries(),
        archive.vrdt().resident_windows(),
        clock.now(),
    );
    Ok(())
}
