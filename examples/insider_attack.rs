//! The insider attack, end to end.
//!
//! The paper's threat model (§2.1): Alice stores a record, later regrets
//! it, and — now acting as Mallory, with superuser powers and physical
//! disk access — tries to rewrite history. This example walks Bob, the
//! federal investigator, through detecting every move.
//!
//! Run with: `cargo run --example insider_attack`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Clock, VirtualClock};
use strongworm::{
    ReadVerdict, RegulatoryAuthority, RetentionPolicy, Verifier, VerifyError, WormConfig,
    WormServer,
};
use wormstore::Shredder;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(3);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server = WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public())?;
    let bob = Verifier::new(server.keys(), Duration::from_secs(300), clock.clone())?;

    // Alice legitimately stores b2 — and immediately regrets it.
    let policy =
        RetentionPolicy::custom(Duration::from_secs(6 * 365 * 24 * 3600), Shredder::ZeroFill);
    server.write(&[b"b1: ordinary memo"], policy)?;
    let b2 = server.write(&[b"b2: shred the Q3 numbers before the audit"], policy)?;
    server.refresh_head()?;
    println!("Alice stored {b2}; the SCPU witnessed it with metasig+datasig");

    // Attack 1: edit the bytes on the disk platter.
    println!("\n[attack 1] Mallory edits the record bytes directly on the medium");
    assert!(server.mallory().corrupt_record_data(b2));
    match bob.verify_read(b2, &server.read(b2)?) {
        Err(VerifyError::DataHashMismatch) => {
            println!("  -> Bob: datasig does not cover these bytes. DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }
    // Restore by flipping the byte back for the next scenarios.
    assert!(server.mallory().corrupt_record_data(b2));
    assert_eq!(
        bob.verify_read(b2, &server.read(b2)?)?,
        ReadVerdict::Intact { sn: b2 }
    );

    // Attack 2: shorten the retention period in the on-disk VRDT.
    println!("\n[attack 2] Mallory rewrites b2's retention to 'already expired'");
    let original_until = match server.read(b2)? {
        strongworm::ReadOutcome::Data { vrd, .. } => vrd.attr.retention_until,
        _ => unreachable!(),
    };
    server.mallory().rewrite_attributes(b2, |attr| {
        attr.retention_until = scpu::Timestamp::from_millis(0);
    });
    match bob.verify_read(b2, &server.read(b2)?) {
        Err(VerifyError::BadSignature("metasig")) => {
            println!("  -> Bob: attributes fail metasig. DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }
    server.mallory().rewrite_attributes(b2, |attr| {
        attr.retention_until = original_until;
    });

    // Attack 3: claim b2 never existed.
    println!("\n[attack 3] Mallory answers 'no such record'");
    let denial = server.mallory().deny_existence(b2).expect("head exists");
    match bob.verify_read(b2, &denial) {
        Err(VerifyError::HiddenRecord) => {
            println!("  -> Bob: the fresh head covers {b2}; denial is a lie. DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Attack 4: replay yesterday's head (from before b2 was written).
    println!("\n[attack 4] Mallory replays a pre-b2 head certificate");
    let old_head = server.vrdt().head().unwrap().clone();
    clock.advance(Duration::from_secs(600)); // time passes; the head goes stale
    let replay = server
        .mallory()
        .deny_existence_with_replayed_head(b2, old_head);
    match bob.verify_read(b2, &replay) {
        Err(VerifyError::StaleHead { age_ms }) => {
            println!("  -> Bob: head is {age_ms} ms old, beyond tolerance. DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Attack 5: forge a deletion proof.
    println!("\n[attack 5] Mallory fabricates a 'rightfully deleted' proof");
    server.refresh_head()?; // keep the head fresh for the evidence check
    let forged = server.mallory().forge_deletion(b2);
    match bob.verify_read(b2, &forged) {
        Err(VerifyError::BadSignature("deletion proof")) => {
            println!("  -> Bob: only the SCPU's deletion key d can sign that. DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Through it all, the honest record still verifies.
    assert_eq!(
        bob.verify_read(b2, &server.read(b2)?)?,
        ReadVerdict::Intact { sn: b2 }
    );
    println!(
        "\nb2 remains verifiably intact at t={} — history was not rewritten",
        clock.now()
    );
    Ok(())
}
