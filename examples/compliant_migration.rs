//! Compliant migration: moving a WORM store to new media while preserving
//! its security assurances.
//!
//! §1 lists *compliant migration* as a core requirement: "retention
//! periods are measured in years [...] mechanisms are required to
//! transfer information from obsolete to new storage media while
//! preserving the associated security assurances." Because every VRD is
//! self-certifying (SCPU signatures over SN, attributes, and data hash),
//! migration is: copy records to the new medium, rebuild descriptor
//! lists, carry the signatures verbatim — and let a client re-verify
//! everything against the same SCPU keys.
//!
//! Run with: `cargo run --example compliant_migration`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use strongworm::{
    ReadVerdict, RegulatoryAuthority, RetentionPolicy, Verifier, VerifyError, WormConfig,
    WormServer,
};
use wormstore::{MemDisk, RecordStore};

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(21);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let old_store = WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public())?;
    let auditor = Verifier::new(old_store.keys(), Duration::from_secs(300), clock.clone())?;

    // Fill the aging array.
    let policy = RetentionPolicy::sec17a4();
    let mut sns = Vec::new();
    for i in 0..50 {
        sns.push(old_store.write(&[format!("ledger-page-{i}").as_bytes()], policy)?);
    }
    println!("old array holds {} records", sns.len());

    // --- Migration ----------------------------------------------------------
    // Copy every active VR's data to the new medium and rebuild its RDL;
    // signatures move untouched (they cover SN + content, not location).
    let new_medium = RecordStore::new(MemDisk::unmetered(4 << 20));
    let mut migrated = Vec::new();
    for &sn in &sns {
        if let strongworm::ReadOutcome::Data { vrd, records, .. } = old_store.read(sn)? {
            let mut new_rdl = Vec::new();
            for r in &records {
                new_rdl.push(new_medium.write(r).expect("new medium has room"));
            }
            let mut moved = vrd.clone();
            moved.rdl = new_rdl;
            migrated.push((moved, records));
        }
    }
    println!("copied {} records to the new medium", migrated.len());

    // --- Post-migration audit ------------------------------------------------
    // The auditor re-verifies each migrated VR directly: same SCPU keys,
    // same signatures, new physical locations.
    for (vrd, records) in &migrated {
        auditor
            .verify_vrd(vrd, records)
            .expect("migrated record verifies against original SCPU signatures");
    }
    println!("auditor: all migrated records verify against the original SCPU keys");

    // A corrupted copy is caught exactly like tampering on the old array.
    let (vrd, mut records) = migrated[7].clone();
    let mut broken = records[0].to_vec();
    broken[0] ^= 0xFF;
    records[0] = broken.into();
    match auditor.verify_vrd(&vrd, &records) {
        Err(VerifyError::DataHashMismatch) => {
            println!("auditor: bit-rot / tampering during migration DETECTED");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // The old server keeps serving while the cut-over completes.
    let outcome = old_store.read(sns[0])?;
    assert_eq!(
        auditor.verify_read(sns[0], &outcome)?,
        ReadVerdict::Intact { sn: sns[0] }
    );
    println!("cut-over safe: either medium can serve verifiable reads");
    Ok(())
}
