//! Remote deployment shape: the WORM box serves branch-office clients
//! over TCP, and the clients trust nothing but the SCPU's signatures.
//!
//! The server side is three lines — boot a `WormServer`, wrap it in
//! `Arc`, hand it to `NetServer::bind`. Everything security-relevant
//! happens client-side: `RemoteWormClient` fetches the published keys,
//! builds a `Verifier`, and checks every response end-to-end, so a
//! compromised server (or wire) can at worst deny service.
//!
//! Run with: `cargo run --example remote_quickstart`

use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use strongworm::{ReadVerdict, RegulatoryAuthority, RetentionPolicy, WormConfig, WormServer};
use wormnet::{NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- Server side (machine room) ----------------------------------
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(21);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server = Arc::new(WormServer::new(
        WormConfig::test_small(),
        clock.clone(),
        regulator.public(),
    )?);
    let net = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())?;
    let addr = net.local_addr();
    println!("serving on {addr}");

    // ---- Client side (branch office) ---------------------------------
    let mut client = RemoteWormClient::connect(addr)?;
    // Fetch keys over the wire and build the verifier. (In a deployment
    // where the server may lie about its keys, validate them against
    // CA certificates obtained out of band instead.)
    let verifier = client.bootstrap_verifier(Duration::from_secs(300), clock.clone())?;

    // Write, then read back fully verified: signatures, data hash,
    // freshness — tampering anywhere between here and the SCPU fails.
    let policy = RetentionPolicy::custom(Duration::from_secs(60), Shredder::ZeroFill);
    let sn = client.write(&[b"contract scan", b"metadata page"], policy)?;
    let (verdict, _outcome) = client.read_verified(sn, &verifier)?;
    assert_eq!(verdict, ReadVerdict::Intact { sn });
    println!("remote write + verified read: {sn} intact");

    // Deletion is retention-driven, never unilateral: before expiry the
    // delete request provably does nothing...
    let outcome = client.delete(sn)?;
    assert_eq!(
        verifier.verify_read(sn, &outcome)?,
        ReadVerdict::Intact { sn }
    );
    println!("delete before expiry: record provably still intact");

    // ...and after expiry it yields SCPU-certified deletion evidence.
    clock.advance(Duration::from_secs(61));
    let outcome = client.delete(sn)?;
    assert!(matches!(
        verifier.verify_read(sn, &outcome)?,
        ReadVerdict::ConfirmedDeleted { .. }
    ));
    println!("delete after expiry: deletion proof verified");

    drop(client);
    net.shutdown();
    println!("server drained and stopped");
    Ok(())
}
