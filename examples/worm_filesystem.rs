//! A compliance filesystem on top of Strong WORM — the paper's §6
//! future-work direction, made concrete.
//!
//! A law firm's document-management system stores matter files in a
//! versioned WORM namespace: every save is an immutable, SCPU-witnessed
//! version; reads are verified; retention expires file versions with
//! proof; tampering anywhere under the tree is pinpointed by an audit.
//!
//! Run with: `cargo run --example worm_filesystem`

use std::error::Error;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use strongworm::{RegulatoryAuthority, RetentionPolicy, WormConfig};
use wormfs::{DirEntry, FsError, WormFs};
use wormstore::Shredder;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(17);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let mut fs = WormFs::new(WormConfig::test_small(), clock.clone(), regulator.public())?;

    // Build a matter tree. Saving twice to the same path creates version 1.
    let seven_years = RetentionPolicy::custom(
        Duration::from_secs(7 * 365 * 24 * 3600),
        Shredder::MultiPass { passes: 3 },
    );
    fs.create(
        "/matters/acme-v-globex/complaint.pdf",
        b"COMPLAINT draft",
        seven_years,
    )?;
    fs.create(
        "/matters/acme-v-globex/complaint.pdf",
        b"COMPLAINT as filed",
        seven_years,
    )?;
    fs.create(
        "/matters/acme-v-globex/exhibits/a.eml",
        b"Exhibit A email",
        seven_years,
    )?;
    fs.create(
        "/matters/acme-v-globex/notes.txt",
        b"strategy notes",
        RetentionPolicy::custom(Duration::from_secs(30 * 24 * 3600), Shredder::ZeroFill),
    )?;

    // Browse.
    println!("/matters/acme-v-globex:");
    for entry in fs.list("/matters/acme-v-globex")? {
        match entry {
            DirEntry::Dir(d) => println!("  {d}/"),
            DirEntry::File(f) => println!("  {f}"),
        }
    }

    // Reads return verified content; history is addressable.
    let latest = fs.read("/matters/acme-v-globex/complaint.pdf")?;
    assert_eq!(&latest.content[..], b"COMPLAINT as filed");
    let draft = fs.read_version("/matters/acme-v-globex/complaint.pdf", 0)?;
    assert_eq!(&draft.content[..], b"COMPLAINT draft");
    println!(
        "complaint.pdf: v{} verified ({} bytes); draft v0 still addressable",
        latest.version,
        latest.content.len()
    );

    // 60 days later the short-retention notes expire with proof; the
    // filings remain.
    clock.advance(Duration::from_secs(60 * 24 * 3600));
    fs.tick()?;
    match fs.read("/matters/acme-v-globex/notes.txt") {
        Err(FsError::Expired { .. }) => {
            println!("notes.txt: expired per 30-day policy (proof available)")
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Paralegal-with-root edits an exhibit on the raw disk...
    let sn = fs.versions("/matters/acme-v-globex/exhibits/a.eml")?[0].sn;
    assert!(fs.server_mut().mallory().corrupt_record_data(sn));

    // ...and the tree audit pinpoints it.
    let report = fs.audit()?;
    println!(
        "audit: {} live, {} expired, tampered: {:?}",
        report.live, report.expired, report.failures
    );
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].0.contains("a.eml"));
    Ok(())
}
