//! Production deployment shape: foreground request handling with the
//! maintenance daemon (Retention Monitor driver, witness strengthening,
//! window compaction) on a background thread.
//!
//! The server is shared as a plain `Arc<WormServer>` — no outer lock.
//! The daemon's maintenance passes serialize on the witness plane only,
//! so foreground reads stay concurrent with background work.
//!
//! Run with: `cargo run --example background_daemon`

use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use strongworm::{
    DaemonConfig, ReadVerdict, RegulatoryAuthority, RetentionDaemon, RetentionPolicy, Verifier,
    WitnessMode, WormConfig, WormServer,
};
use wormstore::Shredder;

fn main() -> Result<(), Box<dyn Error>> {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(12);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server = Arc::new(WormServer::new(
        WormConfig::test_small(),
        clock.clone(),
        regulator.public(),
    )?);
    let verifier = Verifier::new(server.keys(), Duration::from_secs(300), clock.clone())?;

    // Background maintenance: tick + idle + compact, every 10 ms.
    let daemon = RetentionDaemon::spawn(
        server.clone(),
        DaemonConfig {
            interval: Duration::from_millis(10),
            idle_budget_ns: 1_000_000_000,
            compact_every: 5,
            ..DaemonConfig::default()
        },
    );
    println!("maintenance daemon running: {}", daemon.is_running());

    // Foreground: a burst of deferred-witness writes (fast path).
    let policy = RetentionPolicy::custom(Duration::from_secs(3600), Shredder::ZeroFill);
    let mut sns = Vec::new();
    for i in 0..50 {
        let body = format!("burst record {i}");
        sns.push(server.write_with(&[body.as_bytes()], policy, 0, WitnessMode::Deferred)?);
    }
    println!("foreground: 50 deferred-witness records committed");

    // The daemon strengthens them in the background — wait for it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if server.firmware_for_test().pending_strengthen() == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "strengthening stalled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("background: all witnesses strengthened to permanent signatures");

    // Reads verify at full strength without the foreground ever having
    // driven maintenance itself — and without waiting on it either.
    for &sn in &[sns[0], sns[49]] {
        let outcome = server.read(sn)?;
        assert_eq!(
            verifier.verify_read(sn, &outcome)?,
            ReadVerdict::Intact { sn }
        );
    }
    println!("foreground: spot-checked records verify as intact");

    // Short-retention record: the daemon deletes it once the (virtual)
    // clock passes the deadline.
    let fleeting = server.write(
        &[b"temporary note"],
        RetentionPolicy::custom(Duration::from_secs(10), Shredder::ZeroFill),
    )?;
    clock.advance(Duration::from_secs(11));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if server.read(fleeting)?.kind() == "deleted" {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "deletion stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("background: expired record deleted with proof");

    daemon.stop()?;
    println!("daemon stopped cleanly");
    Ok(())
}
