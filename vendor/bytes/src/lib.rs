//! Offline stand-in for the `bytes` crate.
//!
//! Provides the cheaply-cloneable immutable byte buffer [`Bytes`] with the
//! subset of the real API this workspace uses. Clones share one allocation
//! via `Arc`, matching the real crate's O(1) clone semantics (without the
//! zero-copy slicing machinery, which nothing here needs).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies `self` into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the subrange `range` as a new `Bytes`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrips_and_sharing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn static_and_slice() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(&b.slice(0..5)[..], b"hello");
        assert_eq!(format!("{b:?}"), "b\"hello world\"");
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
