//! SHA-256 hardware acceleration via the x86 SHA extensions (SHA-NI).
//!
//! The workspace's `wormcrypt` crate implements SHA-256 from scratch and
//! forbids `unsafe`; this vendored shim quarantines the one thing that
//! genuinely needs it — the `_mm_sha256*` intrinsics — behind a safe
//! function with runtime CPU detection. Callers keep their portable
//! scalar compression loop and treat this crate as an opportunistic
//! fast path:
//!
//! ```
//! let mut state = [0u32; 8];
//! let blocks = [0u8; 128];
//! if !shani::sha256_compress(&mut state, &blocks) {
//!     // CPU (or target) lacks SHA-NI: run the scalar rounds instead.
//! }
//! ```
//!
//! The implementation is the canonical SHA-NI schedule: message words
//! and round constants feed `SHA256RNDS2` four rounds at a time, with
//! `SHA256MSG1`/`SHA256MSG2` computing the extended message schedule.
//! One invocation processes any number of whole 64-byte blocks, so the
//! per-call detection/dispatch cost amortizes across a full buffer.

/// The SHA-256 round constants (FIPS 180-4 §4.2.2), laid out flat so
/// four at a time can be loaded straight into a vector register.
#[cfg(target_arch = "x86_64")]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Runs the SHA-256 compression function over `blocks` (a concatenation
/// of whole 64-byte blocks), updating `state` in place.
///
/// Returns `true` if the blocks were processed with the hardware
/// instructions. Returns `false` — leaving `state` untouched — when the
/// target is not x86-64, the running CPU lacks the SHA extensions, or
/// `blocks` is not a multiple of 64 bytes; the caller must then fall
/// back to its own compression loop.
pub fn sha256_compress(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    if blocks.len() % 64 != 0 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse4.1")
            && std::arch::is_x86_feature_detected!("ssse3")
        {
            // SAFETY: the required target features were just verified at
            // runtime; the function only reads `blocks` (whole 64-byte
            // chunks) and writes the eight state words.
            unsafe { compress_ni(state, blocks) };
            return true;
        }
    }
    let _ = state;
    false
}

/// Whether the running CPU can execute the accelerated path at all.
/// Useful for benchmarks that want to label which engine produced a
/// number.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse4.1")
            && std::arch::is_x86_feature_detected!("ssse3")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The SHA-NI compression loop. State is repacked into the (ABEF, CDGH)
/// register layout `SHA256RNDS2` expects, all blocks are processed, and
/// the state is unpacked back to the FIPS word order.
///
/// # Safety
///
/// Caller must ensure the CPU supports the `sha`, `sse4.1`, and `ssse3`
/// target features, and that `blocks.len()` is a multiple of 64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha", enable = "sse2", enable = "ssse3", enable = "sse4.1")]
unsafe fn compress_ni(state: &mut [u32; 8], blocks: &[u8]) {
    use std::arch::x86_64::*;

    /// Four rounds of SHA-256: `wk` holds W[i..i+4] + K[i..i+4].
    #[inline(always)]
    unsafe fn rounds4(abef: &mut __m128i, cdgh: &mut __m128i, wk: __m128i) {
        *cdgh = _mm_sha256rnds2_epu32(*cdgh, *abef, wk);
        let hi = _mm_shuffle_epi32(wk, 0x0E);
        *abef = _mm_sha256rnds2_epu32(*abef, *cdgh, hi);
    }

    /// Extends the message schedule: given W[i-16..i], returns W[i..i+4].
    #[inline(always)]
    unsafe fn schedule(w0: __m128i, w1: __m128i, w2: __m128i, w3: __m128i) -> __m128i {
        let t = _mm_sha256msg1_epu32(w0, w1);
        let t = _mm_add_epi32(t, _mm_alignr_epi8(w3, w2, 4));
        _mm_sha256msg2_epu32(t, w3)
    }

    #[inline(always)]
    unsafe fn k4(group: usize) -> __m128i {
        _mm_loadu_si128(K.as_ptr().add(group * 4).cast())
    }

    // Big-endian message words -> native byte shuffle mask.
    let be_mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

    // Repack (a..h) into the ABEF/CDGH register layout.
    let tmp = _mm_loadu_si128(state.as_ptr().cast()); // DCBA
    let st1 = _mm_loadu_si128(state.as_ptr().add(4).cast()); // HGFE
    let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
    let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
    let mut abef = _mm_alignr_epi8(tmp, st1, 8); // ABEF
    let mut cdgh = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

    for block in blocks.chunks_exact(64) {
        let abef_save = abef;
        let cdgh_save = cdgh;

        let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), be_mask);
        let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), be_mask);
        let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), be_mask);
        let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), be_mask);

        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w0, k4(0)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w1, k4(1)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w2, k4(2)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w3, k4(3)));
        for group in 4..16 {
            let wn = schedule(w0, w1, w2, w3);
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(wn, k4(group)));
            w0 = w1;
            w1 = w2;
            w2 = w3;
            w3 = wn;
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);
    }

    // Unpack back to (a..h) word order.
    let tmp = _mm_shuffle_epi32(abef, 0x1B); // FEBA
    let st1 = _mm_shuffle_epi32(cdgh, 0xB1); // DCHG
    let dcba = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
    let hgfe = _mm_alignr_epi8(st1, tmp, 8); // HGFE
    _mm_storeu_si128(state.as_mut_ptr().cast(), dcba);
    _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hgfe);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference scalar compression (FIPS 180-4 §6.2.2), kept here so
    /// the accelerated path is tested against an independent
    /// implementation rather than its own output.
    fn compress_scalar(state: &mut [u32; 8], block: &[u8]) {
        const KS: [u32; 64] = super::K;
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(KS[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    const IV: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    #[test]
    fn rejects_partial_blocks() {
        let mut state = IV;
        assert!(!sha256_compress(&mut state, &[0u8; 63]));
        assert_eq!(state, IV, "state must be untouched on refusal");
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut state = IV;
        // Zero blocks is a multiple of 64; supported CPUs report true
        // and leave the state alone.
        let did = sha256_compress(&mut state, &[]);
        assert_eq!(did, available());
        assert_eq!(state, IV);
    }

    #[test]
    fn matches_scalar_reference_across_block_counts() {
        if !available() {
            eprintln!("skipping: CPU lacks SHA extensions");
            return;
        }
        // Deterministic pseudo-random input, no RNG dependency.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        };
        for blocks in [1usize, 2, 3, 4, 7, 16, 64] {
            let data: Vec<u8> = (0..blocks * 64).map(|_| step()).collect();
            let mut ni_state = IV;
            assert!(sha256_compress(&mut ni_state, &data));
            let mut ref_state = IV;
            for block in data.chunks_exact(64) {
                compress_scalar(&mut ref_state, block);
            }
            assert_eq!(ni_state, ref_state, "divergence at {blocks} blocks");
        }
    }

    #[test]
    fn abc_single_block_vector() {
        if !available() {
            eprintln!("skipping: CPU lacks SHA extensions");
            return;
        }
        // "abc" padded to one block; digest from FIPS 180-4 appendix.
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[63] = 24; // bit length
        let mut state = IV;
        assert!(sha256_compress(&mut state, &block));
        let digest: Vec<u8> = state.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert_eq!(
            digest,
            [
                0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40, 0xde, 0x5d, 0xae,
                0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61,
                0xf2, 0x00, 0x15, 0xad
            ]
        );
    }
}
