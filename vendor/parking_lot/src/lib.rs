//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std lock
//! — a thread panicked while holding it — is propagated as a panic, which
//! matches how this workspace treats lock poisoning: unrecoverable).
//! Mapped guards are provided via a (guard, raw pointer) pair; the
//! pointer is derived from the guard and lives strictly inside it, so the
//! access is sound for the guard's lifetime.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Maps the guard to a component of the protected data.
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedMutexGuard<'a, T, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        let mut inner = guard.inner;
        let ptr: *mut U = f(&mut inner);
        MappedMutexGuard { _guard: inner, ptr }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A guard projected to a component of the locked data.
pub struct MappedMutexGuard<'a, T: ?Sized, U: ?Sized> {
    _guard: sync::MutexGuard<'a, T>,
    ptr: *mut U,
}

impl<T: ?Sized, U: ?Sized> Deref for MappedMutexGuard<'_, T, U> {
    type Target = U;

    fn deref(&self) -> &U {
        // Sound: `ptr` was derived from the exclusive borrow held by
        // `_guard`, which is alive for the guard's whole lifetime.
        unsafe { &*self.ptr }
    }
}

impl<T: ?Sized, U: ?Sized> DerefMut for MappedMutexGuard<'_, T, U> {
    fn deref_mut(&mut self) -> &mut U {
        unsafe { &mut *self.ptr }
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Maps the guard to a component of the protected data.
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedRwLockReadGuard<'a, T, U>
    where
        F: FnOnce(&T) -> &U,
    {
        let inner = guard.inner;
        let ptr: *const U = f(&inner);
        MappedRwLockReadGuard { _guard: inner, ptr }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// A read guard projected to a component of the locked data.
pub struct MappedRwLockReadGuard<'a, T: ?Sized, U: ?Sized> {
    _guard: sync::RwLockReadGuard<'a, T>,
    ptr: *const U,
}

impl<T: ?Sized, U: ?Sized> Deref for MappedRwLockReadGuard<'_, T, U> {
    type Target = U;

    fn deref(&self) -> &U {
        // Sound: `ptr` was derived from the shared borrow held by
        // `_guard`, which is alive for the guard's whole lifetime.
        unsafe { &*self.ptr }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_map() {
        let m = Mutex::new((1, String::from("x")));
        let mut s = MutexGuard::map(m.lock(), |t| &mut t.1);
        s.push('y');
        drop(s);
        assert_eq!(m.lock().1, "xy");
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let g1 = l.read();
        let g2 = l.read();
        assert_eq!(*g1 + *g2, 14);
        drop((g1, g2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_read_map() {
        let l = RwLock::new(vec![1, 2, 3]);
        let first = RwLockReadGuard::map(l.read(), |v| &v[0]);
        assert_eq!(*first, 1);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the data is still there.
        assert_eq!(*m.lock(), 1);
    }
}
