//! Offline vendored readiness shim for a minimal reactor.
//!
//! The workspace builds with no registry access, so instead of `mio`
//! or `polling` this crate wraps the two syscalls a single-threaded
//! readiness loop actually needs behind a safe API:
//!
//! * [`poll`] — `poll(2)` over a caller-owned slice of [`PollFd`]s.
//!   Level-triggered, no registration state, O(n) per wait: exactly
//!   right for a worker owning tens-to-hundreds of connections, and
//!   portable to every unix without an epoll/kqueue split.
//! * [`wake_pipe`] — a nonblocking self-pipe, so another thread can
//!   interrupt a `poll` sleep (new connection handed off, shutdown).
//!
//! All `unsafe` is contained here; callers see only safe functions on
//! raw fds they already own. The shim never closes an fd it did not
//! create (the waker pipe fds are the only ones it owns and drops).

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Readiness: fd has bytes to read (or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Readiness: fd can accept writes without blocking.
pub const POLLOUT: i16 = 0x004;
/// Condition: error on the fd (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Condition: peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// Condition: fd not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One fd's interest set and, after [`poll`] returns, its readiness.
///
/// Layout matches `struct pollfd` exactly so a `&mut [PollFd]` can be
/// handed to the kernel as-is.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `events` (a bitmask of [`POLLIN`] / [`POLLOUT`]) on
    /// `fd`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The fd this entry polls.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Readable (or: a connection is waiting to be accepted)?
    pub fn readable(&self) -> bool {
        self.revents & POLLIN != 0
    }

    /// Writable without blocking?
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Error, hangup, or invalid-fd condition? Callers should attempt
    /// a read anyway (a hangup may still have buffered bytes) and let
    /// the read's result classify the failure.
    pub fn errored(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Any readiness or condition at all?
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    #[cfg(target_os = "linux")]
    type NFds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::ffi::c_int) -> std::ffi::c_int;
        fn pipe(fds: *mut std::ffi::c_int) -> std::ffi::c_int;
        fn fcntl(
            fd: std::ffi::c_int,
            cmd: std::ffi::c_int,
            arg: std::ffi::c_int,
        ) -> std::ffi::c_int;
        fn read(fd: std::ffi::c_int, buf: *mut std::ffi::c_void, count: usize) -> isize;
        fn write(fd: std::ffi::c_int, buf: *const std::ffi::c_void, count: usize) -> isize;
        fn close(fd: std::ffi::c_int) -> std::ffi::c_int;
    }

    const F_SETFL: std::ffi::c_int = 4;
    const F_GETFL: std::ffi::c_int = 3;
    const O_NONBLOCK: std::ffi::c_int = 0o4000;

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice whose
        // element layout is `struct pollfd` (`repr(C)`, i32/i16/i16);
        // the kernel reads `events` and writes `revents` within the
        // slice bounds given by `len()`.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                // A signal cut the sleep short: report "nothing ready"
                // and let the caller's loop re-poll.
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn pipe_impl() -> io::Result<(i32, i32)> {
        let mut fds = [0 as std::ffi::c_int; 2];
        // SAFETY: `fds` is a valid 2-element array the kernel fills.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // SAFETY: `fd` was just returned by `pipe`; F_GETFL/F_SETFL
            // only toggle status flags on it.
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let e = io::Error::last_os_error();
                close_impl(fds[0]);
                close_impl(fds[1]);
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    pub fn drain_impl(fd: i32) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a valid writable buffer of the length
            // passed; the fd is the caller's open pipe read end.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                // Empty (EAGAIN), closed, or a transient error: in every
                // case the pipe is as drained as it is going to get.
                return;
            }
        }
    }

    pub fn wake_impl(fd: i32) {
        let buf = [1u8];
        // SAFETY: one readable byte from a live buffer; the fd is the
        // caller's open pipe write end. A full pipe (EAGAIN) is fine —
        // the sleeper is already due to wake.
        let _ = unsafe { write(fd, buf.as_ptr().cast(), 1) };
    }

    pub fn close_impl(fd: i32) {
        // SAFETY: only ever called on pipe fds this crate created and
        // is dropping; double-close is prevented by ownership.
        let _ = unsafe { close(fd) };
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    pub fn poll_impl(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "netpoll requires a unix host",
        ))
    }

    pub fn pipe_impl() -> io::Result<(i32, i32)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "netpoll requires a unix host",
        ))
    }

    pub fn drain_impl(_fd: i32) {}
    pub fn wake_impl(_fd: i32) {}
    pub fn close_impl(_fd: i32) {}
}

/// Waits until at least one entry is ready or `timeout` elapses.
///
/// Level-triggered: an fd that stays readable reports readable on
/// every call until drained. `None` blocks indefinitely. Returns the
/// number of entries with any readiness set (0 on timeout or on a
/// signal interrupting the sleep).
///
/// # Errors
///
/// The underlying `poll(2)` failure, `Interrupted` excepted.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(0),
    };
    sys::poll_impl(fds, timeout_ms)
}

/// The read end of a waker pipe: registered in a poll set so wakes
/// interrupt the sleep. Closes its fd on drop.
#[derive(Debug)]
pub struct WakeReader {
    fd: i32,
}

impl WakeReader {
    /// The fd to include (with [`POLLIN`]) in the poll set.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Discards every pending wake byte, so a level-triggered poll
    /// stops reporting the pipe readable until the next wake.
    pub fn drain(&self) {
        sys::drain_impl(self.fd);
    }
}

impl Drop for WakeReader {
    fn drop(&mut self) {
        sys::close_impl(self.fd);
    }
}

/// The write end of a waker pipe. `Send + Sync`: any thread may wake
/// the sleeper. Closes its fd on drop.
#[derive(Debug)]
pub struct WakeWriter {
    fd: i32,
}

impl WakeWriter {
    /// Interrupts the reader's current (or next) poll sleep. Never
    /// blocks and never fails: a full pipe already guarantees a wake.
    pub fn wake(&self) {
        sys::wake_impl(self.fd);
    }
}

impl Drop for WakeWriter {
    fn drop(&mut self) {
        sys::close_impl(self.fd);
    }
}

/// Creates a nonblocking self-pipe: wakes written to the writer make
/// the reader's fd poll readable.
///
/// # Errors
///
/// The underlying `pipe(2)`/`fcntl(2)` failure (fd exhaustion).
pub fn wake_pipe() -> io::Result<(WakeReader, WakeWriter)> {
    let (r, w) = sys::pipe_impl()?;
    Ok((WakeReader { fd: r }, WakeWriter { fd: w }))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_reports_listener_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _conn = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn poll_reports_stream_readable_and_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable());
    }

    #[test]
    fn waker_interrupts_sleep_and_drains() {
        let (reader, writer) = wake_pipe().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            writer.wake();
            writer
        });
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        reader.drain();
        // Drained: the next poll times out instead of reporting ready.
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        // Multiple wakes coalesce into a single readable drain.
        let writer = handle.join().unwrap();
        writer.wake();
        writer.wake();
        writer.wake();
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        reader.drain();
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn hangup_reports_a_condition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        // EOF surfaces as POLLIN (read returns 0) and/or POLLHUP.
        assert!(fds[0].readable() || fds[0].errored());
        let mut buf = [0u8; 8];
        assert_eq!((&server_side).read(&mut buf).unwrap(), 0);
    }
}
