//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` subset this workspace uses: bounded MPMC
//! channels backed by `std::sync::mpsc::sync_channel` with the
//! receiving half shared behind a mutex, so `Receiver` is `Clone` like
//! the real crate's and a worker pool can compete for messages.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded channels (std-backed subset).

    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (errors if disconnected).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }

        /// Enqueues without blocking; errors if the channel is full or
        /// disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a bounded channel. Cloneable: clones
    /// compete for messages (each message is delivered once), matching
    /// the real crate's MPMC semantics.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            // A poisoned mutex means a holder panicked *between* mpsc
            // calls; the channel itself is still consistent.
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a message arrives (errors if disconnected).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// Note: clones contend on one lock, so a waiter can hold the
        /// lock for up to `timeout` while sibling clones block longer.
        /// The workspace uses short poll timeouts, where this is fine.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The channel disconnected before the message could be sent.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Failure modes of [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// All senders dropped before a message arrived.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Failure modes of [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// Failure modes of [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn bounded_roundtrip() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(42).unwrap();
            assert_eq!(rx.recv().unwrap(), 42);
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            // The queued message keeps `try_send` failing as disconnected.
            assert!(matches!(
                tx.try_send(3),
                Err(TrySendError::Disconnected(3)) | Err(TrySendError::Full(3))
            ));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn recv_timeout_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = bounded::<u32>(0);
            let h = std::thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
            h.join().unwrap();
        }
    }
}
