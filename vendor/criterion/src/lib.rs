//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API that the workspace's bench
//! targets use, measuring plain wall-clock means (warm-up, then timed
//! iterations within a time budget) and printing one line per benchmark:
//!
//! ```text
//! bench <group>/<id> ... <mean> ns/iter (<n> iters)[, <throughput>]
//! ```
//!
//! No statistical analysis, outlier detection, HTML reports, or saved
//! baselines — this exists so `cargo bench` produces usable numbers in
//! an environment without crates.io access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            None,
            &mut f,
        );
        self
    }
}

/// Named identifier within a group (`BenchmarkId::from_parameter(n)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Identifier with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Units processed per iteration, for derived rates in the output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (ignored: setup is always run
/// per batch and excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small inputs, batched.
    SmallInput,
    /// Large inputs, batched.
    LargeInput,
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` against a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (numbers are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    min_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: untimed iterations within the warm-up budget.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < self.measurement_time {
            black_box(routine());
            iters += 1;
            if iters >= self.min_iters && start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: one untimed round.
        black_box(routine(setup()));

        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        while iters < self.min_iters || busy < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
            if iters >= self.min_iters && busy >= self.measurement_time {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = busy;
    }
}

fn run_one<F>(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        warm_up_time,
        measurement_time,
        min_iters: sample_size.max(1) as u64,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {id} ... no iterations recorded");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mbps = n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0);
            format!(", {mbps:.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / ns_per_iter * 1e9;
            format!(", {eps:.0} elem/s")
        }
    });
    println!(
        "bench {id} ... {ns_per_iter:.0} ns/iter ({} iters){}",
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter_batched(|| n, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(count >= 5);
    }
}
