//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate reimplements the subset of proptest's API that the
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_filter`/`boxed`, `any::<T>()` for primitives and
//! byte arrays, integer-range and tuple strategies, a small regex-subset
//! string strategy, `collection::vec`, `option::of`, `sample::Index`,
//! weighted `prop_oneof!`, and the `proptest!`/`prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **no shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized;
//! - **deterministic seeding** — cases are derived from the test name
//!   and case index, so runs are reproducible without a regressions
//!   file (existing `.proptest-regressions` files are ignored);
//! - the string strategy supports only the regex subset the tests use:
//!   concatenations of `[...]`/`\PC`/literal atoms with `{m}`/`{m,n}`
//!   repetition.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case-running machinery behind the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`cases` only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases that must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vacuous (`prop_assume!` failed): try another.
        Reject(String),
        /// A `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    /// Deterministic per-case RNG: seeded from the test name (FNV-1a)
    /// and the case ordinal, so failures reproduce across runs.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Runs `case_fn` until `config.cases` cases pass. `case_fn` does
    /// both generation and checking (the macro inlines both), so a
    /// rejected case simply draws a fresh seed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case_fn: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = u64::from(config.cases) * 16 + 256;
        while passed < config.cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({passed}/{} passed after {attempts} attempts)",
                    config.cases
                );
            }
            let mut rng = case_rng(name, attempts);
            match case_fn(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case seed #{attempts}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::RngCore;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// plain value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Discards generated values failing `f` (regenerating in place).
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                f,
            }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}': rejected 1000 candidates", self.whence)
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Uniform draw from an integer range via `i128` arithmetic (all
    /// workspace integer types fit; modulo bias is irrelevant here).
    fn draw_i128(rng: &mut StdRng, lo: i128, hi_incl: i128) -> i128 {
        debug_assert!(lo <= hi_incl);
        let span = (hi_incl - lo + 1) as u128;
        let r = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        lo + (r % span) as i128
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    draw_i128(rng, self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    draw_i128(rng, *self.start() as i128, *self.end() as i128) as $t
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace fuzzes with.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Function-pointer-backed strategy used by the `Arbitrary` impls.
    pub struct FnStrategy<T>(pub fn(&mut StdRng) -> T);

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! arb_prims {
        ($($t:ty => $f:expr),+ $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;

                fn arbitrary() -> Self::Strategy {
                    FnStrategy($f as fn(&mut StdRng) -> $t)
                }
            }
        )+};
    }

    arb_prims! {
        u8 => |r| r.next_u64() as u8,
        u16 => |r| r.next_u64() as u16,
        u32 => |r| r.next_u64() as u32,
        u64 => |r| r.next_u64(),
        usize => |r| r.next_u64() as usize,
        i8 => |r| r.next_u64() as i8,
        i16 => |r| r.next_u64() as i16,
        i32 => |r| r.next_u64() as i32,
        i64 => |r| r.next_u64() as i64,
        isize => |r| r.next_u64() as isize,
        bool => |r| r.next_u64() & 1 == 1,
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        type Strategy = FnStrategy<[u8; N]>;

        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng| {
                let mut a = [0u8; N];
                rng.fill_bytes(&mut a);
                a
            })
        }
    }
}

pub mod sample {
    //! Position sampling (`any::<prop::sample::Index>()`).

    use crate::arbitrary::{Arbitrary, FnStrategy};

    /// A deferred index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of `size` elements (`size > 0`),
        /// returning a position in `0..size`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        type Strategy = FnStrategy<Index>;

        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng| Index(rand::RngCore::next_u64(rng)))
        }
    }
}

pub mod collection {
    //! `vec(element, size)`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `of(strategy)` — generates `Option`s.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Generates `None` one time in four, `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Strategy for `Option`s over `inner`'s values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Tiny regex-subset string generator backing `&str` strategies.
    //!
    //! Supported: concatenation of atoms, where an atom is a `[...]`
    //! character class (literals and `a-z` ranges), `\PC` (any
    //! non-control character; sampled from printable ASCII plus a few
    //! multibyte code points), or a literal character; each atom may
    //! carry `{m}` or `{m,n}` repetition. This covers every pattern in
    //! the workspace's tests; anything else panics loudly.

    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Non-control sample alphabet for `\PC`: all printable ASCII
    /// (including '/' and space, which matter for path fuzzing) plus a
    /// few multibyte characters to exercise UTF-8 boundaries.
    fn pc_alphabet() -> Vec<char> {
        let mut v: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        v.extend(['é', 'ß', 'ø', 'λ', '中', '日', '🦀']);
        v
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut alphabet = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i + 1..].first() == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "inverted class range");
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class");
        (alphabet, i + 1) // skip ']'
    }

    fn parse_repeat(chars: &[char], mut i: usize) -> (usize, usize, usize) {
        if chars.get(i) != Some(&'{') {
            return (1, 1, i);
        }
        i += 1;
        let mut lo = 0usize;
        while chars[i].is_ascii_digit() {
            lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
            i += 1;
        }
        let hi = if chars[i] == ',' {
            i += 1;
            let mut hi = 0usize;
            while chars[i].is_ascii_digit() {
                hi = hi * 10 + chars[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
            hi
        } else {
            lo
        };
        assert!(chars[i] == '}', "malformed repetition");
        (lo, hi, i + 1)
    }

    /// Generates one string matching `pat` (see module docs for the
    /// supported subset).
    pub fn generate_from_pattern(pat: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let (a, next) = parse_class(&chars, i + 1);
                    i = next;
                    a
                }
                '\\' => match (chars.get(i + 1), chars.get(i + 2)) {
                    (Some('P'), Some('C')) => {
                        i += 3;
                        pc_alphabet()
                    }
                    (Some(&c), _) => {
                        i += 2;
                        vec![c]
                    }
                    (None, _) => panic!("dangling backslash in pattern {pat:?}"),
                },
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_repeat(&chars, i);
            i = next;
            assert!(!alphabet.is_empty(), "empty alphabet in pattern {pat:?}");
            let n = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[(rng.next_u64() % alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod prelude {
    //! Glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Qualified-path access (`prop::sample::Index` etc.).
        pub use crate::{collection, option, sample, strategy, string};
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {left:?}\n right: {right:?}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left != right`\n  both: {left:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  both: {left:?}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (vacuous input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `name in strategy` argument is drawn
/// fresh per case and the body runs under `prop_assert*`/`prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::case_rng("ranges", 1);
        for _ in 0..200 {
            let v = Strategy::generate(&(10u64..500), &mut rng);
            assert!((10..500).contains(&v));
            let w = Strategy::generate(&(1u8..=255), &mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn vec_and_tuple_shapes() {
        let mut rng = crate::test_runner::case_rng("shapes", 1);
        let s = crate::collection::vec((0u64..30, 0u64..12), 1..12);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..12).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 30 && b < 12);
            }
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut rng = crate::test_runner::case_rng("regex", 1);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-zA-Z0-9_.-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
            let t = Strategy::generate(&"\\PC{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_and_filter_and_option() {
        let mut rng = crate::test_runner::case_rng("oneof", 1);
        let s = prop_oneof![
            4 => (0u32..10).prop_map(|v| v as u64),
            1 => Just(99u64),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v < 10 || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just);

        let f = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&f, &mut rng) % 2, 0);
        }

        let o = crate::option::of(0u32..5);
        let mut nones = 0;
        for _ in 0..200 {
            if Strategy::generate(&o, &mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 10 && nones < 120);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(a in 0u64..50, b in any::<bool>(), bytes in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(b, b);
            prop_assert!(bytes.len() < 8, "len was {}", bytes.len());
        }
    }
}
