//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`rngs::mock::StepRng`]. `StdRng` here is a keyed xoshiro256**
//! generator — deterministic per seed, statistically strong enough for
//! tests, benchmarks, and Miller–Rabin witnesses, and explicitly **not**
//! a cryptographically secure generator (neither is the real `StdRng`
//! guaranteed to be stable across versions; all workspace uses are
//! test/simulation RNGs).

#![forbid(unsafe_code)]

use core::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this stub).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random data, reporting failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` convenience seed.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as rand_core does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic generator (xoshiro256** core) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            // Diffuse every seed byte into every state word with a
            // splitmix64 chain (the seeding procedure the xoshiro authors
            // recommend). Plain word-copying would leave the *first* output
            // a function of s[1] alone, so seeds differing only elsewhere
            // would collide on their first draw; the chain also guarantees
            // a non-zero state (zero is a xoshiro fixed point).
            let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
            for chunk in seed.chunks_exact(8) {
                acc ^= u64::from_le_bytes(chunk.try_into().unwrap());
                acc = splitmix64(&mut acc);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut acc);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    pub mod mock {
        //! Mock generators for deterministic tests.

        use super::super::RngCore;

        /// Arithmetic-sequence generator (mirror of
        /// `rand::rngs::mock::StepRng`).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Generator yielding `initial`, `initial + increment`, ...
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.step);
                r
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 13];
        r.try_fill_bytes(&mut buf2).unwrap();
        assert_ne!(buf, buf2);
    }

    #[test]
    fn step_rng_steps() {
        let mut s = StepRng::new(10, 3);
        assert_eq!(s.next_u64(), 10);
        assert_eq!(s.next_u64(), 13);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
