//! Firmware interface.
//!
//! The IBM 4764 "can be custom programmed to run arbitrary code" (§2.2);
//! the Strong WORM logic is one such program. [`Applet`] is the contract a
//! firmware image implements to run inside a [`Device`](crate::Device):
//! it receives typed requests over the command channel, can schedule
//! alarms (the Retention Monitor's wake/sleep cycle), and is zeroized on
//! tamper.

use crate::clock::Timestamp;
use crate::device::Env;

/// Firmware loaded into a secure device.
///
/// All applet state lives inside the trusted enclosure. The only way any
/// information crosses the boundary is through the `Response` values
/// returned here — in particular, private keys must never appear in them.
pub trait Applet {
    /// Request message type accepted over the command channel.
    type Request;
    /// Response message type returned over the command channel.
    type Response;

    /// Handles one command. `env` provides the trusted clock, device RNG,
    /// secure memory budget, and cost metering.
    fn handle(&mut self, env: &mut Env, request: Self::Request) -> Self::Response;

    /// Stable instrumentation label for `request`, used by the device's
    /// optional trace registry to key per-command counters and latency
    /// histograms. Firmware images override this to split the generic
    /// bucket into per-command series (e.g. `"scpu.write"`).
    fn kind_of(request: &Self::Request) -> &'static str {
        let _ = request;
        "scpu.command"
    }

    /// Next scheduled wake-up, if any (e.g., the Retention Monitor's next
    /// expiration time). The device invokes [`Applet::on_alarm`] once the
    /// trusted clock passes this instant.
    fn next_alarm(&self) -> Option<Timestamp> {
        None
    }

    /// Invoked when a scheduled alarm is due. May reschedule via
    /// [`Applet::next_alarm`].
    fn on_alarm(&mut self, env: &mut Env) {
        let _ = env;
    }

    /// Invoked periodically during idle periods so the applet can run
    /// background work (signature strengthening, VEXP maintenance, window
    /// compaction assistance). `budget_ns` is the idle budget the host
    /// grants; the applet should stop once it has charged that much.
    fn on_idle(&mut self, env: &mut Env, budget_ns: u64) {
        let _ = (env, budget_ns);
    }

    /// Invoked by the tamper response: destroy all secrets.
    fn zeroize(&mut self);
}
