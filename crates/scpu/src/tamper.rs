//! Tamper detection and response.
//!
//! FIPS 140-2 Level 4 devices destroy internal state and shut down
//! permanently when their enclosure is breached (§2.2). [`TamperCircuit`]
//! models the battery-backed sensor loop: once triggered it latches, and
//! the device refuses every further command.

use crate::clock::Timestamp;

/// Why the tamper response fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TamperCause {
    /// Physical enclosure penetration.
    Penetration,
    /// Temperature outside the certified envelope.
    Temperature,
    /// Supply voltage manipulation.
    Voltage,
    /// X-ray / radiation attack.
    Radiation,
}

impl std::fmt::Display for TamperCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TamperCause::Penetration => "enclosure penetration",
            TamperCause::Temperature => "temperature excursion",
            TamperCause::Voltage => "voltage manipulation",
            TamperCause::Radiation => "radiation attack",
        };
        f.write_str(s)
    }
}

/// Latching tamper sensor.
#[derive(Clone, Debug, Default)]
pub struct TamperCircuit {
    triggered: Option<(TamperCause, Timestamp)>,
}

impl TamperCircuit {
    /// New, armed circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the response has fired.
    pub fn is_triggered(&self) -> bool {
        self.triggered.is_some()
    }

    /// The cause and time of the (first) trigger, if any.
    pub fn event(&self) -> Option<(TamperCause, Timestamp)> {
        self.triggered
    }

    /// Fires the tamper response. Latches: later triggers are ignored.
    pub fn trigger(&mut self, cause: TamperCause, at: Timestamp) {
        if self.triggered.is_none() {
            self.triggered = Some((cause, at));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latches_first_cause() {
        let mut t = TamperCircuit::new();
        assert!(!t.is_triggered());
        t.trigger(TamperCause::Voltage, Timestamp::from_millis(5));
        t.trigger(TamperCause::Penetration, Timestamp::from_millis(9));
        assert!(t.is_triggered());
        assert_eq!(
            t.event(),
            Some((TamperCause::Voltage, Timestamp::from_millis(5)))
        );
    }

    #[test]
    fn causes_render() {
        for c in [
            TamperCause::Penetration,
            TamperCause::Temperature,
            TamperCause::Voltage,
            TamperCause::Radiation,
        ] {
            assert!(!c.to_string().is_empty());
        }
    }
}
