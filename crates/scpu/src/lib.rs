//! # scpu — emulated secure coprocessor
//!
//! The Strong WORM architecture (Sion, ICDCS 2008) anchors all of its
//! trust in a tamper-resistant, general-purpose secure coprocessor — the
//! IBM 4764 PCI-X — running certified firmware next to the data. No such
//! hardware is available here, so this crate emulates the properties the
//! security and performance arguments actually depend on:
//!
//! * **An isolation boundary.** [`Device`] owns the firmware ([`Applet`])
//!   and its state; the host interacts exclusively through
//!   [`Device::execute`]. Secrets never appear in responses.
//! * **A trusted clock** ([`Clock`], [`VirtualClock`]) protected by the
//!   enclosure, used for freshness timestamps and the Retention Monitor.
//! * **Constrained resources.** A calibrated [`CostModel`] charges every
//!   in-enclosure operation its documented IBM 4764 latency into a
//!   virtual-time [`Meter`], and [`SecureMemory`] bounds firmware state —
//!   together reproducing the host/SCPU asymmetry that motivates the
//!   paper's sparse-access and deferred-signature designs.
//! * **Tamper response.** [`Device::trigger_tamper`] zeroizes firmware
//!   state and permanently disables the device, per FIPS 140-2 Level 4.
//!
//! ```
//! use scpu::{Applet, Device, DeviceConfig, Env, VirtualClock};
//!
//! struct Echo;
//! impl Applet for Echo {
//!     type Request = String;
//!     type Response = String;
//!     fn handle(&mut self, _env: &mut Env, req: String) -> String {
//!         req.to_uppercase()
//!     }
//!     fn zeroize(&mut self) {}
//! }
//!
//! # fn main() -> Result<(), scpu::DeviceError> {
//! let mut dev = Device::new(Echo, DeviceConfig::default(), VirtualClock::new());
//! assert_eq!(dev.execute("worm".into())?, "WORM");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod applet;
mod clock;
mod costmodel;
mod device;
mod memory;
mod rng;
mod tamper;

pub use applet::Applet;
pub use clock::{Clock, SystemClock, Timestamp, VirtualClock};
pub use costmodel::{CostModel, Meter, Op};
pub use device::{Device, DeviceConfig, DeviceError, Env};
pub use memory::{SecureMemory, SecureMemoryExhausted};
pub use rng::DeviceRng;
pub use tamper::{TamperCause, TamperCircuit};
