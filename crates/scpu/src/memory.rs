//! Bounded secure memory.
//!
//! Heat-dissipation limits leave the SCPU with little RAM (§1); the
//! firmware's VEXP expiration list is explicitly "subject to secure storage
//! space" (§4.2.2). [`SecureMemory`] models that budget: firmware reserves
//! bytes before growing any in-enclosure structure and releases them when
//! entries are evicted, so tests can verify graceful behaviour at the
//! capacity limit.

/// Byte-granular budget for in-enclosure state.
#[derive(Clone, Debug)]
pub struct SecureMemory {
    capacity: usize,
    used: usize,
    high_water: usize,
}

/// Error returned when a reservation would exceed the secure-memory budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecureMemoryExhausted {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes still available.
    pub available: usize,
}

impl std::fmt::Display for SecureMemoryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "secure memory exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for SecureMemoryExhausted {}

impl SecureMemory {
    /// Budget of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        SecureMemory {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Highest reservation level seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Reserves `bytes`, failing if the budget would be exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryExhausted`] when fewer than `bytes` are free.
    pub fn reserve(&mut self, bytes: usize) -> Result<(), SecureMemoryExhausted> {
        if bytes > self.available() {
            return Err(SecureMemoryExhausted {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Releases previously reserved bytes.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is reserved (a firmware accounting
    /// bug, not a runtime condition).
    pub fn release(&mut self, bytes: usize) {
        assert!(
            bytes <= self.used,
            "secure memory release of {bytes} exceeds {} reserved",
            self.used
        );
        self.used -= bytes;
    }

    /// Drops all reservations (used on tamper zeroization).
    pub fn clear(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut m = SecureMemory::new(100);
        m.reserve(60).unwrap();
        assert_eq!(m.used(), 60);
        assert_eq!(m.available(), 40);
        m.release(20);
        assert_eq!(m.used(), 40);
        assert_eq!(m.high_water(), 60);
    }

    #[test]
    fn exhaustion_reports_availability() {
        let mut m = SecureMemory::new(10);
        m.reserve(8).unwrap();
        let err = m.reserve(5).unwrap_err();
        assert_eq!(err.requested, 5);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("5"));
        // Failed reservation does not change accounting.
        assert_eq!(m.used(), 8);
    }

    #[test]
    fn exact_fill() {
        let mut m = SecureMemory::new(10);
        m.reserve(10).unwrap();
        assert_eq!(m.available(), 0);
        assert!(m.reserve(1).is_err());
        assert!(m.reserve(0).is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_release_panics() {
        let mut m = SecureMemory::new(10);
        m.reserve(3).unwrap();
        m.release(4);
    }

    #[test]
    fn clear_resets() {
        let mut m = SecureMemory::new(10);
        m.reserve(7).unwrap();
        m.clear();
        assert_eq!(m.used(), 0);
        assert_eq!(m.high_water(), 7);
    }
}
