//! Trusted time.
//!
//! The paper relies on the SCPU's "internal, accurate clocks protected by
//! their tamper-proof enclosure" (§2.2, note on timestamps) to timestamp
//! freshness constructs and drive the Retention Monitor. [`Clock`] is that
//! clock's interface; [`VirtualClock`] lets tests and benchmarks advance
//! simulated years instantly, and [`SystemClock`] uses wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point in trusted time, in milliseconds since an arbitrary epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Timestamp from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp advanced by `d` (saturating).
    pub fn after(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_millis() as u64))
    }

    /// This timestamp moved back by `d` (saturating at the epoch).
    pub fn before(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.as_millis() as u64))
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

/// Source of trusted time for a device.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current trusted time.
    fn now(&self) -> Timestamp;
}

/// Simulated clock that tests and benchmarks advance explicitly.
///
/// Shared by `Arc`: the device holds one handle, the test harness another.
///
/// ```
/// use std::time::Duration;
/// use scpu::{Clock, VirtualClock};
///
/// let clock = VirtualClock::starting_at_millis(1_000);
/// clock.advance(Duration::from_secs(60));
/// assert_eq!(clock.now().as_millis(), 61_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    millis: AtomicU64,
}

impl VirtualClock {
    /// Clock starting at the epoch, wrapped for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Clock starting at an arbitrary offset, wrapped for sharing.
    pub fn starting_at_millis(ms: u64) -> Arc<Self> {
        Arc::new(VirtualClock {
            millis: AtomicU64::new(ms),
        })
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ms = d.as_millis() as u64;
        // ordering: single atomic cell; any cross-thread hand-off that makes an advance
        // observable (channel send, lock release) already orders it, so Relaxed suffices.
        self.millis.fetch_add(ms, Ordering::Relaxed);
    }

    /// Jumps directly to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past — trusted clocks never run backwards.
    pub fn jump_to(&self, t: Timestamp) {
        // ordering: coherence on the single cell keeps each reader's view monotonic; the
        // backwards-jump assert is a sanity check, not a synchronization point.
        let cur = self.millis.load(Ordering::Relaxed);
        assert!(
            t.as_millis() >= cur,
            "virtual clock cannot move backwards ({} -> {})",
            cur,
            t.as_millis()
        );
        self.millis.store(t.as_millis(), Ordering::Relaxed); // ordering: as above
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        // ordering: a time read orders nothing else; coherence alone keeps it monotonic.
        Timestamp(self.millis.load(Ordering::Relaxed))
    }
}

/// Wall-clock time (process start = epoch).
#[derive(Debug)]
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    /// New system clock anchored at construction time, wrapped for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(SystemClock {
            start: std::time::Instant::now(),
        })
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.start.elapsed().as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(1000);
        assert_eq!(t.after(Duration::from_secs(2)).as_millis(), 3000);
        assert_eq!(t.before(Duration::from_millis(400)).as_millis(), 600);
        assert_eq!(t.before(Duration::from_secs(10)).as_millis(), 0);
        assert_eq!(
            t.after(Duration::from_secs(1)).since(t),
            Duration::from_secs(1)
        );
        assert_eq!(t.since(t.after(Duration::from_secs(1))), Duration::ZERO);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now().as_millis(), 0);
        c.advance(Duration::from_millis(250));
        c.advance(Duration::from_millis(750));
        assert_eq!(c.now().as_millis(), 1000);
    }

    #[test]
    fn virtual_clock_jump() {
        let c = VirtualClock::starting_at_millis(500);
        c.jump_to(Timestamp::from_millis(2000));
        assert_eq!(c.now().as_millis(), 2000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_rewind() {
        let c = VirtualClock::starting_at_millis(500);
        c.jump_to(Timestamp::from_millis(100));
    }

    #[test]
    fn system_clock_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_is_object_safe() {
        let c: Arc<dyn Clock> = VirtualClock::new();
        let _ = c.now();
    }
}
