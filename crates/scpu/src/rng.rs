//! Device-internal random number generation.
//!
//! The IBM CCA API exposes hardware random number generation from inside
//! the enclosure (§2.2). [`DeviceRng`] stands in for it: a deterministic,
//! seedable generator so that whole-system tests are reproducible, keyed
//! by device serial number so two devices never share a stream.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The device's internal RNG.
#[derive(Debug)]
pub struct DeviceRng {
    inner: StdRng,
}

impl DeviceRng {
    /// Seeds the generator from the device serial and an external seed.
    pub fn new(serial: u64, seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&serial.to_be_bytes());
        key[8..16].copy_from_slice(&seed.to_be_bytes());
        key[16..24].copy_from_slice(b"scpu-rng");
        DeviceRng {
            inner: StdRng::from_seed(key),
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// A random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl RngCore for DeviceRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DeviceRng::new(1, 7);
        let mut b = DeviceRng::new(1, 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_devices_distinct_streams() {
        let mut a = DeviceRng::new(1, 7);
        let mut b = DeviceRng::new(2, 7);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = DeviceRng::new(1, 8);
        let mut d = DeviceRng::new(1, 7);
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn fill_covers_buffer() {
        let mut r = DeviceRng::new(3, 3);
        let mut buf = [0u8; 64];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
