//! The emulated secure coprocessor.
//!
//! [`Device`] wraps an [`Applet`] (firmware) together with the resources a
//! FIPS 140-2 Level 4 part provides inside its enclosure: a trusted clock,
//! hardware RNG, a small secure memory, a tamper circuit, and — because
//! the real part is an order of magnitude slower than the host — a
//! calibrated cost meter that charges every operation its IBM 4764
//! latency in virtual time.
//!
//! The **only** way in or out of the device is [`Device::execute`]. The
//! host never touches applet state directly; adversarial tests rely on
//! this boundary.

use std::sync::Arc;

use crate::applet::Applet;
use crate::clock::{Clock, Timestamp};
use crate::costmodel::{CostModel, Meter, Op};
use crate::memory::SecureMemory;
use crate::rng::DeviceRng;
use crate::tamper::{TamperCause, TamperCircuit};

/// Construction parameters for a [`Device`].
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Latency model charged for in-enclosure operations.
    pub cost_model: CostModel,
    /// Secure-memory budget in bytes (VEXP and other firmware state).
    pub secure_memory_bytes: usize,
    /// Device serial number (feeds the RNG and identifies the part).
    pub serial: u64,
    /// RNG seed, for reproducible test runs.
    pub rng_seed: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            cost_model: CostModel::ibm4764(),
            // The 4758/4764 family shipped with single-digit MB of RAM for
            // application use; 4 MB is a representative default.
            secure_memory_bytes: 4 << 20,
            serial: 0x4764,
            rng_seed: 0,
        }
    }
}

/// Errors crossing the device boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The tamper response has fired; the device is permanently dead.
    Tampered(TamperCause),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Tampered(cause) => {
                write!(f, "device zeroized by tamper response ({cause})")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// In-enclosure execution environment handed to the firmware.
#[derive(Debug)]
pub struct Env {
    clock: Arc<dyn Clock>,
    rng: DeviceRng,
    cost_model: CostModel,
    meter: Meter,
    memory: SecureMemory,
}

impl Env {
    /// Current trusted time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The device RNG.
    pub fn rng(&mut self) -> &mut DeviceRng {
        &mut self.rng
    }

    /// Charges `op` to the virtual-time meter and returns its cost in ns.
    pub fn charge(&mut self, op: Op) -> u64 {
        let ns = self.cost_model.cost_ns(op);
        self.meter.record(op, ns);
        ns
    }

    /// Cost of `op` without charging it (for idle-budget planning).
    pub fn peek_cost(&self, op: Op) -> u64 {
        self.cost_model.cost_ns(op)
    }

    /// The secure-memory budget.
    pub fn memory(&mut self) -> &mut SecureMemory {
        &mut self.memory
    }

    /// Read-only view of the cost meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// An emulated secure coprocessor running firmware `A`.
#[derive(Debug)]
pub struct Device<A: Applet> {
    applet: A,
    env: Env,
    tamper: TamperCircuit,
    trace: Option<Arc<wormtrace::Registry>>,
}

impl<A: Applet> Device<A> {
    /// Boots `applet` inside a device described by `config`, with the
    /// given trusted clock.
    pub fn new(applet: A, config: DeviceConfig, clock: Arc<dyn Clock>) -> Self {
        Device {
            applet,
            env: Env {
                clock,
                rng: DeviceRng::new(config.serial, config.rng_seed),
                cost_model: config.cost_model,
                meter: Meter::new(),
                memory: SecureMemory::new(config.secure_memory_bytes),
            },
            tamper: TamperCircuit::new(),
            trace: None,
        }
    }

    /// Attaches a trace registry. Each command, alarm, and idle grant
    /// then records its **virtual-time** cost (meter `busy_ns` delta)
    /// into the op named by [`Applet::kind_of`] — deterministic across
    /// runs, unlike wall-clock latency.
    pub fn attach_trace(&mut self, trace: Arc<wormtrace::Registry>) {
        self.trace = Some(trace);
    }

    fn record_op(&self, kind: &'static str, busy_before: u128, ok: bool) {
        let delta = self.env.meter.busy_ns().saturating_sub(busy_before);
        let delta = u64::try_from(delta).unwrap_or(u64::MAX);
        if let Some(trace) = &self.trace {
            if trace.enabled() {
                trace.op(kind).record(delta, ok);
            }
        }
        // If the calling thread carries a request trace, attribute the
        // command's virtual-time cost as a leaf span of that request —
        // this is the only place SCPU cost enters a span tree, since
        // everything in the enclosure runs under `execute`.
        wormtrace::span::leaf(kind, wormtrace::Plane::Scpu, delta, ok, None);
    }

    /// Sends one command over the channel.
    ///
    /// Due alarms (Retention Monitor wake-ups) run before the command, so
    /// firmware observes a consistent trusted-time ordering.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Tampered`] once the tamper response has
    /// fired; the command is not executed.
    pub fn execute(&mut self, request: A::Request) -> Result<A::Response, DeviceError> {
        let kind = A::kind_of(&request);
        if let Err(dead) = self.check_alive() {
            self.record_op(kind, self.env.meter.busy_ns(), false);
            return Err(dead);
        }
        self.run_due_alarms();
        let busy_before = self.env.meter.busy_ns();
        self.env.charge(Op::Command);
        let response = self.applet.handle(&mut self.env, request);
        self.record_op(kind, busy_before, true);
        Ok(response)
    }

    /// Runs any due alarms without sending a command (host-side clock tick).
    pub fn tick(&mut self) -> Result<(), DeviceError> {
        self.check_alive()?;
        self.run_due_alarms();
        Ok(())
    }

    /// Grants the firmware `budget_ns` of idle time (e.g., night-time
    /// strengthening of deferred signatures).
    pub fn idle(&mut self, budget_ns: u64) -> Result<(), DeviceError> {
        self.check_alive()?;
        self.run_due_alarms();
        let busy_before = self.env.meter.busy_ns();
        self.applet.on_idle(&mut self.env, budget_ns);
        self.record_op("scpu.idle", busy_before, true);
        Ok(())
    }

    fn run_due_alarms(&mut self) {
        // Bounded loop: each alarm may schedule the next (the RM deletes
        // one expired record per wake-up).
        for _ in 0..1_000_000 {
            match self.applet.next_alarm() {
                Some(t) if t <= self.env.now() => {
                    let busy_before = self.env.meter.busy_ns();
                    self.applet.on_alarm(&mut self.env);
                    self.record_op("scpu.alarm", busy_before, true);
                }
                _ => break,
            }
        }
    }

    fn check_alive(&self) -> Result<(), DeviceError> {
        match self.tamper.event() {
            Some((cause, _)) => Err(DeviceError::Tampered(cause)),
            None => Ok(()),
        }
    }

    /// Fires the tamper response: zeroizes the firmware and secure memory
    /// and permanently disables the device.
    pub fn trigger_tamper(&mut self, cause: TamperCause) {
        let now = self.env.now();
        self.tamper.trigger(cause, now);
        self.applet.zeroize();
        self.env.memory.clear();
    }

    /// Whether the device is still operational.
    pub fn is_alive(&self) -> bool {
        !self.tamper.is_triggered()
    }

    /// Read-only view of the virtual-time cost meter.
    pub fn meter(&self) -> &Meter {
        &self.env.meter
    }

    /// Zeroes the cost meter (between benchmark phases).
    pub fn reset_meter(&mut self) {
        self.env.meter.reset();
    }

    /// Read-only access to the firmware, for *test assertions only*.
    ///
    /// Real deployments cannot see inside the enclosure; production code
    /// must go through [`Device::execute`].
    pub fn applet_for_test(&self) -> &A {
        &self.applet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    /// Minimal counter firmware used to exercise the device runtime.
    struct CounterApplet {
        count: u64,
        alarm: Option<Timestamp>,
        alarms_fired: u64,
        idle_ns: u64,
        zeroized: bool,
    }

    enum Req {
        Incr,
        Get,
        ArmAlarm(Timestamp),
    }

    impl Applet for CounterApplet {
        type Request = Req;
        type Response = u64;

        fn handle(&mut self, env: &mut Env, request: Req) -> u64 {
            match request {
                Req::Incr => {
                    env.charge(Op::RsaSign { bits: 512 });
                    self.count += 1;
                    self.count
                }
                Req::Get => self.count,
                Req::ArmAlarm(t) => {
                    self.alarm = Some(t);
                    0
                }
            }
        }

        fn next_alarm(&self) -> Option<Timestamp> {
            self.alarm
        }

        fn on_alarm(&mut self, _env: &mut Env) {
            self.alarm = None;
            self.alarms_fired += 1;
        }

        fn on_idle(&mut self, _env: &mut Env, budget_ns: u64) {
            self.idle_ns += budget_ns;
        }

        fn zeroize(&mut self) {
            self.count = 0;
            self.zeroized = true;
        }
    }

    fn device() -> (Device<CounterApplet>, Arc<VirtualClock>) {
        let clock = VirtualClock::new();
        let applet = CounterApplet {
            count: 0,
            alarm: None,
            alarms_fired: 0,
            idle_ns: 0,
            zeroized: false,
        };
        (
            Device::new(applet, DeviceConfig::default(), clock.clone()),
            clock,
        )
    }

    #[test]
    fn commands_run_and_meter_charges() {
        let (mut d, _clock) = device();
        assert_eq!(d.execute(Req::Incr).unwrap(), 1);
        assert_eq!(d.execute(Req::Incr).unwrap(), 2);
        assert_eq!(d.execute(Req::Get).unwrap(), 2);
        assert_eq!(d.meter().count("rsa_sign"), 2);
        assert_eq!(d.meter().count("command"), 3);
        assert!(d.meter().busy_ns() > 0);
    }

    #[test]
    fn alarms_fire_when_clock_passes() {
        let (mut d, clock) = device();
        d.execute(Req::ArmAlarm(Timestamp::from_millis(500)))
            .unwrap();
        d.tick().unwrap();
        assert_eq!(d.applet_for_test().alarms_fired, 0);
        clock.advance(std::time::Duration::from_millis(499));
        d.tick().unwrap();
        assert_eq!(d.applet_for_test().alarms_fired, 0);
        clock.advance(std::time::Duration::from_millis(1));
        d.tick().unwrap();
        assert_eq!(d.applet_for_test().alarms_fired, 1);
    }

    #[test]
    fn due_alarm_runs_before_command() {
        let (mut d, clock) = device();
        d.execute(Req::ArmAlarm(Timestamp::from_millis(10)))
            .unwrap();
        clock.advance(std::time::Duration::from_millis(20));
        // The next command triggers the due alarm first.
        d.execute(Req::Get).unwrap();
        assert_eq!(d.applet_for_test().alarms_fired, 1);
    }

    #[test]
    fn tamper_kills_device_and_zeroizes() {
        let (mut d, _clock) = device();
        d.execute(Req::Incr).unwrap();
        d.trigger_tamper(TamperCause::Penetration);
        assert!(!d.is_alive());
        assert!(d.applet_for_test().zeroized);
        assert_eq!(d.applet_for_test().count, 0);
        match d.execute(Req::Get) {
            Err(DeviceError::Tampered(TamperCause::Penetration)) => {}
            other => panic!("expected tamper error, got {other:?}"),
        }
        assert!(d.tick().is_err());
        assert!(d.idle(1000).is_err());
    }

    #[test]
    fn idle_budget_reaches_applet() {
        let (mut d, _clock) = device();
        d.idle(12345).unwrap();
        assert_eq!(d.applet_for_test().idle_ns, 12345);
    }

    #[test]
    fn reset_meter_clears() {
        let (mut d, _clock) = device();
        d.execute(Req::Incr).unwrap();
        assert!(d.meter().busy_ns() > 0);
        d.reset_meter();
        assert_eq!(d.meter().busy_ns(), 0);
    }

    #[test]
    fn attached_trace_records_virtual_time() {
        let (mut d, clock) = device();
        let trace = Arc::new(wormtrace::Registry::new());
        d.attach_trace(trace.clone());
        d.execute(Req::Incr).unwrap();
        d.execute(Req::Get).unwrap();
        let op_snap = trace.snapshot();
        let cmd = op_snap.op("scpu.command").expect("scpu.command registered");
        assert_eq!(cmd.ok, 2);
        assert_eq!(cmd.err, 0);
        // Virtual-time cost of Incr (an RSA sign) dominates the sum.
        assert!(cmd.latency.sum_ns > 0);
        // Alarms record under their own op name.
        d.execute(Req::ArmAlarm(Timestamp::from_millis(1))).unwrap();
        clock.advance(std::time::Duration::from_millis(5));
        d.tick().unwrap();
        assert_eq!(trace.snapshot().op("scpu.alarm").unwrap().ok, 1);
        // Tampered commands count as errors.
        d.trigger_tamper(TamperCause::Penetration);
        let _ = d.execute(Req::Get);
        assert_eq!(trace.snapshot().op("scpu.command").unwrap().err, 1);
    }

    #[test]
    fn error_display() {
        let e = DeviceError::Tampered(TamperCause::Voltage);
        assert!(e.to_string().contains("zeroized"));
    }
}
