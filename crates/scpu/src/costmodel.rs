//! Calibrated virtual-time cost model.
//!
//! The paper's Table 2 measures the IBM 4764 secure coprocessor against a
//! P4 @ 3.4 GHz host. Since no 4764 is available, every operation executed
//! inside the emulated device is *charged* its documented latency into a
//! virtual-time [`Meter`]. Benchmarks then derive throughput from virtual
//! busy time, reproducing the *ratios* that drive every result in the
//! paper (slow SCPU signing, very slow SCPU hashing, DMA ceiling) in a
//! deterministic, hardware-independent way.
//!
//! Calibration anchors (Table 2):
//!
//! | op              | IBM 4764           | P4 @ 3.4 GHz |
//! |-----------------|--------------------|--------------|
//! | RSA sign 512    | 4200/s (est.)      | 1315/s       |
//! | RSA sign 1024   | 848/s              | 261/s        |
//! | RSA sign 2048   | 316–470/s (≈390)   | 43/s         |
//! | SHA-1 1 KB blk  | 1.42 MB/s          | 80 MB/s      |
//! | SHA-1 64 KB blk | 18.6 MB/s          | 120+ MB/s    |
//! | DMA end-to-end  | 75–90 MB/s (≈80)   | 1+ GB/s      |

use std::collections::BTreeMap;

/// One chargeable device operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// RSA private-key signature with a modulus of `bits` bits.
    RsaSign {
        /// Modulus width in bits.
        bits: usize,
    },
    /// RSA public-key verification with a modulus of `bits` bits.
    RsaVerify {
        /// Modulus width in bits.
        bits: usize,
    },
    /// SHA-1 over one contiguous buffer of `bytes` bytes.
    Sha1 {
        /// Buffer length in bytes.
        bytes: usize,
    },
    /// SHA-256 over one contiguous buffer of `bytes` bytes.
    Sha256 {
        /// Buffer length in bytes.
        bytes: usize,
    },
    /// HMAC over one contiguous buffer of `bytes` bytes.
    Hmac {
        /// Buffer length in bytes.
        bytes: usize,
    },
    /// DMA transfer into the device.
    DmaIn {
        /// Transfer length in bytes.
        bytes: usize,
    },
    /// DMA transfer out of the device.
    DmaOut {
        /// Transfer length in bytes.
        bytes: usize,
    },
    /// Fixed command dispatch overhead (crossing the device boundary).
    Command,
}

/// Latency model for one processor (device or host).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// `(bits, ns)` anchors for RSA signing, sorted by bits.
    sign_anchors: Vec<(f64, f64)>,
    /// Verify/sign latency ratio (e=65537 verification is ~30x cheaper).
    verify_ratio: f64,
    /// `(block_bytes, ns_per_byte)` anchors for SHA-1.
    sha1_anchors: Vec<(f64, f64)>,
    /// SHA-256 per-byte cost relative to SHA-1.
    sha256_factor: f64,
    /// Fixed HMAC setup cost in ns. The paper treats HMAC witnessing as
    /// limited only by the SCPU–memory bus (§4.3), so it bypasses the
    /// per-call overheads baked into the SHA-1 block-rate anchors.
    hmac_fixed_ns: f64,
    /// HMAC streaming cost in ns per byte (bus-speed class).
    hmac_ns_per_byte: f64,
    /// DMA cost in ns per byte.
    dma_ns_per_byte: f64,
    /// Fixed command overhead in ns.
    command_ns: f64,
}

impl CostModel {
    /// IBM 4764-001 PCI-X cryptographic coprocessor (Table 2, column 3).
    pub fn ibm4764() -> Self {
        CostModel {
            sign_anchors: vec![
                (512.0, 1e9 / 4200.0),
                (1024.0, 1e9 / 848.0),
                (2048.0, 1e9 / 390.0),
            ],
            verify_ratio: 1.0 / 30.0,
            sha1_anchors: vec![
                (1024.0, 1e9 / 1.42e6),  // 1.42 MB/s at 1 KB blocks
                (65536.0, 1e9 / 18.6e6), // 18.6 MB/s at 64 KB blocks
            ],
            sha256_factor: 1.5,
            hmac_fixed_ns: 2_000.0,        // two compression blocks
            hmac_ns_per_byte: 1e9 / 300e6, // ≈300 MB/s bus-class rate
            dma_ns_per_byte: 1e9 / 80e6,   // ≈80 MB/s
            command_ns: 10_000.0,          // 10 µs dispatch
        }
    }

    /// P4 @ 3.4 GHz running OpenSSL 0.9.7f (Table 2, column 4).
    pub fn host_p4() -> Self {
        CostModel {
            sign_anchors: vec![
                (512.0, 1e9 / 1315.0),
                (1024.0, 1e9 / 261.0),
                (2048.0, 1e9 / 43.0),
            ],
            verify_ratio: 1.0 / 30.0,
            sha1_anchors: vec![
                (1024.0, 1e9 / 80e6),   // 80 MB/s
                (65536.0, 1e9 / 120e6), // 120+ MB/s
            ],
            sha256_factor: 1.5,
            hmac_fixed_ns: 500.0,
            hmac_ns_per_byte: 1.0,
            dma_ns_per_byte: 1.0, // 1+ GB/s memory path
            command_ns: 0.0,
        }
    }

    /// Zero-cost model (pure functional testing, no virtual time).
    pub fn free() -> Self {
        CostModel {
            sign_anchors: vec![(512.0, 0.0), (2048.0, 0.0)],
            verify_ratio: 0.0,
            sha1_anchors: vec![(1024.0, 0.0), (65536.0, 0.0)],
            sha256_factor: 0.0,
            hmac_fixed_ns: 0.0,
            hmac_ns_per_byte: 0.0,
            dma_ns_per_byte: 0.0,
            command_ns: 0.0,
        }
    }

    /// Charge for `op`, in nanoseconds of busy time.
    pub fn cost_ns(&self, op: Op) -> u64 {
        let ns = match op {
            Op::RsaSign { bits } => interp_loglog(&self.sign_anchors, bits as f64),
            Op::RsaVerify { bits } => {
                interp_loglog(&self.sign_anchors, bits as f64) * self.verify_ratio
            }
            Op::Sha1 { bytes } => {
                let b = (bytes.max(1)) as f64;
                b * interp_loglog(&self.sha1_anchors, b)
            }
            Op::Sha256 { bytes } => {
                let b = (bytes.max(1)) as f64;
                b * interp_loglog(&self.sha1_anchors, b) * self.sha256_factor
            }
            Op::Hmac { bytes } => self.hmac_fixed_ns + bytes as f64 * self.hmac_ns_per_byte,
            Op::DmaIn { bytes } | Op::DmaOut { bytes } => bytes as f64 * self.dma_ns_per_byte,
            Op::Command => self.command_ns,
        };
        ns.round() as u64
    }
}

/// Log-log interpolation through `anchors` (sorted by x), with clamped
/// endpoint slopes (nearest-anchor extension) outside the range.
fn interp_loglog(anchors: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(anchors.len() >= 2);
    let first = anchors[0];
    let last = anchors[anchors.len() - 1];
    if x <= first.0 {
        return first.1;
    }
    if x >= last.0 {
        // Extrapolate with the final segment's slope so larger RSA keys keep
        // getting slower instead of flat-lining.
        let (x0, y0) = anchors[anchors.len() - 2];
        let (x1, y1) = last;
        let slope = (y1.ln() - y0.ln()) / (x1.ln() - x0.ln());
        return (y1.ln() + slope * (x.ln() - x1.ln())).exp();
    }
    for w in anchors.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x >= x0 && x <= x1 {
            let t = (x.ln() - x0.ln()) / (x1.ln() - x0.ln());
            return (y0.ln() + t * (y1.ln() - y0.ln())).exp();
        }
    }
    // Only reachable when x is NaN (it fails every range comparison,
    // including the endpoint clamps above); charge the last anchor's cost
    // rather than panicking the cost model over a degenerate input.
    last.1
}

/// Virtual-time accounting: accumulated busy nanoseconds and op counts.
#[derive(Clone, Debug, Default)]
pub struct Meter {
    busy_ns: u128,
    counts: BTreeMap<&'static str, u64>,
    bytes_hashed: u64,
    bytes_dma: u64,
}

impl Meter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `op` charged at `ns` nanoseconds.
    pub fn record(&mut self, op: Op, ns: u64) {
        self.busy_ns += ns as u128;
        let key = match op {
            Op::RsaSign { .. } => "rsa_sign",
            Op::RsaVerify { .. } => "rsa_verify",
            Op::Sha1 { .. } => "sha1",
            Op::Sha256 { .. } => "sha256",
            Op::Hmac { .. } => "hmac",
            Op::DmaIn { .. } => "dma_in",
            Op::DmaOut { .. } => "dma_out",
            Op::Command => "command",
        };
        *self.counts.entry(key).or_insert(0) += 1;
        match op {
            Op::Sha1 { bytes } | Op::Sha256 { bytes } | Op::Hmac { bytes } => {
                self.bytes_hashed += bytes as u64
            }
            Op::DmaIn { bytes } | Op::DmaOut { bytes } => self.bytes_dma += bytes as u64,
            _ => {}
        }
    }

    /// Total accumulated busy time in nanoseconds.
    pub fn busy_ns(&self) -> u128 {
        self.busy_ns
    }

    /// Count of recorded operations with the given key
    /// (`"rsa_sign"`, `"sha1"`, `"command"`, ...).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total bytes hashed (SHA-1 + SHA-256 + HMAC).
    pub fn bytes_hashed(&self) -> u64 {
        self.bytes_hashed
    }

    /// Total bytes moved over DMA.
    pub fn bytes_dma(&self) -> u64 {
        self.bytes_dma
    }

    /// Zeroes the meter, returning the prior busy time.
    pub fn reset(&mut self) -> u128 {
        let prior = self.busy_ns;
        *self = Meter::new();
        prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_rates() {
        let m = CostModel::ibm4764();
        // Rate = 1e9 / ns; anchors must reproduce Table 2 within rounding.
        let rate = |op| 1e9 / m.cost_ns(op) as f64;
        assert!((rate(Op::RsaSign { bits: 512 }) - 4200.0).abs() < 1.0);
        assert!((rate(Op::RsaSign { bits: 1024 }) - 848.0).abs() < 1.0);
        assert!((rate(Op::RsaSign { bits: 2048 }) - 390.0).abs() < 1.0);
        // SHA-1 at 1 KB: 1.42 MB/s.
        let t = m.cost_ns(Op::Sha1 { bytes: 1024 }) as f64;
        let mbps = 1024.0 / t * 1e9 / 1e6;
        assert!((mbps - 1.42).abs() < 0.01, "mbps={mbps}");
        // SHA-1 at 64 KB: 18.6 MB/s.
        let t = m.cost_ns(Op::Sha1 { bytes: 65536 }) as f64;
        let mbps = 65536.0 / t * 1e9 / 1e6;
        assert!((mbps - 18.6).abs() < 0.1, "mbps={mbps}");
    }

    #[test]
    fn host_is_faster_at_hashing_slower_at_signing() {
        let dev = CostModel::ibm4764();
        let host = CostModel::host_p4();
        // The device's RSA hardware beats the host...
        assert!(dev.cost_ns(Op::RsaSign { bits: 1024 }) < host.cost_ns(Op::RsaSign { bits: 1024 }));
        // ...but its hashing is an order of magnitude slower.
        assert!(
            dev.cost_ns(Op::Sha1 { bytes: 65536 }) > 5 * host.cost_ns(Op::Sha1 { bytes: 65536 })
        );
    }

    #[test]
    fn interpolation_is_monotone_for_rsa() {
        let m = CostModel::ibm4764();
        let mut prev = 0;
        for bits in [512usize, 768, 1024, 1536, 2048, 3072, 4096] {
            let c = m.cost_ns(Op::RsaSign { bits });
            assert!(c > prev, "bits={bits} cost={c} prev={prev}");
            prev = c;
        }
    }

    #[test]
    fn extrapolation_beyond_2048_grows() {
        let m = CostModel::ibm4764();
        let c2048 = m.cost_ns(Op::RsaSign { bits: 2048 });
        let c4096 = m.cost_ns(Op::RsaSign { bits: 4096 });
        assert!(c4096 > c2048);
    }

    #[test]
    fn verify_cheaper_than_sign() {
        let m = CostModel::ibm4764();
        assert!(
            m.cost_ns(Op::RsaVerify { bits: 1024 }) * 10 < m.cost_ns(Op::RsaSign { bits: 1024 })
        );
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.cost_ns(Op::RsaSign { bits: 2048 }), 0);
        assert_eq!(m.cost_ns(Op::Sha1 { bytes: 1 << 20 }), 0);
        assert_eq!(m.cost_ns(Op::Command), 0);
    }

    #[test]
    fn meter_accumulates() {
        let m = CostModel::ibm4764();
        let mut meter = Meter::new();
        for _ in 0..3 {
            let op = Op::RsaSign { bits: 512 };
            meter.record(op, m.cost_ns(op));
        }
        let op = Op::DmaIn { bytes: 4096 };
        meter.record(op, m.cost_ns(op));
        assert_eq!(meter.count("rsa_sign"), 3);
        assert_eq!(meter.count("dma_in"), 1);
        assert_eq!(meter.count("sha1"), 0);
        assert_eq!(meter.bytes_dma(), 4096);
        assert!(meter.busy_ns() > 3 * 238_000);
        let prior = meter.reset();
        assert!(prior > 0);
        assert_eq!(meter.busy_ns(), 0);
    }

    #[test]
    fn hmac_is_far_cheaper_than_signing_or_device_hashing() {
        let m = CostModel::ibm4764();
        // §4.3: HMAC witnessing removes the authentication bottleneck.
        assert!(m.cost_ns(Op::Hmac { bytes: 1024 }) * 20 < m.cost_ns(Op::RsaSign { bits: 512 }));
        assert!(m.cost_ns(Op::Hmac { bytes: 1024 }) < m.cost_ns(Op::Sha256 { bytes: 1024 }));
    }
}
