//! Cross-checks of the cost-model calibration against every Table 2
//! anchor, from outside the crate (public-API view).

use scpu::{CostModel, Meter, Op};

fn rate(m: &CostModel, op: Op) -> f64 {
    1e9 / m.cost_ns(op) as f64
}

fn mbps(m: &CostModel, bytes: usize) -> f64 {
    bytes as f64 / (m.cost_ns(Op::Sha1 { bytes }) as f64 / 1e9) / 1e6
}

#[test]
fn host_p4_anchors_match_table2() {
    let host = CostModel::host_p4();
    assert!((rate(&host, Op::RsaSign { bits: 512 }) - 1315.0).abs() < 1.0);
    assert!((rate(&host, Op::RsaSign { bits: 1024 }) - 261.0).abs() < 1.0);
    assert!((rate(&host, Op::RsaSign { bits: 2048 }) - 43.0).abs() < 1.0);
    assert!((mbps(&host, 1 << 10) - 80.0).abs() < 0.5);
    assert!((mbps(&host, 64 << 10) - 120.0).abs() < 0.5);
}

#[test]
fn device_host_ratios_match_paper_narrative() {
    // §1: SCPUs are "up to one order of magnitude slower than host CPUs"
    // — for hashing; their RSA hardware actually beats the host.
    let dev = CostModel::ibm4764();
    let host = CostModel::host_p4();
    let hash_ratio = mbps(&host, 64 << 10) / mbps(&dev, 64 << 10);
    assert!(hash_ratio > 5.0, "hashing gap ratio {hash_ratio}");
    let sign_ratio =
        rate(&dev, Op::RsaSign { bits: 1024 }) / rate(&host, Op::RsaSign { bits: 1024 });
    assert!(sign_ratio > 2.0, "RSA accel ratio {sign_ratio}");
}

#[test]
fn sha1_rate_grows_monotonically_with_block_size() {
    let dev = CostModel::ibm4764();
    let mut prev = 0.0;
    for bytes in [256usize, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10] {
        let r = mbps(&dev, bytes);
        assert!(r >= prev, "rate must not shrink with block size: {bytes}");
        prev = r;
    }
}

#[test]
fn write_cost_shape_drives_figure1_plateaus() {
    // The paper's headline numbers come straight out of the model:
    //   full strength:  2 × RSA-1024 per record → ≈ 424/s
    //   deferred:       2 × RSA-512  per record → ≈ 2100/s
    let dev = CostModel::ibm4764();
    let full = 2 * dev.cost_ns(Op::RsaSign { bits: 1024 });
    let deferred = 2 * dev.cost_ns(Op::RsaSign { bits: 512 });
    let full_rps = 1e9 / full as f64;
    let deferred_rps = 1e9 / deferred as f64;
    assert!((400.0..500.0).contains(&full_rps), "{full_rps}");
    assert!((2000.0..2500.0).contains(&deferred_rps), "{deferred_rps}");
}

#[test]
fn meter_aggregates_mixed_workload() {
    let dev = CostModel::ibm4764();
    let mut meter = Meter::new();
    let ops = [
        Op::Command,
        Op::DmaIn { bytes: 4096 },
        Op::Sha256 { bytes: 4096 },
        Op::RsaSign { bits: 1024 },
        Op::RsaSign { bits: 1024 },
        Op::Hmac { bytes: 128 },
        Op::RsaVerify { bits: 1024 },
        Op::DmaOut { bytes: 64 },
    ];
    for op in ops {
        meter.record(op, dev.cost_ns(op));
    }
    assert_eq!(meter.count("command"), 1);
    assert_eq!(meter.count("rsa_sign"), 2);
    assert_eq!(meter.count("rsa_verify"), 1);
    assert_eq!(meter.count("hmac"), 1);
    assert_eq!(meter.bytes_dma(), 4096 + 64);
    assert_eq!(meter.bytes_hashed(), 4096 + 128);
    // Dominated by the two signatures (≈ 2.36 ms).
    assert!(meter.busy_ns() > 2_300_000);
    assert!(meter.busy_ns() < 6_000_000);
}
