//! Bridge from the `wormtrace` event ring to the audit journal.
//!
//! `wormtrace::Registry` already sees every instrumented operation in
//! the serving path. Rather than threading an audit handle through each
//! call site, integrity-relevant *trace* events are promoted into audit
//! events by installing this sink on the registry: the trace plane
//! stays a lossy sampled diagnostic, while the subset that matters for
//! tamper evidence is re-emitted into the hash chain.
//!
//! Planes that hold richer evidence than a trace event carries (SCPU
//! outbox items, recovery statistics) emit directly on
//! [`crate::AuditLog`] instead of routing through here.

use std::sync::Arc;

use wormtrace::{TraceEvent, TraceSink};

use crate::event::AuditClass;
use crate::log::AuditLog;

/// A [`TraceSink`] that promotes integrity-relevant trace events into
/// the audit chain.
#[derive(Clone, Debug)]
pub struct AuditTraceSink {
    log: Arc<AuditLog>,
}

impl AuditTraceSink {
    /// A sink emitting into `log`.
    pub fn new(log: Arc<AuditLog>) -> Self {
        AuditTraceSink { log }
    }

    /// The audit class a trace event maps to, if any.
    ///
    /// Failed verified reads become [`AuditClass::VerifyFailure`];
    /// overload sheds and retention give-ups are recognised by their
    /// dedicated ops. Successful reads — the overwhelmingly common
    /// event — map to `None` and cost one string comparison.
    pub fn classify(event: &TraceEvent) -> Option<AuditClass> {
        match event.op {
            "server.read" | "shard.read" if !event.ok => Some(AuditClass::VerifyFailure),
            "net.shed" => Some(AuditClass::AdmissionShed),
            "daemon.giveup" => Some(AuditClass::RetentionGiveUp),
            _ => None,
        }
    }
}

impl TraceSink for AuditTraceSink {
    fn on_event(&self, event: &TraceEvent) {
        if let Some(class) = Self::classify(event) {
            self.log.emit(class, event.sn, event.op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormtrace::{Plane, Registry};

    fn trace_event(op: &'static str, plane: Plane, sn: Option<u64>, ok: bool) -> TraceEvent {
        TraceEvent {
            op,
            plane,
            sn,
            duration_ns: 10,
            ok,
        }
    }

    fn log() -> (Arc<AuditLog>, Arc<Registry>) {
        let trace = Arc::new(Registry::new());
        let log = Arc::new(AuditLog::new(64, &trace, Box::new(|| 1000)));
        (log, trace)
    }

    #[test]
    fn failed_read_is_promoted() {
        let (log, _trace) = log();
        let sink = AuditTraceSink::new(Arc::clone(&log));
        sink.on_event(&trace_event("server.read", Plane::Read, Some(7), false));
        let page = log.page(0, 16);
        assert_eq!(page.events.len(), 1);
        assert_eq!(page.events[0].class, AuditClass::VerifyFailure);
        assert_eq!(page.events[0].sn, Some(7));
    }

    #[test]
    fn successful_read_is_ignored() {
        let (log, _trace) = log();
        let sink = AuditTraceSink::new(Arc::clone(&log));
        sink.on_event(&trace_event("server.read", Plane::Read, Some(7), true));
        sink.on_event(&trace_event("scpu.call", Plane::Scpu, None, false));
        assert_eq!(log.height(), 0);
    }

    #[test]
    fn shed_and_giveup_are_promoted() {
        let (log, _trace) = log();
        let sink = AuditTraceSink::new(Arc::clone(&log));
        sink.on_event(&trace_event("net.shed", Plane::Net, None, true));
        sink.on_event(&trace_event("daemon.giveup", Plane::Daemon, None, false));
        let page = log.page(0, 16);
        let classes: Vec<_> = page.events.iter().map(|e| e.class).collect();
        assert_eq!(
            classes,
            vec![AuditClass::AdmissionShed, AuditClass::RetentionGiveUp]
        );
    }

    #[test]
    fn installed_on_a_registry_it_sees_emitted_events() {
        let (log, trace) = log();
        trace.set_sink(Arc::new(AuditTraceSink::new(Arc::clone(&log))));
        trace.emit(trace_event("net.shed", Plane::Net, None, true));
        trace.emit(trace_event("server.read", Plane::Read, Some(3), true));
        assert_eq!(log.height(), 1);
        trace.clear_sink();
        trace.emit(trace_event("net.shed", Plane::Net, None, true));
        assert_eq!(log.height(), 1);
    }
}
