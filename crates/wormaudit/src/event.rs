//! Audit event classes, the chained event record, and the SCPU anchor.

use wormcrypt::{HashAlg, RsaPublicKey};

use crate::wire::WireWriter;

/// The class of an integrity-relevant event.
///
/// The set is closed and wire-stable: each class has a fixed `u8` code
/// used by the `wormaudit.events.v1` codec, and decoders reject unknown
/// codes rather than guessing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuditClass {
    /// A read failed verification or errored on the serving path — the
    /// host could not produce the record or its evidence.
    VerifyFailure,
    /// The SCPU detected host tampering (a trust-host-hash audit
    /// failure: the host lied about a data hash).
    TamperDetected,
    /// The freshness head certificate was explicitly refreshed.
    HeadRefresh,
    /// The SCPU re-minted the head on its own heartbeat (§4.2.1).
    HeadRemint,
    /// The retention daemon exhausted its failure budget and stopped —
    /// retention enforcement is no longer running.
    RetentionGiveUp,
    /// Crash recovery rolled back one or more unwitnessed records.
    RecoveryRollback,
    /// Crash recovery discarded a torn journal tail.
    RecoveryTornTail,
    /// An interrupted shred was resumed after a crash.
    ShredResume,
    /// A shred pass ran to completion (data irrecoverable).
    ShredComplete,
    /// The serving loop shed a connection under overload (CODE_BUSY).
    AdmissionShed,
    /// The record store compacted, relocating live extents.
    StoreCompaction,
}

/// Every audit class, in code order — for per-class panels and sweeps.
pub const ALL_CLASSES: &[AuditClass] = &[
    AuditClass::VerifyFailure,
    AuditClass::TamperDetected,
    AuditClass::HeadRefresh,
    AuditClass::HeadRemint,
    AuditClass::RetentionGiveUp,
    AuditClass::RecoveryRollback,
    AuditClass::RecoveryTornTail,
    AuditClass::ShredResume,
    AuditClass::ShredComplete,
    AuditClass::AdmissionShed,
    AuditClass::StoreCompaction,
];

impl AuditClass {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            AuditClass::VerifyFailure => 1,
            AuditClass::TamperDetected => 2,
            AuditClass::HeadRefresh => 3,
            AuditClass::HeadRemint => 4,
            AuditClass::RetentionGiveUp => 5,
            AuditClass::RecoveryRollback => 6,
            AuditClass::RecoveryTornTail => 7,
            AuditClass::ShredResume => 8,
            AuditClass::ShredComplete => 9,
            AuditClass::AdmissionShed => 10,
            AuditClass::StoreCompaction => 11,
        }
    }

    /// The class for a wire code, if known.
    pub fn from_code(code: u8) -> Option<AuditClass> {
        match code {
            1 => Some(AuditClass::VerifyFailure),
            2 => Some(AuditClass::TamperDetected),
            3 => Some(AuditClass::HeadRefresh),
            4 => Some(AuditClass::HeadRemint),
            5 => Some(AuditClass::RetentionGiveUp),
            6 => Some(AuditClass::RecoveryRollback),
            7 => Some(AuditClass::RecoveryTornTail),
            8 => Some(AuditClass::ShredResume),
            9 => Some(AuditClass::ShredComplete),
            10 => Some(AuditClass::AdmissionShed),
            11 => Some(AuditClass::StoreCompaction),
            _ => None,
        }
    }

    /// Stable display label.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditClass::VerifyFailure => "verify-failure",
            AuditClass::TamperDetected => "tamper-detected",
            AuditClass::HeadRefresh => "head-refresh",
            AuditClass::HeadRemint => "head-remint",
            AuditClass::RetentionGiveUp => "retention-giveup",
            AuditClass::RecoveryRollback => "recovery-rollback",
            AuditClass::RecoveryTornTail => "recovery-torn-tail",
            AuditClass::ShredResume => "shred-resume",
            AuditClass::ShredComplete => "shred-complete",
            AuditClass::AdmissionShed => "admission-shed",
            AuditClass::StoreCompaction => "store-compaction",
        }
    }
}

/// One sequence-numbered, hash-chained integrity event.
///
/// `prev_hash` is the chain hash of the preceding event (or the
/// all-zero genesis hash for sequence 0), so the journal forms a hash
/// chain: flipping any byte of an event changes its own chain hash and
/// breaks the link its successor (or a covering [`AuditAnchor`])
/// asserts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEvent {
    /// Journal sequence number (dense, starting at 0).
    pub seq: u64,
    /// Emission time, milliseconds (virtual or wall, per deployment).
    pub at_ms: u64,
    /// Event class.
    pub class: AuditClass,
    /// Serial number involved, when the event concerns one record.
    pub sn: Option<u64>,
    /// Free-form bounded context (error text, counts).
    pub detail: String,
    /// Chain hash of the predecessor event.
    pub prev_hash: [u8; 32],
}

/// An SCPU signature over the chain tip: "event `seq` had chain hash
/// `chain_hash` at trusted time `issued_at_ms`".
///
/// Minted inside the secure coprocessor under the permanent witnessing
/// key `s`; the audit log thereby inherits the tamper-evidence of the
/// records it describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditAnchor {
    /// Sequence number of the last event the anchor covers.
    pub seq: u64,
    /// Chain hash of that event.
    pub chain_hash: [u8; 32],
    /// Trusted issue time stamped by the SCPU, milliseconds.
    pub issued_at_ms: u64,
    /// Fingerprint of the signing key (first 8 bytes of SHA-256(n‖e)).
    pub key_id: [u8; 8],
    /// PKCS#1 v1.5 signature over [`anchor_payload`].
    pub sig: Vec<u8>,
}

impl AuditAnchor {
    /// Verifies this anchor's signature with `key`, also checking the
    /// key fingerprint matches.
    pub fn verify(&self, key: &RsaPublicKey) -> bool {
        let payload = anchor_payload(self.seq, &self.chain_hash, self.issued_at_ms);
        key.fingerprint() == self.key_id && key.verify(&payload, &self.sig, HashAlg::Sha256)
    }
}

/// Canonical payload an SCPU signs when anchoring the audit chain.
///
/// Domain-separated from every other SCPU-signed statement, so an
/// anchor signature can never be repurposed as a head certificate or
/// vice versa.
pub fn anchor_payload(seq: u64, chain_hash: &[u8], issued_at_ms: u64) -> Vec<u8> {
    let mut w = WireWriter::tagged("wormaudit.anchor.v1");
    w.put_u64(seq);
    w.put_bytes(chain_hash);
    w.put_u64(issued_at_ms);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in ALL_CLASSES {
            assert_eq!(AuditClass::from_code(c.code()), Some(c));
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(!c.as_str().is_empty());
        }
        assert_eq!(AuditClass::from_code(0), None);
        assert_eq!(AuditClass::from_code(255), None);
    }

    #[test]
    fn anchor_payload_binds_every_field() {
        let base = anchor_payload(5, &[7u8; 32], 1000);
        assert_ne!(base, anchor_payload(6, &[7u8; 32], 1000));
        assert_ne!(base, anchor_payload(5, &[8u8; 32], 1000));
        assert_ne!(base, anchor_payload(5, &[7u8; 32], 1001));
    }

    #[test]
    fn anchor_verify_checks_fingerprint_and_message() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let key = wormcrypt::RsaPrivateKey::generate(&mut StdRng::seed_from_u64(11), 512);
        let payload = anchor_payload(3, &[9u8; 32], 777);
        let sig = key.sign(&payload, HashAlg::Sha256).unwrap();
        let anchor = AuditAnchor {
            seq: 3,
            chain_hash: [9u8; 32],
            issued_at_ms: 777,
            key_id: key.public().fingerprint(),
            sig,
        };
        assert!(anchor.verify(key.public()));
        let mut wrong_seq = anchor.clone();
        wrong_seq.seq = 4;
        assert!(!wrong_seq.verify(key.public()));
        let mut wrong_id = anchor;
        wrong_id.key_id = [0; 8];
        assert!(!wrong_id.verify(key.public()));
    }
}
