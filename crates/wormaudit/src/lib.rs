//! # wormaudit — the tamper-evident integrity event plane
//!
//! The Strong WORM guarantees are only as strong as an operator's
//! ability to *see* integrity-relevant events: a verify failure, a
//! torn-tail rollback, or a retention daemon giving up is invisible
//! unless a client happens to error at the right moment. This crate
//! gives every security-relevant event a durable, tamper-evident
//! record:
//!
//! * [`AuditEvent`] — one sequence-numbered, timestamped event of an
//!   [`AuditClass`], carrying the hash of its predecessor so the
//!   journal forms a hash chain (any mutation breaks the link to the
//!   next event).
//! * [`AuditLog`] — a bounded, thread-safe journal the serving planes
//!   emit into. Eviction never breaks verifiability of what remains:
//!   the retained suffix still chains, and the oldest retained event's
//!   `prev_hash` commits to the evicted prefix.
//! * [`AuditAnchor`] — an SCPU signature over the chain tip
//!   (`wormaudit.anchor.v1` payload), minted through the witness plane
//!   the same way head certificates are. The audit log thereby inherits
//!   the tamper-evidence of the records it describes: rewriting any
//!   anchored event requires forging an RSA signature.
//! * [`codec`] — the canonical `wormaudit.events.v1` page encoding
//!   served by the wire opcode `FetchAuditEvents`.
//! * [`verify_chain`] — the auditor-side replay: recompute every link,
//!   check every anchor signature, report the first divergence.
//! * [`AuditTraceSink`] — the bridge from `wormtrace`'s pluggable
//!   [`TraceSink`](wormtrace::TraceSink): failure-shaped trace events
//!   (read errors, admission sheds, daemon give-up) are classified into
//!   audit events, so instrumented paths need no second emit call.
//!
//! Layering: this crate sits below `strongworm`/`wormnet` (which emit
//! into it and anchor it) and depends only on `wormcrypt` (hashing,
//! signature verification) and `wormtrace` (counters and the sink
//! trait). Signature *minting* stays inside the SCPU firmware; this
//! crate only defines the payload being signed and verifies the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
mod event;
mod log;
mod sink;
mod sync;
pub mod verify;
pub mod wire;

pub use event::{anchor_payload, AuditAnchor, AuditClass, AuditEvent, ALL_CLASSES};
pub use log::{AuditLog, AuditPage, DEFAULT_ANCHOR_CAPACITY, DEFAULT_JOURNAL_CAPACITY};
pub use sink::AuditTraceSink;
pub use verify::{verify_chain, ChainDivergence, ChainReport};
