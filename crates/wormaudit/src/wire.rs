//! Canonical wire encoding for audit-plane payloads.
//!
//! Audit events are hashed and anchors are signed over their canonical
//! encodings, so every value must have exactly one encoding — the same
//! obligation `strongworm::wire` discharges for SCPU-signed statements.
//! This crate sits *below* `strongworm` (which emits into it), so it
//! carries its own copy of the tiny deterministic format rather than
//! importing one from above: fixed-width integers big-endian,
//! variable-length byte strings with `u32` length prefixes, in a fixed
//! field order defined by each caller.

/// Largest byte string a `u32` length prefix can describe.
// wormlint: allow(cast) -- lossless u32→u64 widening; `u64::from` is not usable in const context
pub const MAX_WIRE_BYTES: u64 = u32::MAX as u64;

/// Canonical encoder.
#[derive(Clone, Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer pre-tagged with a domain-separation label.
    pub fn tagged(tag: &str) -> Self {
        let mut w = Self::new();
        w.put_bytes(tag.as_bytes());
        w
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32`, big-endian.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64`, big-endian.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `v` is longer than [`MAX_WIRE_BYTES`] — a length the
    /// `u32` prefix cannot represent must never be silently truncated
    /// into a corrupt canonical encoding. Every byte string this crate
    /// encodes (32-byte hashes, 8-byte key ids, bounded detail strings,
    /// RSA signatures) sits orders of magnitude below the bound.
    #[allow(clippy::expect_used)]
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        let len = u32::try_from(v.len())
            // wormlint: allow(panic) -- documented contract above: a length the u32 prefix cannot represent must halt rather than wrap into a corrupt canonical encoding
            .expect("byte string exceeds the u32 length prefix");
        self.put_u32(len);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends a collection count into a `u32` slot.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` — mirrors [`WireWriter::put_bytes`]:
    /// a count the prefix cannot represent must never wrap.
    #[allow(clippy::expect_used)]
    pub fn put_count(&mut self, n: usize) -> &mut Self {
        // wormlint: allow(panic) -- a count above u32::MAX must halt rather than wrap; the bounded journal holds at most a few thousand events
        self.put_u32(u32::try_from(n).expect("collection count exceeds the u32 wire slot"))
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding error: input too short or malformed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What the reader was trying to decode.
    pub expected: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated or malformed audit wire data while reading {}",
            self.expected
        )
    }
}

impl std::error::Error for WireError {}

/// Canonical decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let (&first, rest) = self.buf.split_first().ok_or(WireError { expected: "u8" })?;
        self.buf = rest;
        Ok(first)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<4>()
            .ok_or(WireError { expected: "u32" })?;
        self.buf = rest;
        Ok(u32::from_be_bytes(*head))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<8>()
            .ok_or(WireError { expected: "u64" })?;
        self.buf = rest;
        Ok(u64::from_be_bytes(*head))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// The returned slice borrows the input, so a hostile length prefix
    /// can never allocate: the claimed length is checked against the
    /// bytes actually present *before* anything is consumed.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the prefix or payload is truncated.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = usize::try_from(self.get_u32()?).map_err(|_| WireError {
            expected: "length within address space",
        })?;
        if self.buf.len() < len {
            return Err(WireError { expected: "bytes" });
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(head)
    }

    /// Reads a length-prefixed byte string, additionally rejecting any
    /// string longer than `max` bytes — the count-bomb guard for
    /// decoders that copy into owned storage.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or when the string exceeds `max`.
    pub fn get_bytes_bounded(&mut self, max: usize) -> Result<&'a [u8], WireError> {
        let b = self.get_bytes()?;
        if b.len() > max {
            return Err(WireError {
                expected: "byte string within decoder bound",
            });
        }
        Ok(b)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| WireError {
            expected: "utf-8 string",
        })
    }

    /// Reads a `u32` collection count as `usize`. Callers still bound
    /// the result against their own caps before allocating.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or a count the address space cannot
    /// hold.
    pub fn get_count(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u32()?).map_err(|_| WireError {
            expected: "count within address space",
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError`] if trailing bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError {
                expected: "end of input",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::tagged("audit.test.v1");
        w.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_bytes(b"payload")
            .put_str("detail");
        assert!(!w.is_empty());
        let written = w.len();
        let buf = w.finish();
        assert_eq!(buf.len(), written);

        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_str().unwrap(), "audit.test.v1");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "detail");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = WireWriter::new();
        w.put_u64(1).put_bytes(b"abc");
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let ok = r.get_u64().and_then(|_| r.get_bytes().map(|_| ()));
            assert!(ok.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn length_prefix_cannot_overread() {
        let mut raw = 100u32.to_be_bytes().to_vec();
        raw.extend_from_slice(b"ab");
        assert!(WireReader::new(&raw).get_bytes().is_err());
    }

    #[test]
    fn bounded_get_bytes_enforces_cap() {
        let mut w = WireWriter::new();
        w.put_bytes(&[7u8; 100]);
        let buf = w.finish();
        assert!(WireReader::new(&buf).get_bytes_bounded(99).is_err());
        assert_eq!(
            WireReader::new(&buf).get_bytes_bounded(100).unwrap().len(),
            100
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        let mut buf = w.finish();
        buf.push(99);
        let mut r = WireReader::new(&buf);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn field_shifting_changes_encoding() {
        let mut w1 = WireWriter::new();
        w1.put_bytes(b"ab").put_bytes(b"c");
        let mut w2 = WireWriter::new();
        w2.put_bytes(b"a").put_bytes(b"bc");
        assert_ne!(w1.finish(), w2.finish());
    }
}
