//! The bounded, hash-chained audit journal.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use wormtrace::{Counter, Gauge, Registry};

use crate::codec::{event_hash, MAX_DETAIL_BYTES, MAX_PAGE_ANCHORS, MAX_PAGE_EVENTS};
use crate::event::{AuditAnchor, AuditClass, AuditEvent};
use crate::sync;

/// Default bounded journal capacity (events retained).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Default number of anchors retained.
pub const DEFAULT_ANCHOR_CAPACITY: usize = MAX_PAGE_ANCHORS;

/// A fetched window of the journal: events plus every retained anchor.
///
/// Cursors are derived from the events' own (chain-protected) sequence
/// numbers — the page deliberately carries no unauthenticated header
/// fields. An empty `events` list means the cursor is at (or past) the
/// chain tip.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditPage {
    /// Events in sequence order, starting at the requested cursor (or
    /// the oldest retained event, whichever is later).
    pub events: Vec<AuditEvent>,
    /// Every retained SCPU anchor, in ascending sequence order.
    pub anchors: Vec<AuditAnchor>,
}

impl AuditPage {
    /// The cursor to pass to the next fetch: one past the last event,
    /// or `None` when the page is empty.
    pub fn next_cursor(&self) -> Option<u64> {
        self.events.last().map(|e| e.seq + 1)
    }
}

/// The milliseconds clock an [`AuditLog`] stamps events with.
pub type ClockFn = dyn Fn() -> u64 + Send + Sync;

struct LogInner {
    events: VecDeque<AuditEvent>,
    anchors: VecDeque<AuditAnchor>,
    /// Sequence number the next event will take (= chain height).
    next_seq: u64,
    /// Chain hash of the most recent event (genesis zero before any).
    last_hash: [u8; 32],
    /// Sequence of the last anchored event, if any.
    last_anchor_seq: Option<u64>,
}

/// The bounded, thread-safe integrity journal the serving planes emit
/// into.
///
/// Emission appends a hash-chained [`AuditEvent`]; when full, the
/// oldest event is evicted (and counted) — the retained suffix still
/// chains, and the oldest retained event's `prev_hash` commits to the
/// evicted prefix. Counters (`audit.emitted`, `audit.dropped`,
/// `audit.anchored`) and the `audit.chain_height` gauge register on
/// the deployment's [`Registry`], so stats pollers see audit health
/// without the dedicated fetch opcode.
pub struct AuditLog {
    inner: Mutex<LogInner>,
    clock: Box<ClockFn>,
    capacity: usize,
    anchor_capacity: usize,
    enabled: AtomicBool,
    emitted: Arc<Counter>,
    dropped: Arc<Counter>,
    anchored: Arc<Counter>,
    height: Arc<Gauge>,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.capacity)
            .field("height", &self.height.get())
            .finish()
    }
}

impl AuditLog {
    /// A journal retaining at most `capacity` events (min 1), stamping
    /// times from `clock` and registering its `audit.*` instruments on
    /// `registry`.
    pub fn new(capacity: usize, registry: &Registry, clock: Box<ClockFn>) -> Self {
        AuditLog {
            inner: Mutex::new(LogInner {
                events: VecDeque::new(),
                anchors: VecDeque::new(),
                next_seq: 0,
                last_hash: [0u8; 32],
                last_anchor_seq: None,
            }),
            clock,
            capacity: capacity.max(1),
            anchor_capacity: DEFAULT_ANCHOR_CAPACITY,
            enabled: AtomicBool::new(true),
            emitted: registry.counter("audit.emitted"),
            dropped: registry.counter("audit.dropped"),
            anchored: registry.counter("audit.anchored"),
            height: registry.gauge("audit.chain_height"),
        }
    }

    /// Whether emission is live. The kill switch for overhead
    /// measurement and emergency shedding; fetching stays available
    /// either way.
    pub fn is_enabled(&self) -> bool {
        // ordering: advisory on/off flag — a stale read records (or
        // skips) at most a few events; no data is guarded by it.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables emission ([`AuditLog::emit`] becomes a
    /// no-op while disabled; anchoring and fetching keep working).
    pub fn set_enabled(&self, enabled: bool) {
        // ordering: see `is_enabled` — the flag publishes nothing.
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Appends one event to the chain. No-op while disabled.
    pub fn emit(&self, class: AuditClass, sn: Option<u64>, detail: &str) {
        if !self.is_enabled() {
            return;
        }
        let at_ms = (self.clock)();
        // lock-order: AuditLog.inner is a terminal leaf; emitters may hold witness/vrdt and no lock is taken under it
        let mut inner = sync::lock(&self.inner);
        let event = AuditEvent {
            seq: inner.next_seq,
            at_ms,
            class,
            sn,
            detail: bounded_detail(detail),
            prev_hash: inner.last_hash,
        };
        inner.last_hash = event_hash(&event);
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            self.dropped.add(1);
        }
        inner.events.push_back(event);
        self.emitted.add(1);
        self.height.set(inner.next_seq);
    }

    /// The chain tip to anchor — `(seq, chain_hash)` of the latest
    /// event — when it is not already covered by the newest anchor.
    /// `None` when the journal is empty or the tip is anchored.
    pub fn needs_anchor(&self) -> Option<(u64, [u8; 32])> {
        // lock-order: AuditLog.inner is a terminal leaf; emitters may hold witness/vrdt and no lock is taken under it
        let inner = sync::lock(&self.inner);
        if inner.next_seq == 0 {
            return None;
        }
        let tip = inner.next_seq - 1;
        if inner.last_anchor_seq == Some(tip) {
            return None;
        }
        Some((tip, inner.last_hash))
    }

    /// Installs an SCPU-minted anchor over the chain tip returned by
    /// [`AuditLog::needs_anchor`]. Anchors are kept in a bounded list
    /// (oldest evicted first).
    pub fn install_anchor(&self, anchor: AuditAnchor) {
        // lock-order: AuditLog.inner is a terminal leaf; emitters may hold witness/vrdt and no lock is taken under it
        let mut inner = sync::lock(&self.inner);
        inner.last_anchor_seq = Some(anchor.seq);
        if inner.anchors.len() == self.anchor_capacity {
            inner.anchors.pop_front();
        }
        inner.anchors.push_back(anchor);
        self.anchored.add(1);
    }

    /// Copies out the window starting at `from_seq` (clamped to the
    /// oldest retained event), at most `max` events (clamped to the
    /// wire page bound), plus every retained anchor.
    pub fn page(&self, from_seq: u64, max: usize) -> AuditPage {
        let max = max.clamp(1, MAX_PAGE_EVENTS);
        let inner = sync::lock(&self.inner);
        let events = inner
            .events
            .iter()
            .skip_while(|e| e.seq < from_seq)
            .take(max)
            .cloned()
            .collect();
        AuditPage {
            events,
            anchors: inner.anchors.iter().cloned().collect(),
        }
    }

    /// Sequence number the next event will take (= chain height).
    pub fn height(&self) -> u64 {
        sync::lock(&self.inner).next_seq
    }

    /// Oldest retained sequence number, if any event is retained.
    pub fn first_retained_seq(&self) -> Option<u64> {
        sync::lock(&self.inner).events.front().map(|e| e.seq)
    }

    /// Sequence of the last anchored event, if any anchor exists.
    pub fn last_anchor_seq(&self) -> Option<u64> {
        sync::lock(&self.inner).last_anchor_seq
    }

    /// Flips one byte of a retained event's stored detail — an
    /// **adversarial test hook** modelling a host that rewrites its
    /// audit journal. Subsequent fetches serve the doctored event;
    /// [`crate::verify_chain`] must report the divergence. No-op when
    /// `seq` is not retained.
    #[doc(hidden)]
    pub fn tamper_event_for_test(&self, seq: u64) {
        let mut inner = sync::lock(&self.inner);
        if let Some(e) = inner.events.iter_mut().find(|e| e.seq == seq) {
            // Flip the low bit of the timestamp: a minimal, detail-free
            // mutation that must still break the chain.
            e.at_ms ^= 1;
        }
    }
}

/// Truncates `detail` to the wire bound at a character boundary.
fn bounded_detail(detail: &str) -> String {
    if detail.len() <= MAX_DETAIL_BYTES {
        return detail.to_owned();
    }
    let mut end = MAX_DETAIL_BYTES;
    while end > 0 && !detail.is_char_boundary(end) {
        end -= 1;
    }
    detail.get(..end).unwrap_or_default().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::event_hash;

    fn log(capacity: usize) -> AuditLog {
        let registry = Registry::new();
        AuditLog::new(capacity, &registry, Box::new(|| 1234))
    }

    fn counted_log(capacity: usize) -> (AuditLog, std::sync::Arc<Registry>) {
        let registry = std::sync::Arc::new(Registry::new());
        let log = AuditLog::new(capacity, &registry, Box::new(|| 1234));
        (log, registry)
    }

    #[test]
    fn chain_links_and_counters() {
        let (log, registry) = counted_log(16);
        log.emit(AuditClass::HeadRefresh, Some(1), "a");
        log.emit(AuditClass::ShredComplete, None, "b");
        log.emit(AuditClass::VerifyFailure, Some(9), "c");
        let page = log.page(0, 100);
        assert_eq!(page.events.len(), 3);
        assert_eq!(page.events[0].prev_hash, [0u8; 32]);
        assert_eq!(page.events[1].prev_hash, event_hash(&page.events[0]));
        assert_eq!(page.events[2].prev_hash, event_hash(&page.events[1]));
        assert_eq!(page.next_cursor(), Some(3));
        assert_eq!(log.height(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("audit.emitted"), 3);
        assert_eq!(snap.counter("audit.dropped"), 0);
        assert_eq!(snap.gauge("audit.chain_height"), Some(3));
    }

    #[test]
    fn eviction_keeps_suffix_chained() {
        let (log, registry) = counted_log(4);
        for i in 0..10 {
            log.emit(AuditClass::HeadRemint, Some(i), "x");
        }
        assert_eq!(log.first_retained_seq(), Some(6));
        let page = log.page(0, 100);
        assert_eq!(page.events.len(), 4);
        for pair in page.events.windows(2) {
            assert_eq!(pair[1].prev_hash, event_hash(&pair[0]));
        }
        assert_eq!(registry.snapshot().counter("audit.dropped"), 6);
    }

    #[test]
    fn pagination_cursor_walks_the_chain() {
        let log = log(64);
        for i in 0..7 {
            log.emit(AuditClass::AdmissionShed, None, &format!("{i}"));
        }
        let mut cursor = 0;
        let mut seen = Vec::new();
        loop {
            let page = log.page(cursor, 3);
            let Some(next) = page.next_cursor() else {
                break;
            };
            seen.extend(page.events.iter().map(|e| e.seq));
            cursor = next;
        }
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn anchor_lifecycle() {
        let log = log(16);
        assert!(log.needs_anchor().is_none());
        log.emit(AuditClass::TamperDetected, Some(3), "bad hash");
        let (seq, hash) = log.needs_anchor().unwrap();
        assert_eq!(seq, 0);
        let tip = log.page(0, 10).events.pop().unwrap();
        assert_eq!(hash, event_hash(&tip));
        log.install_anchor(AuditAnchor {
            seq,
            chain_hash: hash,
            issued_at_ms: 1,
            key_id: [0; 8],
            sig: vec![1],
        });
        assert!(log.needs_anchor().is_none());
        assert_eq!(log.last_anchor_seq(), Some(0));
        log.emit(AuditClass::HeadRefresh, None, "");
        assert_eq!(log.needs_anchor().unwrap().0, 1);
    }

    #[test]
    fn kill_switch_stops_emission() {
        let log = log(16);
        log.set_enabled(false);
        assert!(!log.is_enabled());
        log.emit(AuditClass::HeadRefresh, None, "");
        assert_eq!(log.height(), 0);
        log.set_enabled(true);
        log.emit(AuditClass::HeadRefresh, None, "");
        assert_eq!(log.height(), 1);
    }

    #[test]
    fn detail_is_bounded_at_char_boundaries() {
        let log = log(4);
        let long = "é".repeat(MAX_DETAIL_BYTES); // 2 bytes per char
        log.emit(AuditClass::VerifyFailure, None, &long);
        let page = log.page(0, 1);
        let detail = &page.events[0].detail;
        assert!(detail.len() <= MAX_DETAIL_BYTES);
        assert!(detail.chars().all(|c| c == 'é'));
    }

    #[test]
    fn tamper_hook_changes_served_bytes() {
        let log = log(8);
        log.emit(AuditClass::HeadRefresh, None, "a");
        log.emit(AuditClass::HeadRefresh, None, "b");
        let before = log.page(0, 10);
        log.tamper_event_for_test(0);
        let after = log.page(0, 10);
        assert_ne!(before.events[0], after.events[0]);
        // The chain no longer links: event 1's prev_hash was computed
        // over the untampered event 0.
        assert_ne!(after.events[1].prev_hash, event_hash(&after.events[0]));
    }
}
