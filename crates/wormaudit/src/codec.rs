//! The canonical `wormaudit.events.v1` page codec and the chain hash.
//!
//! One encoding per value: the event encoding below is both the wire
//! form served by `FetchAuditEvents` and (domain-tagged) the preimage
//! of the chain hash, so what an auditor replays is byte-for-byte what
//! the journal hashed. Decoders bound every count and byte string
//! before allocating — a hostile page can make the decoder fail, never
//! allocate unboundedly — and reject trailing bytes, so any single
//! flipped byte in a page either fails decoding outright or surfaces
//! as a chain/anchor divergence during [`crate::verify_chain`].

use wormcrypt::Sha256;

use crate::event::{AuditAnchor, AuditClass, AuditEvent};
use crate::log::AuditPage;
use crate::wire::{WireError, WireReader, WireWriter};

/// Domain tag of the audit page encoding.
pub const PAGE_TAG: &str = "wormaudit.events.v1";

/// Most events one page may carry — servers clamp fetch requests to
/// this, and decoders reject anything claiming more.
pub const MAX_PAGE_EVENTS: usize = 4096;

/// Longest detail string an event may carry on the wire.
pub const MAX_DETAIL_BYTES: usize = 512;

/// Most anchors one page may carry.
pub const MAX_PAGE_ANCHORS: usize = 64;

/// Longest anchor signature accepted (bounds a hostile length prefix;
/// a 16k-bit RSA modulus is far beyond anything this stack mints).
pub const MAX_SIG_BYTES: usize = 2048;

fn put_event(w: &mut WireWriter, e: &AuditEvent) {
    w.put_u64(e.seq);
    w.put_u64(e.at_ms);
    w.put_u8(e.class.code());
    match e.sn {
        Some(sn) => {
            w.put_u8(1);
            w.put_u64(sn);
        }
        None => {
            w.put_u8(0);
            w.put_u64(0);
        }
    }
    w.put_str(&e.detail);
    w.put_bytes(&e.prev_hash);
}

fn get_event(r: &mut WireReader<'_>) -> Result<AuditEvent, WireError> {
    let seq = r.get_u64()?;
    let at_ms = r.get_u64()?;
    let class = AuditClass::from_code(r.get_u8()?).ok_or(WireError {
        expected: "known audit class code",
    })?;
    let sn_present = r.get_u8()?;
    let sn_value = r.get_u64()?;
    let sn = match (sn_present, sn_value) {
        (0, 0) => None,
        (1, v) => Some(v),
        // Canonical form: an absent SN is encoded exactly as (0, 0).
        _ => {
            return Err(WireError {
                expected: "canonical sn presence flag",
            })
        }
    };
    let detail = {
        let b = r.get_bytes_bounded(MAX_DETAIL_BYTES)?;
        std::str::from_utf8(b)
            .map_err(|_| WireError {
                expected: "utf-8 detail string",
            })?
            .to_owned()
    };
    let prev_hash: [u8; 32] = r.get_bytes()?.try_into().map_err(|_| WireError {
        expected: "32-byte chain hash",
    })?;
    Ok(AuditEvent {
        seq,
        at_ms,
        class,
        sn,
        detail,
        prev_hash,
    })
}

/// Canonical encoding of one audit event.
pub fn encode_audit_event(e: &AuditEvent) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_event(&mut w, e);
    w.finish()
}

/// Decodes one audit event.
///
/// # Errors
///
/// [`WireError`] on truncation, an unknown class code, a non-canonical
/// SN flag, an oversized detail string, or trailing bytes.
pub fn decode_audit_event(bytes: &[u8]) -> Result<AuditEvent, WireError> {
    let mut r = WireReader::new(bytes);
    let e = get_event(&mut r)?;
    r.expect_end()?;
    Ok(e)
}

/// The chain hash of an event: SHA-256 over its canonical encoding
/// under a link-specific domain tag. Because the encoding includes
/// `prev_hash`, each hash commits to the entire prefix of the journal.
pub fn event_hash(e: &AuditEvent) -> [u8; 32] {
    let mut w = WireWriter::tagged("wormaudit.link.v1");
    put_event(&mut w, e);
    Sha256::digest_array(&w.finish())
}

fn put_anchor(w: &mut WireWriter, a: &AuditAnchor) {
    w.put_u64(a.seq);
    w.put_bytes(&a.chain_hash);
    w.put_u64(a.issued_at_ms);
    w.put_bytes(&a.key_id);
    w.put_bytes(&a.sig);
}

fn get_anchor(r: &mut WireReader<'_>) -> Result<AuditAnchor, WireError> {
    let seq = r.get_u64()?;
    let chain_hash: [u8; 32] = r.get_bytes()?.try_into().map_err(|_| WireError {
        expected: "32-byte anchored chain hash",
    })?;
    let issued_at_ms = r.get_u64()?;
    let key_id: [u8; 8] = r.get_bytes()?.try_into().map_err(|_| WireError {
        expected: "8-byte key fingerprint",
    })?;
    let sig = r.get_bytes_bounded(MAX_SIG_BYTES)?.to_vec();
    Ok(AuditAnchor {
        seq,
        chain_hash,
        issued_at_ms,
        key_id,
        sig,
    })
}

/// Canonical encoding of one SCPU chain anchor.
pub fn encode_audit_anchor(a: &AuditAnchor) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_anchor(&mut w, a);
    w.finish()
}

/// Decodes one SCPU chain anchor.
///
/// # Errors
///
/// [`WireError`] on truncation, malformed hash/fingerprint widths, an
/// oversized signature, or trailing bytes.
pub fn decode_audit_anchor(bytes: &[u8]) -> Result<AuditAnchor, WireError> {
    let mut r = WireReader::new(bytes);
    let a = get_anchor(&mut r)?;
    r.expect_end()?;
    Ok(a)
}

/// Canonical `wormaudit.events.v1` encoding of a fetched page.
///
/// Layout: tag, event count, events, anchor count, anchors. The page
/// carries no unauthenticated header fields — cursors are derived from
/// the (chain-protected) event sequence numbers themselves, so every
/// byte after the tag is covered by the hash chain, an anchor
/// signature, or the end-of-input check.
pub fn encode_audit_page(p: &AuditPage) -> Vec<u8> {
    let mut w = WireWriter::tagged(PAGE_TAG);
    w.put_count(p.events.len());
    for e in &p.events {
        put_event(&mut w, e);
    }
    w.put_count(p.anchors.len());
    for a in &p.anchors {
        put_anchor(&mut w, a);
    }
    w.finish()
}

/// Decodes a `wormaudit.events.v1` page.
///
/// # Errors
///
/// [`WireError`] on a wrong tag, counts above [`MAX_PAGE_EVENTS`] /
/// [`MAX_PAGE_ANCHORS`], any malformed element, or trailing bytes.
pub fn decode_audit_page(bytes: &[u8]) -> Result<AuditPage, WireError> {
    let mut r = WireReader::new(bytes);
    if r.get_str()? != PAGE_TAG {
        return Err(WireError {
            expected: "wormaudit.events.v1 tag",
        });
    }
    let n_events = r.get_count()?;
    if n_events > MAX_PAGE_EVENTS {
        return Err(WireError {
            expected: "event count within page bound",
        });
    }
    let mut events = Vec::with_capacity(n_events.min(r.remaining()));
    for _ in 0..n_events {
        events.push(get_event(&mut r)?);
    }
    let n_anchors = r.get_count()?;
    if n_anchors > MAX_PAGE_ANCHORS {
        return Err(WireError {
            expected: "anchor count within page bound",
        });
    }
    let mut anchors = Vec::with_capacity(n_anchors.min(r.remaining()));
    for _ in 0..n_anchors {
        anchors.push(get_anchor(&mut r)?);
    }
    r.expect_end()?;
    Ok(AuditPage { events, anchors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64) -> AuditEvent {
        AuditEvent {
            seq,
            at_ms: 1000 + seq,
            class: AuditClass::HeadRemint,
            sn: seq.is_multiple_of(2).then_some(seq * 3),
            detail: format!("event {seq}"),
            prev_hash: [u8::try_from(seq & 0xFF).unwrap_or(0); 32],
        }
    }

    fn anchor(seq: u64) -> AuditAnchor {
        AuditAnchor {
            seq,
            chain_hash: [3u8; 32],
            issued_at_ms: 9000,
            key_id: [5u8; 8],
            sig: vec![7u8; 64],
        }
    }

    #[test]
    fn event_roundtrip_and_hash_stability() {
        let e = event(4);
        let bytes = encode_audit_event(&e);
        assert_eq!(decode_audit_event(&bytes).unwrap(), e);
        // The hash is over the tagged encoding, not the raw one.
        assert_ne!(event_hash(&e).to_vec(), Sha256::digest_array(&bytes));
        // Any field change changes the hash.
        let mut e2 = e.clone();
        e2.detail.push('!');
        assert_ne!(event_hash(&e), event_hash(&e2));
    }

    #[test]
    fn anchor_roundtrip() {
        let a = anchor(9);
        let bytes = encode_audit_anchor(&a);
        assert_eq!(decode_audit_anchor(&bytes).unwrap(), a);
    }

    #[test]
    fn page_roundtrip_and_truncation_at_every_byte() {
        let page = AuditPage {
            events: (0..5).map(event).collect(),
            anchors: vec![anchor(4)],
        };
        let bytes = encode_audit_page(&page);
        assert_eq!(decode_audit_page(&bytes).unwrap(), page);
        for cut in 0..bytes.len() {
            assert!(
                decode_audit_page(&bytes[..cut]).is_err(),
                "cut={cut} must fail"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_audit_page(&trailing).is_err());
    }

    #[test]
    fn hostile_counts_are_bounded() {
        // Claimed u32::MAX events: rejected by the bound, with no
        // allocation proportional to the claim.
        let mut w = WireWriter::tagged(PAGE_TAG);
        w.put_u32(u32::MAX);
        assert!(decode_audit_page(&w.finish()).is_err());
        // Oversized detail string inside an otherwise valid event.
        let mut big = event(0);
        big.detail = "x".repeat(MAX_DETAIL_BYTES + 1);
        let bytes = encode_audit_event(&big);
        assert!(decode_audit_event(&bytes).is_err());
        // Claimed anchor-signature length above the bound.
        let mut fat = anchor(0);
        fat.sig = vec![1u8; MAX_SIG_BYTES + 1];
        assert!(decode_audit_anchor(&encode_audit_anchor(&fat)).is_err());
    }

    #[test]
    fn non_canonical_sn_flag_rejected() {
        let mut e = event(1);
        e.sn = None;
        let mut bytes = encode_audit_event(&e);
        // Locate the presence byte: 8 (seq) + 8 (at_ms) + 1 (class).
        let flag_at = 17;
        if let Some(b) = bytes.get_mut(flag_at) {
            assert_eq!(*b, 0);
            *b = 1; // claims "present" but the decoder then sees sn=0 + same bytes
        }
        // Flag 1 with value 0 decodes as Some(0) — legal. Flag 2 is not.
        if let Some(b) = bytes.get_mut(flag_at) {
            *b = 2;
        }
        assert!(decode_audit_event(&bytes).is_err());
        // And an absent SN must carry a zero value slot.
        let mut bytes2 = encode_audit_event(&e);
        if let Some(b) = bytes2.get_mut(flag_at + 8) {
            *b = 9;
        }
        assert!(decode_audit_event(&bytes2).is_err());
    }

    #[test]
    fn unknown_class_code_rejected() {
        let e = event(1);
        let mut bytes = encode_audit_event(&e);
        if let Some(b) = bytes.get_mut(16) {
            *b = 200;
        }
        assert!(decode_audit_event(&bytes).is_err());
    }
}
