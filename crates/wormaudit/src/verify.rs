//! Auditor-side chain replay: recompute every link, check every
//! anchor, report the first divergence.

use wormcrypt::RsaPublicKey;

use crate::codec::event_hash;
use crate::log::AuditPage;

/// Why a fetched chain failed verification, anchored to the earliest
/// offending sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainDivergence {
    /// Sequence number at which the chain first diverges.
    pub seq: u64,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ChainDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at seq {}: {}", self.seq, self.reason)
    }
}

/// The result of replaying a fetched chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// Events whose link to their predecessor verified.
    pub verified_links: usize,
    /// Anchors whose hash matched the replayed chain and whose SCPU
    /// signature verified against a known key.
    pub verified_anchors: usize,
    /// Anchors covering sequence numbers outside the fetched window
    /// (their signatures were still checked; their hashes cannot be).
    pub out_of_window_anchors: usize,
    /// Sequence of the newest in-window verified anchor, if any.
    pub last_anchored_seq: Option<u64>,
    /// Events newer than the newest verified anchor. The chain links
    /// attest every event except the very last one; an unattested tail
    /// of 0 means the tip itself is under an SCPU signature.
    pub unattested_tail: usize,
    /// The first divergence found, if any. `None` means the window
    /// replayed cleanly.
    pub divergence: Option<ChainDivergence>,
}

impl ChainReport {
    /// Whether the window replayed cleanly (no divergence).
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

fn diverge(report: &mut ChainReport, seq: u64, reason: String) {
    let earlier = report
        .divergence
        .as_ref()
        .is_none_or(|existing| seq < existing.seq);
    if earlier {
        report.divergence = Some(ChainDivergence { seq, reason });
    }
}

/// Replays a fetched page against the SCPU keys `keys` (the permanent
/// witnessing keys of every shard, from `GetKeys`/`GetShardKeys`).
///
/// Checks, in order of the chain:
///
/// 1. sequence numbers are dense (`seq[i+1] == seq[i] + 1`);
/// 2. every event's `prev_hash` equals the recomputed chain hash of
///    its predecessor;
/// 3. every anchor covering a fetched event carries that event's
///    recomputed chain hash and a valid signature under a known key.
///
/// The report records the **first** divergence (smallest sequence
/// number); a clean report with `unattested_tail == 0` means every
/// fetched byte is covered by the hash chain and an SCPU signature.
pub fn verify_chain(page: &AuditPage, keys: &[RsaPublicKey]) -> ChainReport {
    let mut report = ChainReport::default();

    let mut prev: Option<&crate::AuditEvent> = None;
    for event in &page.events {
        if let Some(p) = prev {
            if event.seq != p.seq + 1 {
                diverge(
                    &mut report,
                    event.seq,
                    format!("sequence gap: {} follows {}", event.seq, p.seq),
                );
                break;
            }
            if event.prev_hash != event_hash(p) {
                diverge(
                    &mut report,
                    p.seq,
                    format!("hash-chain break between seq {} and {}", p.seq, event.seq),
                );
                break;
            }
            report.verified_links += 1;
        }
        prev = Some(event);
    }

    let first_seq = page.events.first().map(|e| e.seq);
    let last_seq = page.events.last().map(|e| e.seq);
    for anchor in &page.anchors {
        let in_window = first_seq
            .zip(last_seq)
            .is_some_and(|(lo, hi)| lo <= anchor.seq && anchor.seq <= hi);
        if !in_window {
            report.out_of_window_anchors += 1;
            continue;
        }
        let covered = page.events.iter().find(|e| e.seq == anchor.seq);
        let Some(event) = covered else {
            // In-window but absent: the sequence gap already diverged.
            continue;
        };
        if anchor.chain_hash != event_hash(event) {
            diverge(
                &mut report,
                anchor.seq,
                format!(
                    "anchor over seq {} does not match replayed chain",
                    anchor.seq
                ),
            );
            continue;
        }
        let signer = keys.iter().find(|k| k.fingerprint() == anchor.key_id);
        let Some(key) = signer else {
            diverge(
                &mut report,
                anchor.seq,
                format!("anchor over seq {} signed by unknown key", anchor.seq),
            );
            continue;
        };
        if !anchor.verify(key) {
            diverge(
                &mut report,
                anchor.seq,
                format!("anchor signature over seq {} is invalid", anchor.seq),
            );
            continue;
        }
        report.verified_anchors += 1;
        if report.last_anchored_seq.is_none_or(|s| anchor.seq > s) {
            report.last_anchored_seq = Some(anchor.seq);
        }
    }

    if let Some(hi) = last_seq {
        let anchored_to = report.last_anchored_seq;
        report.unattested_tail = match anchored_to {
            Some(a) if a >= hi => 0,
            Some(a) => usize::try_from(hi - a).unwrap_or(usize::MAX),
            None => page.events.len(),
        };
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::event_hash;
    use crate::event::{anchor_payload, AuditAnchor, AuditClass, AuditEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wormcrypt::{HashAlg, RsaPrivateKey};

    fn key() -> &'static RsaPrivateKey {
        static KEY: std::sync::OnceLock<RsaPrivateKey> = std::sync::OnceLock::new();
        KEY.get_or_init(|| RsaPrivateKey::generate(&mut StdRng::seed_from_u64(21), 512))
    }

    fn chain(n: u64) -> Vec<AuditEvent> {
        let mut events = Vec::new();
        let mut prev_hash = [0u8; 32];
        for seq in 0..n {
            let e = AuditEvent {
                seq,
                at_ms: 100 + seq,
                class: AuditClass::HeadRemint,
                sn: Some(seq),
                detail: format!("e{seq}"),
                prev_hash,
            };
            prev_hash = event_hash(&e);
            events.push(e);
        }
        events
    }

    fn anchor_over(e: &AuditEvent) -> AuditAnchor {
        let hash = event_hash(e);
        let payload = anchor_payload(e.seq, &hash, 5000);
        AuditAnchor {
            seq: e.seq,
            chain_hash: hash,
            issued_at_ms: 5000,
            key_id: key().public().fingerprint(),
            sig: key().sign(&payload, HashAlg::Sha256).unwrap(),
        }
    }

    #[test]
    fn clean_chain_fully_anchored() {
        let events = chain(5);
        let anchors = vec![anchor_over(&events[4])];
        let page = AuditPage { events, anchors };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert!(report.is_clean(), "{:?}", report.divergence);
        assert_eq!(report.verified_links, 4);
        assert_eq!(report.verified_anchors, 1);
        assert_eq!(report.last_anchored_seq, Some(4));
        assert_eq!(report.unattested_tail, 0);
    }

    #[test]
    fn unanchored_tail_is_counted() {
        let events = chain(6);
        let anchors = vec![anchor_over(&events[3])];
        let page = AuditPage { events, anchors };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert!(report.is_clean());
        assert_eq!(report.unattested_tail, 2);
    }

    #[test]
    fn flipped_event_breaks_the_chain() {
        let events = chain(5);
        let anchors = vec![anchor_over(&events[4])];
        let mut page = AuditPage { events, anchors };
        page.events[2].at_ms ^= 1;
        let report = verify_chain(&page, &[key().public().clone()]);
        let d = report.divergence.expect("must diverge");
        assert_eq!(d.seq, 2);
    }

    #[test]
    fn flipped_tip_is_caught_by_the_anchor() {
        let events = chain(3);
        let anchors = vec![anchor_over(&events[2])];
        let mut page = AuditPage { events, anchors };
        page.events[2].detail.push('!');
        let report = verify_chain(&page, &[key().public().clone()]);
        assert_eq!(report.divergence.expect("must diverge").seq, 2);
    }

    #[test]
    fn sequence_gap_diverges() {
        let mut events = chain(5);
        events.remove(2);
        let page = AuditPage {
            events,
            anchors: vec![],
        };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert_eq!(report.divergence.expect("must diverge").seq, 3);
    }

    #[test]
    fn unknown_anchor_key_diverges() {
        let events = chain(2);
        let mut anchor = anchor_over(&events[1]);
        anchor.key_id = [0xAA; 8];
        let page = AuditPage {
            events,
            anchors: vec![anchor],
        };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert!(report
            .divergence
            .expect("must diverge")
            .reason
            .contains("unknown key"));
    }

    #[test]
    fn forged_anchor_signature_diverges() {
        let events = chain(2);
        let mut anchor = anchor_over(&events[1]);
        anchor.issued_at_ms += 1; // signature no longer covers the payload
        let page = AuditPage {
            events,
            anchors: vec![anchor],
        };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert!(report
            .divergence
            .expect("must diverge")
            .reason
            .contains("signature"));
    }

    #[test]
    fn out_of_window_anchor_is_skipped_not_failed() {
        // Fetch a window starting past an old anchor: the old anchor
        // cannot be hash-checked but must not fail the replay.
        let events = chain(6);
        let old = anchor_over(&events[1]);
        let tip = anchor_over(&events[5]);
        let window = events[3..].to_vec();
        let page = AuditPage {
            events: window,
            anchors: vec![old, tip],
        };
        let report = verify_chain(&page, &[key().public().clone()]);
        assert!(report.is_clean());
        assert_eq!(report.out_of_window_anchors, 1);
        assert_eq!(report.verified_anchors, 1);
        assert_eq!(report.unattested_tail, 0);
    }

    #[test]
    fn empty_page_is_clean() {
        let report = verify_chain(&AuditPage::default(), &[]);
        assert!(report.is_clean());
        assert_eq!(report.verified_links, 0);
        assert_eq!(report.unattested_tail, 0);
    }
}
