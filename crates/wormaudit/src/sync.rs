//! Poison-tolerant lock accessor, mirroring `wormtrace::sync`.
//!
//! The audit plane must not take the server down: if a thread panics
//! while holding the journal lock, the panic already records the
//! failure — propagating the poison into every later emit or fetch
//! would turn one broken request into a dead audit plane. The journal
//! is valid after any prefix of its critical section (the worst a
//! recovered guard observes is one lost event), so entering through
//! the poison is strictly better than panicking again.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, entering through a poisoned guard rather than panicking.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
