//! Property: a single flipped byte anywhere in an encoded, anchored
//! audit page is detected — either the canonical decoder rejects the
//! bytes, or the chain replay reports a divergence.
//!
//! This is the acceptance bar for the audit plane's tamper evidence:
//! with the tip under an SCPU anchor, no byte of the page is mutable
//! without the auditor noticing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormaudit::codec::{decode_audit_page, encode_audit_page, event_hash};
use wormaudit::{anchor_payload, verify_chain, AuditAnchor, AuditClass, AuditEvent, AuditPage};
use wormcrypt::{HashAlg, RsaPrivateKey};

fn scpu_key() -> &'static RsaPrivateKey {
    static KEY: std::sync::OnceLock<RsaPrivateKey> = std::sync::OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(&mut StdRng::seed_from_u64(42), 512))
}

/// A well-formed page: a dense hash chain with a signed anchor over the
/// final event, exactly as a server serves it after a `Tick` forces
/// anchoring.
fn anchored_page(n_events: u64, details: &[String]) -> AuditPage {
    let mut events = Vec::new();
    let mut prev_hash = [0u8; 32];
    for seq in 0..n_events {
        let detail = details
            .get(usize::try_from(seq).unwrap_or(0))
            .cloned()
            .unwrap_or_else(|| format!("event {seq}"));
        let e = AuditEvent {
            seq,
            at_ms: 50_000 + seq * 13,
            class: match seq % 4 {
                0 => AuditClass::HeadRemint,
                1 => AuditClass::VerifyFailure,
                2 => AuditClass::AdmissionShed,
                _ => AuditClass::StoreCompaction,
            },
            sn: (seq % 3 == 0).then_some(seq * 7),
            detail,
            prev_hash,
        };
        prev_hash = event_hash(&e);
        events.push(e);
    }
    let tip = events.last().expect("n_events >= 1");
    let hash = event_hash(tip);
    let payload = anchor_payload(tip.seq, &hash, 60_000);
    let anchors = vec![AuditAnchor {
        seq: tip.seq,
        chain_hash: hash,
        issued_at_ms: 60_000,
        key_id: scpu_key().public().fingerprint(),
        sig: scpu_key()
            .sign(&payload, HashAlg::Sha256)
            .expect("sign anchor"),
    }];
    AuditPage { events, anchors }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte at an arbitrary offset and, within that byte, an
    /// arbitrary bit: the tamper must surface.
    #[test]
    fn any_single_flipped_byte_is_detected(
        n_events in 1u64..6,
        details in proptest::collection::vec("[a-z ]{0,24}", 0..6),
        offset_sel in 0usize..65_536,
        bit in 0u8..8,
    ) {
        let page = anchored_page(n_events, &details);
        let keys = [scpu_key().public().clone()];

        // Sanity: the untampered page replays cleanly with no
        // unattested tail.
        let clean = verify_chain(&page, &keys);
        prop_assert!(clean.is_clean(), "clean page diverged: {:?}", clean.divergence);
        prop_assert_eq!(clean.unattested_tail, 0);

        let bytes = encode_audit_page(&page);
        let offset = offset_sel % bytes.len();
        let mut tampered = bytes.clone();
        tampered[offset] ^= 1 << bit;
        prop_assert_ne!(&tampered, &bytes);

        match decode_audit_page(&tampered) {
            // The flip broke the framing itself.
            Err(_) => {}
            // The flip decoded: the replay must catch it.
            Ok(decoded) => {
                prop_assert_ne!(&decoded, &page, "decode must not round-trip tampered bytes");
                let report = verify_chain(&decoded, &keys);
                prop_assert!(
                    !report.is_clean() || report.unattested_tail > 0,
                    "flip at offset {} bit {} survived verification",
                    offset,
                    bit
                );
                // A fully anchored page can never re-verify as fully
                // anchored after a flip.
                prop_assert!(
                    report.divergence.is_some() || report.unattested_tail > 0,
                    "tampered page reported fully attested"
                );
            }
        }
    }

    /// Truncating the encoded page at any point is always a decode
    /// error — there is no prefix of a valid page that is itself valid.
    #[test]
    fn any_truncation_is_a_decode_error(
        n_events in 1u64..5,
        cut_sel in 0usize..65_536,
    ) {
        let page = anchored_page(n_events, &[]);
        let bytes = encode_audit_page(&page);
        let cut = cut_sel % bytes.len();
        prop_assert!(decode_audit_page(&bytes[..cut]).is_err());
    }
}
