//! Criterion benchmarks of the end-to-end WORM operations (wall-clock
//! cost of this implementation; virtual-time figures come from the
//! `figure1` binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use strongworm::{RetentionPolicy, Verifier, WitnessMode};
use worm_bench::quick_server;
use wormstore::Shredder;

fn policy() -> RetentionPolicy {
    RetentionPolicy::custom(Duration::from_secs(365 * 24 * 3600), Shredder::ZeroFill)
}

fn bench_write_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("worm_write");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, mode) in [
        ("strong", WitnessMode::Strong),
        ("deferred", WitnessMode::Deferred),
        ("hmac", WitnessMode::Hmac),
    ] {
        // A large store so criterion's iteration counts never exhaust it.
        let clock = scpu::VirtualClock::starting_at_millis(1_000_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let regulator = strongworm::RegulatoryAuthority::generate(&mut rng, 512);
        let mut cfg = strongworm::WormConfig::test_small();
        cfg.store_capacity = 256 << 20;
        cfg.device.secure_memory_bytes = 64 << 20;
        let srv =
            strongworm::WormServer::new(cfg, clock, regulator.public()).expect("server boots");
        let record = vec![0x42u8; 256];
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                srv.write_with(&[&record], policy(), 0, mode)
                    .expect("write")
            });
        });
    }
    group.finish();
}

fn bench_read_and_verify(c: &mut Criterion) {
    let (srv, clock) = quick_server();
    let record = vec![0x42u8; 4 << 10];
    let sn = srv.write(&[&record], policy()).expect("write");
    let verifier = Verifier::new(srv.keys(), Duration::from_secs(300), clock).expect("verifier");

    let mut group = c.benchmark_group("worm_read");
    group.sample_size(30);
    group.bench_function("read", |b| {
        b.iter(|| srv.read(sn).expect("read"));
    });
    let outcome = srv.read(sn).expect("read");
    group.bench_function("client_verify", |b| {
        b.iter(|| verifier.verify_read(sn, &outcome).expect("verifies"));
    });
    group.finish();
}

fn bench_retention_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("worm_retention");
    group.sample_size(10);
    group.bench_function("write_expire_delete", |b| {
        b.iter_batched(
            quick_server,
            |(srv, clock)| {
                let sn = srv
                    .write_with(
                        &[b"fleeting".as_slice()],
                        RetentionPolicy::custom(Duration::from_secs(10), Shredder::ZeroFill),
                        0,
                        WitnessMode::Strong,
                    )
                    .expect("write");
                clock.advance(Duration::from_secs(11));
                srv.tick().expect("tick");
                assert_eq!(srv.read(sn).expect("read").kind(), "deleted");
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_write_modes,
    bench_read_and_verify,
    bench_retention_cycle
);
criterion_main!(benches);
