//! Criterion bench for VRDT window compaction and lookup (ablation A2's
//! wall-clock companion): how fast the host can compact expired runs and
//! how lookup scales with many windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpu::Timestamp;
use strongworm::proofs::{DeletionProof, WindowProof};
use strongworm::vrdt::Vrdt;
use strongworm::witness::Signature;
use strongworm::SerialNumber;

fn sig(b: u8) -> Signature {
    Signature {
        key_id: [b; 8],
        bytes: vec![b; 64],
    }
}

/// Builds a VRDT with `windows` compacted deleted windows of `run` SNs
/// each (no active entries — pure window lookup).
fn build_windowed(windows: usize, run: usize) -> Vrdt {
    let mut t = Vrdt::new();
    let mut sn = 1u64;
    for w in 0..windows {
        for _ in 0..run {
            t.expire(DeletionProof {
                sn: SerialNumber(sn),
                deleted_at: Timestamp::from_millis(1),
                sig: sig(1),
            })
            .expect("expire");
            sn += 1;
        }
        t.compact(WindowProof {
            window_id: w as u64,
            lo: SerialNumber(sn - run as u64),
            hi: SerialNumber(sn - 1),
            lo_sig: sig(2),
            hi_sig: sig(3),
        })
        .expect("compact");
        sn += 1; // gap so windows stay disjoint
    }
    t
}

fn bench_lookup_with_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("vrdt_lookup_windows");
    for windows in [16usize, 256, 4096] {
        let t = build_windowed(windows, 8);
        let probe = SerialNumber((windows as u64 / 2) * 9 + 4);
        group.bench_with_input(BenchmarkId::from_parameter(windows), &t, |b, t| {
            b.iter(|| t.lookup(probe));
        });
    }
    group.finish();
}

fn bench_expired_run_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("vrdt_expired_runs");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let mut t = Vrdt::new();
        for i in 1..=n as u64 {
            t.expire(DeletionProof {
                sn: SerialNumber(i * 2), // every other SN: runs of length 1
                deleted_at: Timestamp::from_millis(1),
                sig: sig(1),
            })
            .expect("expire");
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| t.expired_runs(3).len());
        });
    }
    group.finish();
}

fn bench_compaction_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("vrdt_compact");
    group.sample_size(20);
    group.bench_function("1000_entry_run", |b| {
        b.iter_batched(
            || {
                let mut t = Vrdt::new();
                for i in 1..=1000u64 {
                    t.expire(DeletionProof {
                        sn: SerialNumber(i),
                        deleted_at: Timestamp::from_millis(1),
                        sig: sig(1),
                    })
                    .expect("expire");
                }
                t
            },
            |mut t| {
                t.compact(WindowProof {
                    window_id: 9,
                    lo: SerialNumber(1),
                    hi: SerialNumber(1000),
                    lo_sig: sig(2),
                    hi_sig: sig(3),
                })
                .expect("compact");
                assert_eq!(t.resident_entries(), 0);
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_with_windows,
    bench_expired_run_scan,
    bench_compaction_throughput
);
criterion_main!(benches);
