//! Ablation A1 as a Criterion bench: wall-clock marginal update cost of a
//! Merkle tree vs the window scheme's O(1) bookkeeping, at growing store
//! sizes. (The virtual-time version is the `ablation_merkle` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wormcrypt::MerkleTree;

fn bench_merkle_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_update");
    for exp in [10usize, 14, 18] {
        let n = 1usize << exp;
        let mut tree = MerkleTree::new();
        for i in 0..n {
            tree.append(&(i as u64).to_be_bytes());
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                tree.update(i % n, b"rewitness");
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_merkle_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_append");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("from_16k", |b| {
        let mut tree = MerkleTree::new();
        for i in 0..(1usize << 14) {
            tree.append(&(i as u64).to_be_bytes());
        }
        let mut i = 0u64;
        b.iter(|| {
            tree.append(&i.to_be_bytes());
            i += 1;
        });
    });
    group.finish();
}

/// The window scheme's per-update bookkeeping: one BTreeMap insert — no
/// hashing, no tree path. This is the "O(1)" being claimed.
fn bench_window_update(c: &mut Criterion) {
    use std::collections::BTreeMap;
    let mut group = c.benchmark_group("window_update");
    for exp in [10usize, 14, 18] {
        let n = 1usize << exp;
        let mut table: BTreeMap<u64, [u8; 32]> = BTreeMap::new();
        for i in 0..n as u64 {
            table.insert(i, [0u8; 32]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = n as u64;
            b.iter(|| {
                table.insert(i, [7u8; 32]);
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merkle_update,
    bench_merkle_append,
    bench_window_update
);
criterion_main!(benches);
