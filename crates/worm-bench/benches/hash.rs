//! Criterion microbenchmarks for the hash functions (SHA-1/SHA-256 rows
//! of Table 2, plus the chained record hash).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wormcrypt::{ChainHash, Digest, Hmac, Sha1, Sha256};

fn bench_sha(c: &mut Criterion) {
    for (name, f) in [
        (
            "sha1",
            (|buf: &[u8]| Sha1::digest(buf).len()) as fn(&[u8]) -> usize,
        ),
        ("sha256", |buf| Sha256::digest(buf).len()),
    ] {
        let mut group = c.benchmark_group(name);
        for size in [1usize << 10, 64 << 10] {
            let buf = vec![0xA5u8; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::from_parameter(size), &buf, |b, buf| {
                b.iter(|| f(buf));
            });
        }
        group.finish();
    }
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    for size in [128usize, 1 << 10, 64 << 10] {
        let buf = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &buf, |b, buf| {
            b.iter(|| Hmac::<Sha256>::mac(b"witness-key", buf));
        });
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_hash");
    // A VR of 8 records, 4 KiB each (typical email + attachments).
    let records: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 4 << 10]).collect();
    group.throughput(Throughput::Bytes((8 * (4 << 10)) as u64));
    group.bench_function("vr_8x4k", |b| {
        b.iter(|| {
            let mut ch = ChainHash::new();
            for r in &records {
                ch.absorb(r);
            }
            ch.finalize()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sha, bench_hmac, bench_chain);
criterion_main!(benches);
