//! Criterion microbenchmarks for the from-scratch RSA implementation —
//! the "this machine" column of the Table 2 reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use wormcrypt::{HashAlg, RsaPrivateKey};

fn keys() -> &'static Vec<(usize, RsaPrivateKey)> {
    static KEYS: OnceLock<Vec<(usize, RsaPrivateKey)>> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(11);
        [512usize, 1024, 2048]
            .iter()
            .map(|&bits| (bits, RsaPrivateKey::generate(&mut rng, bits)))
            .collect()
    })
}

fn bench_sign(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_sign");
    group.sample_size(20);
    let msg = b"strong worm metasig payload";
    for (bits, key) in keys() {
        group.bench_with_input(BenchmarkId::from_parameter(bits), key, |b, key| {
            b.iter(|| key.sign(msg, HashAlg::Sha256).expect("modulus sized"));
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_verify");
    group.sample_size(30);
    let msg = b"strong worm metasig payload";
    for (bits, key) in keys() {
        let sig = key.sign(msg, HashAlg::Sha256).expect("modulus sized");
        group.bench_with_input(BenchmarkId::from_parameter(bits), &sig, |b, sig| {
            b.iter(|| assert!(key.public().verify(msg, sig, HashAlg::Sha256)));
        });
    }
    group.finish();
}

fn bench_keygen_512(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_keygen");
    group.sample_size(10);
    // Only the weak-key width: this is the rotation cost the firmware pays
    // every weak-lifetime interval.
    group.bench_function("512", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| RsaPrivateKey::generate(&mut rng, 512));
    });
    group.finish();
}

criterion_group!(benches, bench_sign, bench_verify, bench_keygen_512);
criterion_main!(benches);
