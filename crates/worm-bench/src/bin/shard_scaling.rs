//! Ablation A7 beyond the paper's envelope: write throughput of a
//! sharded witness plane vs SCPU count.
//!
//! The paper's §5 remark claims write throughput scales linearly with
//! the number of SCPUs because each write costs a fixed amount of
//! secure-coprocessor time (witness signatures) while host-side work is
//! comparatively free. This binary boots a `ShardedWormServer` at 1, 2,
//! 4, and 8 shards, drives the same write workload through the
//! round-robin fan-out, and derives throughput from *virtual time* the
//! same way `figure1` does: every shard's emulated SCPU charges each
//! operation its documented IBM 4764 latency, so the results are
//! deterministic and independent of this machine's core count.
//!
//! Shards operate in parallel (distinct SCPU devices, per-shard witness
//! serialization), so the parallel completion time of the batch is the
//! *makespan* — the busiest single shard's device time — while the
//! host-side stage remains shared and serial. The effective rate is the
//! pipeline minimum of the two, exactly the stage model of Figure 1.
//!
//! After each measured point the batch is re-read over the wire: a
//! `NetServer` fronts the sharded deployment, a `RemoteWormClient`
//! bootstraps a `CompositeVerifier` from `GetShardKeys`, and sampled
//! records from every lane must verify end-to-end against the composite
//! freshness head. A point only counts if every sampled cross-shard
//! read verifies.
//!
//! Emits `results/BENCH_shard_scaling.json` as JSON lines and exits
//! nonzero if the speedup curve is not monotone — `--smoke` restricts
//! the sweep to 1 vs 2 shards with a smaller batch for CI.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use scpu::{CostModel, VirtualClock};
use strongworm::{
    ReadVerdict, RegulatoryAuthority, RetentionPolicy, SerialNumber, ShardedWormServer, WormConfig,
};
use worm_bench::{json_record, to_json_lines};
use wormcrypt::RsaPublicKey;
use wormnet::{NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;

/// One measured point of the A7 reproduction.
#[derive(Clone, Debug)]
struct ShardScalingPoint {
    shards: u32,
    records: usize,
    record_bytes: usize,
    /// Busiest shard's SCPU time for the batch (the parallel makespan), ns.
    scpu_makespan_ns: u64,
    /// Shared host-side time for the batch, ns.
    host_ns: u64,
    /// Rate sustainable by the sharded SCPU stage (records/second).
    scpu_rps: f64,
    /// Rate sustainable by the shared host stage (records/second).
    host_rps: f64,
    /// Pipeline minimum of the two stages.
    effective_rps: f64,
    speedup_vs_1: f64,
    /// Cross-shard wire reads verified against the composite head.
    wire_reads_verified: u64,
}

json_record!(ShardScalingPoint {
    shards,
    records,
    record_bytes,
    scpu_makespan_ns,
    host_ns,
    scpu_rps,
    host_rps,
    effective_rps,
    speedup_vs_1,
    wire_reads_verified,
});

const RECORD_BYTES: usize = 4 << 10;
/// Verified cross-shard reads sampled per point (capped by batch size).
const READBACK_SAMPLES: usize = 16;

fn bench_config() -> WormConfig {
    // Small keys keep the real crypto fast; the *virtual* cost model is
    // the calibrated IBM 4764, which is what the throughput numbers are
    // derived from.
    let mut config = WormConfig::test_small();
    config.device.cost_model = CostModel::ibm4764();
    config
}

fn measure_point(
    shards: u32,
    records: usize,
    regulator: &RsaPublicKey,
    baseline_rps: Option<f64>,
) -> ShardScalingPoint {
    let clock = VirtualClock::starting_at_millis(1_000_000);
    let server = Arc::new(
        ShardedWormServer::new(bench_config(), clock.clone(), regulator, shards)
            .expect("sharded server boots"),
    );

    let mut rng = StdRng::seed_from_u64(u64::from(shards) ^ 0xA7);
    let mut record = vec![0u8; RECORD_BYTES];
    rng.fill_bytes(&mut record);
    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);

    for shard in server.shards() {
        shard.reset_meters();
    }
    let sns: Vec<SerialNumber> = (0..records)
        .map(|_| server.write(&[&record], policy).expect("write succeeds"))
        .collect();

    // Shards run in parallel: the batch completes when the busiest
    // shard's SCPU drains. The host stage is one machine, shared by all
    // shards, so its per-batch time does not divide.
    let scpu_makespan_ns = server
        .shards()
        .iter()
        .map(|s| u64::try_from(s.device_meter().busy_ns()).unwrap_or(u64::MAX))
        .max()
        .unwrap_or(0);
    let host_ns: u64 = server
        .shards()
        .iter()
        .map(|s| u64::try_from(s.host_meter().busy_ns()).unwrap_or(u64::MAX))
        .sum();

    let n = records as f64;
    let scpu_rps = n / (scpu_makespan_ns as f64 / 1e9).max(1e-12);
    let host_rps = if host_ns > 0 {
        n / (host_ns as f64 / 1e9)
    } else {
        f64::INFINITY
    };
    let effective_rps = scpu_rps.min(host_rps);

    // End-to-end check: every lane's records must still verify over the
    // wire against the composite freshness head.
    let wire_reads_verified = verify_over_wire(&server, clock, &sns);

    ShardScalingPoint {
        shards,
        records,
        record_bytes: RECORD_BYTES,
        scpu_makespan_ns,
        host_ns,
        scpu_rps,
        host_rps,
        effective_rps,
        speedup_vs_1: effective_rps / baseline_rps.unwrap_or(effective_rps),
        wire_reads_verified,
    }
}

/// Reads a cross-lane sample of `sns` over a loopback `NetServer` with
/// full composite-head verification; returns the number verified.
/// Panics if any sampled read fails to verify — the scaling numbers are
/// only meaningful if the sharded plane stays globally verifiable.
fn verify_over_wire(
    server: &Arc<ShardedWormServer>,
    clock: Arc<VirtualClock>,
    sns: &[SerialNumber],
) -> u64 {
    let net = NetServer::bind(server.clone(), "127.0.0.1:0", NetServerConfig::default())
        .expect("bind loopback");
    let mut client = RemoteWormClient::connect(net.local_addr()).expect("connect");
    let verifier = client
        .bootstrap_composite_verifier(Duration::from_secs(300), clock)
        .expect("bootstrap composite verifier");
    assert_eq!(verifier.shard_count(), server.shard_count() as usize);

    // An evenly strided sample crosses every lane (writes were assigned
    // round-robin, so consecutive SNs live on different shards).
    let step = (sns.len() / READBACK_SAMPLES.min(sns.len())).max(1);
    let mut verified = 0u64;
    for &sn in sns.iter().step_by(step) {
        let (verdict, _) = client
            .read_verified(sn, &verifier)
            .expect("verified wire read");
        assert_eq!(verdict, ReadVerdict::Intact { sn }, "read must verify");
        verified += 1;
    }
    net.shutdown();
    verified
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sweep, records): (&[u32], usize) = if smoke {
        (&[1, 2], 64)
    } else {
        (&[1, 2, 4, 8], 192)
    };

    let mut rng = StdRng::seed_from_u64(0xA7);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);

    let mut points: Vec<ShardScalingPoint> = Vec::new();
    for &shards in sweep {
        let baseline = points.first().map(|p| p.effective_rps);
        let p = measure_point(shards, records, regulator.public(), baseline);
        println!(
            "shards={:<2} effective={:>9.0} rec/s speedup={:.2}x wire-verified={}",
            p.shards, p.effective_rps, p.speedup_vs_1, p.wire_reads_verified
        );
        points.push(p);
    }

    // A7's claim is monotone (near-linear) scaling; a regression here
    // means the fan-out serialized somewhere it shouldn't.
    for pair in points.windows(2) {
        assert!(
            pair[1].effective_rps > pair[0].effective_rps,
            "write throughput must be monotone in shard count: {} shards {:.0} rec/s vs {} shards {:.0} rec/s",
            pair[0].shards,
            pair[0].effective_rps,
            pair[1].shards,
            pair[1].effective_rps,
        );
    }
    if !smoke {
        let four = points
            .iter()
            .find(|p| p.shards == 4)
            .expect("4-shard point");
        assert!(
            four.speedup_vs_1 >= 2.5,
            "4-shard speedup must be >= 2.5x, got {:.2}x",
            four.speedup_vs_1
        );
    }

    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_shard_scaling.json", out).expect("write results");
    println!("wrote results/BENCH_shard_scaling.json");
}
