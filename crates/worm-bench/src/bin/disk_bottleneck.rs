//! The paper's closing observation (§5): "it is likely that ... I/O seek
//! and transfer overheads are likely to constitute the main operational
//! bottlenecks (and not the WORM layer). Typical high-speed enterprise
//! disks feature 3-4ms+ latencies for individual block disk access,
//! twice the projected average SCPU overheads."
//!
//! This binary runs the ingest pipeline over a latency-modeled
//! enterprise-2008 disk and compares, per record, the disk's busy time
//! against the SCPU's — showing which stage actually bounds the system
//! in each witnessing mode.
//!
//! Usage: `disk_bottleneck [--json] [--records N]`

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{CostModel, VirtualClock};
use strongworm::{
    HashMode, RegulatoryAuthority, RetentionPolicy, WitnessMode, WormConfig, WormServer,
};
use worm_bench::json_record;
use wormstore::{BlockDevice, DiskProfile, MemDisk, RecordStore, Shredder};

struct Row {
    mode: &'static str,
    record_bytes: usize,
    scpu_ns_per_record: f64,
    disk_ns_per_record: f64,
    bottleneck: &'static str,
    effective_rps: f64,
}

json_record!(Row {
    mode,
    record_bytes,
    scpu_ns_per_record,
    disk_ns_per_record,
    bottleneck,
    effective_rps
});

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let n: usize = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50);

    let mut rows = Vec::new();
    for (label, witness) in [
        ("strong-1024", WitnessMode::Strong),
        ("deferred-512", WitnessMode::Deferred),
        ("hmac", WitnessMode::Hmac),
    ] {
        for record_bytes in [512usize, 4 << 10, 64 << 10] {
            let clock = VirtualClock::starting_at_millis(1_000_000);
            let mut rng = StdRng::seed_from_u64(4);
            let regulator = RegulatoryAuthority::generate(&mut rng, 512);
            let config = WormConfig {
                strong_bits: 1024,
                weak_bits: 512,
                hash_mode: HashMode::TrustHostHash,
                default_witness: witness,
                store_capacity: 64 << 20,
                device: scpu::DeviceConfig {
                    cost_model: CostModel::ibm4764(),
                    secure_memory_bytes: 8 << 20,
                    serial: 0x4764,
                    rng_seed: 7,
                },
                ..WormConfig::default()
            };
            let store = RecordStore::new(MemDisk::new(
                config.store_capacity,
                DiskProfile::enterprise_2008(),
            ));
            let server =
                WormServer::with_store(store, config, clock, regulator.public()).expect("boot");
            server.reset_meters();

            let record = vec![0xA7u8; record_bytes];
            let policy = RetentionPolicy::custom(
                Duration::from_secs(10 * 365 * 24 * 3600),
                Shredder::ZeroFill,
            );
            for _ in 0..n {
                server
                    .write_with(&[&record], policy, 0, witness)
                    .expect("write");
            }
            let scpu_ns = server.device_meter().busy_ns() as f64 / n as f64;
            let disk_ns = server.store().device().stats().busy_ns as f64 / n as f64;
            let (bottleneck, limit_ns) = if disk_ns > scpu_ns {
                ("disk", disk_ns)
            } else {
                ("scpu", scpu_ns)
            };
            rows.push(Row {
                mode: label,
                record_bytes,
                scpu_ns_per_record: scpu_ns,
                disk_ns_per_record: disk_ns,
                bottleneck,
                effective_rps: 1e9 / limit_ns,
            });
        }
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Disk vs WORM layer — per-record busy time over an enterprise-2008 disk");
    println!("(3.5 ms seek + 100 MB/s transfer; SCPU = IBM 4764 model)");
    println!();
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>11} {:>14}",
        "mode", "size", "scpu µs/rec", "disk µs/rec", "bottleneck", "effective rps"
    );
    println!("{}", "-".repeat(84));
    for r in &rows {
        println!(
            "{:<14} {:>8} B {:>14.0} {:>14.0} {:>11} {:>14.0}",
            r.mode,
            r.record_bytes,
            r.scpu_ns_per_record / 1e3,
            r.disk_ns_per_record / 1e3,
            r.bottleneck,
            r.effective_rps
        );
    }
    println!();
    println!("with deferred or hmac witnessing the disk dominates at every size —");
    println!("\"the WORM layer is not the bottleneck\", the paper's closing point.");
}
