//! Power-fail torture at benchmark scale.
//!
//! Drives `strongworm::powerfail::Torture` over a scenario an order of
//! magnitude larger than the exhaustive-but-small integration test:
//! dozens of expiring and surviving records, the full deletion + shred +
//! compaction lifecycle, and a cut at *every* write boundary in all four
//! torn-sector styles. Each cut recovers with `recover_durable` and
//! re-verifies the Theorem 1/2 invariants end-to-end, so a single dirty
//! recovery fails the run.
//!
//! Emits `results/BENCH_powerfail.json` as JSON lines: one row per cut
//! style plus a summary row carrying the gates —
//!
//! * ≥ 1000 distinct cut points explored (the acceptance floor), and
//! * 100% clean recovery across all of them.
//!
//! `--smoke` subsamples the boundary range for CI (same scenario, same
//! styles, proportionally lower cut-point floor). The process exits
//! nonzero if any gate fails, so CI can wire the binary in directly.

use std::time::Instant;

use strongworm::powerfail::{Scenario, Torture};
use worm_bench::{json_record, to_json_lines};
use wormstore::{CutPlan, CutStyle};

/// One row of `BENCH_powerfail.json`: a per-style sweep or the summary.
#[derive(Clone, Debug)]
struct PowerfailPoint {
    mode: String,
    cut_points: u64,
    clean_recoveries: u64,
    clean_pct: f64,
    min_recovery_us: f64,
    mean_recovery_us: f64,
    max_recovery_us: f64,
    /// Cut-point floor this run was held to (1000 full, 100 smoke).
    gate_min_cut_points: u64,
    /// Both gates: floor reached and 100% clean. Judged on the summary
    /// row; vacuously true on per-style rows.
    gate_pass: bool,
}

json_record!(PowerfailPoint {
    mode,
    cut_points,
    clean_recoveries,
    clean_pct,
    min_recovery_us,
    mean_recovery_us,
    max_recovery_us,
    gate_min_cut_points,
    gate_pass,
});

/// Per-style accumulator over the sweep.
#[derive(Default)]
struct StyleTally {
    cut_points: u64,
    clean: u64,
    min_ns: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl StyleTally {
    fn record(&mut self, clean: bool, nanos: u64) {
        self.cut_points += 1;
        if clean {
            self.clean += 1;
            self.min_ns = if self.min_ns == 0 {
                nanos
            } else {
                self.min_ns.min(nanos)
            };
            self.sum_ns += nanos;
            self.max_ns = self.max_ns.max(nanos);
        }
    }

    fn point(&self, mode: &str, floor: u64) -> PowerfailPoint {
        let mean = if self.clean > 0 {
            self.sum_ns as f64 / self.clean as f64
        } else {
            0.0
        };
        PowerfailPoint {
            mode: mode.to_string(),
            cut_points: self.cut_points,
            clean_recoveries: self.clean,
            clean_pct: if self.cut_points > 0 {
                100.0 * self.clean as f64 / self.cut_points as f64
            } else {
                0.0
            },
            min_recovery_us: self.min_ns as f64 / 1_000.0,
            mean_recovery_us: mean / 1_000.0,
            max_recovery_us: self.max_ns as f64 / 1_000.0,
            gate_min_cut_points: floor,
            gate_pass: true,
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 1 MiB medium, 256 KiB journal region: room for the large scenario's
    // journal traffic plus compaction relocations.
    let rig = Torture::new(1 << 20, 1 << 18);
    // Sized so the sweep clears the 1000-cut-point floor with ~30%
    // headroom while a full run stays in low single-digit minutes.
    let sc = Scenario {
        victims: 26,
        keepers: 8,
        compact: true,
        tail_writes: 3,
    };
    let range = rig.profile(&sc).expect("scenario profiles cleanly");
    let boundaries = range.last - range.first + 1;
    // Full runs take every boundary; smoke subsamples down to ~32 while
    // keeping all four styles per boundary.
    let stride = if smoke { (boundaries / 32).max(1) } else { 1 };
    let floor = if smoke { 100 } else { 1_000 };
    eprintln!(
        "powerfail: {boundaries} write boundaries x {} styles, stride {stride}",
        CutStyle::ALL.len()
    );

    let started = Instant::now();
    let mut tallies: Vec<(CutStyle, StyleTally)> = CutStyle::ALL
        .iter()
        .map(|&s| (s, StyleTally::default()))
        .collect();
    let mut failures: Vec<String> = Vec::new();
    let mut at = range.first;
    while at <= range.last {
        for (style, tally) in &mut tallies {
            let plan = CutPlan {
                at_write: at,
                style: *style,
                seed: 0x5EED ^ at,
            };
            match rig.torture(&sc, plan, None) {
                Ok(out) => tally.record(true, out.recovery_nanos),
                Err(e) => {
                    tally.record(false, 0);
                    failures.push(format!("cut at write {at} ({style}): {e}"));
                }
            }
        }
        at += stride;
    }

    let mut total = StyleTally::default();
    let mut points = Vec::new();
    for (style, tally) in &tallies {
        total.cut_points += tally.cut_points;
        total.clean += tally.clean;
        total.min_ns = if total.min_ns == 0 {
            tally.min_ns
        } else if tally.min_ns > 0 {
            total.min_ns.min(tally.min_ns)
        } else {
            total.min_ns
        };
        total.sum_ns += tally.sum_ns;
        total.max_ns = total.max_ns.max(tally.max_ns);
        points.push(tally.point(&format!("{style}"), floor));
    }
    let all_clean = total.clean == total.cut_points;
    let mut summary = total.point("summary", floor);
    summary.gate_pass = all_clean && total.cut_points >= floor;
    points.push(summary.clone());

    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_powerfail.json", out).expect("write results");
    println!("wrote results/BENCH_powerfail.json");
    println!(
        "{} cut points, {} clean ({:.1}%), mean recovery {:.0} us, in {:.1}s",
        summary.cut_points,
        summary.clean_recoveries,
        summary.clean_pct,
        summary.mean_recovery_us,
        started.elapsed().as_secs_f64()
    );
    for f in failures.iter().take(10) {
        eprintln!("FAIL {f}");
    }
    if !summary.gate_pass {
        eprintln!(
            "GATE FAILED: {} cut points (floor {}), {} dirty recoveries",
            summary.cut_points,
            floor,
            summary.cut_points - summary.clean_recoveries
        );
        std::process::exit(1);
    }
}
