//! Multi-SCPU scaling (§5: "These results naturally scale if multiple
//! SCPUs are available").
//!
//! Round-robin ingest over a [`WormCluster`] of 1–8 shards, each with its
//! own emulated IBM 4764. Aggregate throughput is `n / max-shard busy
//! time`; with balanced placement it should scale linearly in the shard
//! count for every witnessing mode.
//!
//! Usage: `scaling [--json] [--records N]`

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{CostModel, VirtualClock};
use strongworm::{
    HashMode, RegulatoryAuthority, RetentionPolicy, WitnessMode, WormCluster, WormConfig,
};
use worm_bench::json_record;
use wormstore::Shredder;

struct Row {
    mode: &'static str,
    shards: usize,
    aggregate_rps: f64,
    per_shard_rps: f64,
    scaling_efficiency: f64,
}

json_record!(Row {
    mode,
    shards,
    aggregate_rps,
    per_shard_rps,
    scaling_efficiency
});

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let n: usize = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(96);

    let mut rows = Vec::new();
    for (label, witness) in [
        ("strong-1024", WitnessMode::Strong),
        ("deferred-512", WitnessMode::Deferred),
    ] {
        let mut base_rps = 0.0;
        for shards in [1usize, 2, 4, 8] {
            let clock = VirtualClock::starting_at_millis(1_000_000);
            let mut rng = StdRng::seed_from_u64(3);
            let regulator = RegulatoryAuthority::generate(&mut rng, 512);
            let config = WormConfig {
                strong_bits: 1024,
                weak_bits: 512,
                hash_mode: HashMode::TrustHostHash,
                default_witness: witness,
                store_capacity: 16 << 20,
                device: scpu::DeviceConfig {
                    cost_model: CostModel::ibm4764(),
                    secure_memory_bytes: 8 << 20,
                    serial: 0x4764,
                    rng_seed: 7,
                },
                ..WormConfig::default()
            };
            let cluster =
                WormCluster::new(shards, &config, clock, regulator.public()).expect("boot");
            let policy = RetentionPolicy::custom(
                Duration::from_secs(10 * 365 * 24 * 3600),
                Shredder::ZeroFill,
            );
            cluster.reset_meters();
            for i in 0..n {
                cluster
                    .write_with(&[format!("record-{i}").as_bytes()], policy, 0, witness)
                    .expect("write");
            }
            let busiest_ns = cluster.max_shard_busy_ns() as f64;
            let aggregate = n as f64 * 1e9 / busiest_ns;
            if shards == 1 {
                base_rps = aggregate;
            }
            rows.push(Row {
                mode: label,
                shards,
                aggregate_rps: aggregate,
                per_shard_rps: aggregate / shards as f64,
                scaling_efficiency: aggregate / (base_rps * shards as f64),
            });
        }
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Multi-SCPU scaling — aggregate ingest rate vs shard count");
    println!();
    println!(
        "{:<14} {:>7} {:>16} {:>16} {:>12}",
        "mode", "shards", "aggregate rps", "per-shard rps", "efficiency"
    );
    println!("{}", "-".repeat(70));
    for r in &rows {
        println!(
            "{:<14} {:>7} {:>16.0} {:>16.0} {:>11.0}%",
            r.mode,
            r.shards,
            r.aggregate_rps,
            r.per_shard_rps,
            r.scaling_efficiency * 100.0
        );
    }
    println!();
    println!("round-robin placement keeps shards balanced, so aggregate throughput");
    println!("scales linearly in the SCPU count — the paper's §5 scaling remark.");
}
