//! Multi-threaded read-throughput scaling — the payoff measurement for
//! the two-plane server split.
//!
//! Reads never touch the SCPU (§4.1), so with the read plane behind a
//! shared lock their throughput should scale with reader threads until
//! the machine runs out of cores. This binary measures aggregate verified
//! read throughput at 1, 2, 4, and 8 reader threads against a server
//! whose maintenance daemon keeps running in the background (the
//! production deployment shape), and emits
//! `results/BENCH_read_scaling.json` as JSON lines.
//!
//! Unlike the virtual-time write benchmarks, this measures *wall clock*:
//! the quantity of interest is host-side parallelism, not modeled device
//! latency. Interpret `speedup_vs_1` against `host_cores` — a single-core
//! machine correctly reports a flat curve.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use strongworm::{DaemonConfig, RetentionDaemon, RetentionPolicy, SerialNumber};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormstore::Shredder;

/// One measured point of the scaling curve.
#[derive(Clone, Debug)]
struct ReadScalingPoint {
    readers: usize,
    host_cores: usize,
    total_reads: u64,
    wall_ms: f64,
    reads_per_sec: f64,
    speedup_vs_1: f64,
}

json_record!(ReadScalingPoint {
    readers,
    host_cores,
    total_reads,
    wall_ms,
    reads_per_sec,
    speedup_vs_1,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (server, _clock) = quick_server();
    let server = Arc::new(server);

    // A corpus of active records for the readers to sweep over.
    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0xA7u8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();
    let sns = Arc::new(sns);

    // Background maintenance keeps contending on the witness plane, as it
    // would in production; it must not throttle the readers.
    let daemon = RetentionDaemon::spawn(server.clone(), DaemonConfig::default());

    let mut points: Vec<ReadScalingPoint> = Vec::new();
    for &readers in &[1usize, 2, 4, 8] {
        let total = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let start = Arc::new(Barrier::new(readers + 1));
        let threads: Vec<_> = (0..readers)
            .map(|t| {
                let server = server.clone();
                let sns = sns.clone();
                let total = total.clone();
                let stop = stop.clone();
                let start = start.clone();
                std::thread::spawn(move || {
                    start.wait();
                    let mut n = 0u64;
                    let mut i = t;
                    // ordering: stop flag needs timeliness, not ordering; the final
                    // count is published by the join, not by this load.
                    while !stop.load(Ordering::Relaxed) {
                        let sn = sns[i % sns.len()];
                        let outcome = server.read(sn).expect("read succeeds");
                        assert_eq!(outcome.kind(), "data");
                        n += 1;
                        i += 1;
                    }
                    // ordering: joined before reading; the join edge orders this.
                    total.fetch_add(n, Ordering::Relaxed);
                })
            })
            .collect();

        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(MEASURE_WINDOW);
        stop.store(true, Ordering::Relaxed); // ordering: see the reader-side note
        for h in threads {
            h.join().expect("reader thread panicked");
        }
        let wall = t0.elapsed();

        // ordering: every writer thread was joined above; Relaxed reads the final sum.
        let total_reads = total.load(Ordering::Relaxed);
        let reads_per_sec = total_reads as f64 / wall.as_secs_f64();
        let baseline = points.first().map_or(reads_per_sec, |p| p.reads_per_sec);
        points.push(ReadScalingPoint {
            readers,
            host_cores: cores,
            total_reads,
            wall_ms: wall.as_secs_f64() * 1e3,
            reads_per_sec,
            speedup_vs_1: reads_per_sec / baseline,
        });
        let p = points.last().unwrap();
        println!(
            "readers={:<2} total={:<9} rate={:>12.0} reads/s speedup={:.2}x",
            p.readers, p.total_reads, p.reads_per_sec, p.speedup_vs_1
        );
    }

    daemon.stop().expect("daemon stops cleanly");

    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_read_scaling.json", out).expect("write results");
    println!("wrote results/BENCH_read_scaling.json ({cores} host cores)");
}
