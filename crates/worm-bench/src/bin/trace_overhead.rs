//! Causal-tracing overhead on remote verified reads.
//!
//! PR cost question: request-scoped span collection threads through
//! the net worker, both server planes, the SCPU dispatch, and the
//! record store. Every remote request now allocates an `ActiveTrace`,
//! opens a handful of spans, and offers the finished tree to the
//! flight recorder. This binary prices that against the kill switch:
//!
//! * **traced** — registry enabled and the client wrapping every
//!   request in a trace-context envelope (opcode 9), so the server
//!   collects a full span tree per read;
//! * **untraced** — `Registry::set_enabled(false)` and bare requests:
//!   span collection short-circuits to one thread-local check per
//!   instrumentation point, restoring the pre-tracing configuration.
//!
//! Methodology matches `observability.rs`: modes alternate per batch
//! so drift hits both equally, and each mode keeps its *minimum*
//! per-read batch time (least-noise estimate). The denominator is the
//! full remote verified read — TCP round-trip, decode, plane
//! traversal, signature verification — the operation the <5% target
//! in the issue applies to. Emits `results/BENCH_trace_overhead.json`
//! as JSON lines.

use std::sync::Arc;
use std::time::{Duration, Instant};

use strongworm::{ReadVerdict, RetentionPolicy, SerialNumber, Verifier};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormnet::{NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;

/// One measured row (a mode, or the summary).
#[derive(Clone, Debug)]
struct TraceOverheadPoint {
    mode: String,
    batches_per_mode: u64,
    reads_per_batch: u64,
    min_ns_per_read: f64,
    reads_per_sec: f64,
    /// Traced minus untraced, as a percentage of untraced; zero on the
    /// per-mode rows, filled on the summary row.
    overhead_pct: f64,
    /// Whether the <5% budget holds. Judged on the summary row;
    /// vacuously true elsewhere.
    within_target: bool,
}

json_record!(TraceOverheadPoint {
    mode,
    batches_per_mode,
    reads_per_batch,
    min_ns_per_read,
    reads_per_sec,
    overhead_pct,
    within_target,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const BATCHES_PER_MODE: u64 = 100;
const BATCH: u64 = 200;
const OVERHEAD_TARGET_PCT: f64 = 5.0;

/// Times one batch of remote verified reads in ns/read.
fn batch(
    client: &mut RemoteWormClient,
    verifier: &Verifier,
    sns: &[SerialNumber],
    start: u64,
) -> f64 {
    let t0 = Instant::now();
    for i in start..start + BATCH {
        let sn = sns[(i as usize) % sns.len()];
        let (verdict, _) = client.read_verified(sn, verifier).expect("verified read");
        assert_eq!(verdict, ReadVerdict::Intact { sn });
    }
    t0.elapsed().as_nanos() as f64 / BATCH as f64
}

fn main() {
    let (server, clock) = quick_server();
    let server = Arc::new(server);
    let verifier = Verifier::new(server.keys(), Duration::from_secs(300), clock).expect("verifier");

    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0x33u8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();

    // Default config: the flight recorder keeps its production 250 ms
    // threshold, so the traced mode pays trace *collection* (the
    // per-request cost under test), not capture retention.
    let net = NetServer::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    let mut client = RemoteWormClient::connect(net.local_addr()).expect("connect");

    let set_mode = |client: &mut RemoteWormClient, traced: bool| {
        server.trace().set_enabled(traced);
        client.set_request_tracing(traced);
    };

    // Warm both paths before any timed batch.
    let mut pos = 0u64;
    for &traced in &[true, false] {
        set_mode(&mut client, traced);
        batch(&mut client, &verifier, &sns, pos);
        pos += BATCH;
    }
    let mut min_traced = f64::INFINITY;
    let mut min_untraced = f64::INFINITY;
    for _ in 0..BATCHES_PER_MODE {
        for &traced in &[true, false] {
            set_mode(&mut client, traced);
            let ns = batch(&mut client, &verifier, &sns, pos);
            pos += BATCH;
            if traced {
                min_traced = min_traced.min(ns);
            } else {
                min_untraced = min_untraced.min(ns);
            }
        }
    }
    set_mode(&mut client, true);

    let overhead = (min_traced - min_untraced) / min_untraced * 100.0;
    let row = |mode: &str, ns: f64, pct: f64, ok: bool| TraceOverheadPoint {
        mode: mode.into(),
        batches_per_mode: BATCHES_PER_MODE,
        reads_per_batch: BATCH,
        min_ns_per_read: ns,
        reads_per_sec: if ns > 0.0 { 1e9 / ns } else { 0.0 },
        overhead_pct: pct,
        within_target: ok,
    };
    let points = vec![
        row("traced", min_traced, 0.0, true),
        row("untraced", min_untraced, 0.0, true),
        row(
            "overhead",
            min_traced - min_untraced,
            overhead,
            overhead < OVERHEAD_TARGET_PCT,
        ),
    ];

    println!(
        "traced={min_traced:.0} untraced={min_untraced:.0} ns/read — overhead {overhead:.2}% \
         (target < {OVERHEAD_TARGET_PCT}%) — {}",
        if overhead < OVERHEAD_TARGET_PCT {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );

    net.shutdown();
    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_trace_overhead.json", out).expect("write results");
    println!("wrote results/BENCH_trace_overhead.json");
}
