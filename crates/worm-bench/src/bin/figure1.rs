//! Figure 1 reproduction: WORM write throughput vs record size.
//!
//! Paper (§5): "By deploying the various deferred strong constructs
//! optimization (section 4.3, with 512 bit signatures for the weak
//! constructs), update rates of over 2000-2500 records/second are
//! possible [...] Without deferring strong constructs, the WORM layer can
//! support sustained throughputs of 450-500 records/second."
//!
//! Usage: `figure1 [--json] [--records N]`

use worm_bench::{figure1_sweep, to_json_lines};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let n = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(40usize);

    eprintln!("figure1: sweeping 5 modes x 10 record sizes, {n} records/point ...");
    let points = figure1_sweep(n);

    if json {
        println!("{}", to_json_lines(&points));
        return;
    }

    println!("Figure 1 — throughput vs record size (records/second, SCPU virtual time)");
    println!();
    print!("{:>12} |", "size");
    let modes: Vec<String> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.mode) {
                seen.push(p.mode.clone());
            }
        }
        seen
    };
    for m in &modes {
        print!(" {m:>22}");
    }
    println!();
    println!("{}", "-".repeat(14 + modes.len() * 23));
    let sizes: Vec<usize> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.record_bytes) {
                seen.push(p.record_bytes);
            }
        }
        seen
    };
    for size in sizes {
        print!("{:>10} B |", size);
        for m in &modes {
            let p = points
                .iter()
                .find(|p| p.record_bytes == size && &p.mode == m)
                .expect("full grid");
            print!(" {:>22.0}", p.effective_rps);
        }
        println!();
    }
    println!();
    println!("paper targets: strong-1024 ≈ 450-500 rec/s sustained;");
    println!("               deferred-512 ≈ 2000-2500 rec/s in bursts;");
    println!("               hmac mode bounded only by DMA/bus and command dispatch.");
    println!();
    println!("context: one enterprise-2008 disk access costs 3.5 ms => a seek-bound");
    println!(
        "store tops out near {:.0} records/s, below the WORM layer in every",
        1e9 / 3_500_000.0
    );
    println!("deferred mode — the paper's closing observation.");
}
