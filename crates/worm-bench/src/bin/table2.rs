//! Table 2 reproduction: cryptographic primitive rates.
//!
//! Columns: the calibrated IBM 4764 model, the modeled P4 @ 3.4 GHz /
//! OpenSSL host, and this repository's own from-scratch implementations
//! measured on the build machine. Absolute rates on column 3 differ from
//! the paper's hardware, but the *ratios* across key widths and block
//! sizes — which drive every design decision in the paper — are
//! reproduced.
//!
//! Usage: `table2 [--json] [--iters N]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{CostModel, Op};
use worm_bench::{rate_mb_per_sec, rate_per_sec, to_json_lines, Table2Row};
use wormcrypt::{Digest, HashAlg, RsaPrivateKey, Sha1};

fn measure_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);

    let dev = CostModel::ibm4764();
    let host = CostModel::host_p4();
    let mut rng = StdRng::seed_from_u64(2);
    let msg = b"table2 benchmark message";

    let mut rows = Vec::new();

    // RSA signature rows.
    for bits in [512usize, 1024, 2048] {
        eprintln!("table2: generating {bits}-bit key ...");
        let key = RsaPrivateKey::generate(&mut rng, bits);
        let mine = measure_ns(iters, || {
            key.sign(msg, HashAlg::Sha256).expect("modulus sized");
        });
        rows.push(Table2Row {
            function: "RSA sig.".into(),
            context: format!("{bits} bits"),
            ibm4764: rate_per_sec(dev.cost_ns(Op::RsaSign { bits }) as f64),
            p4_model: rate_per_sec(host.cost_ns(Op::RsaSign { bits }) as f64),
            this_machine: rate_per_sec(mine),
        });
    }

    // SHA-1 rows.
    for (label, block) in [("1KB blk.", 1usize << 10), ("64 KB blk.", 64 << 10)] {
        let buf = vec![0xABu8; block];
        let mine = measure_ns(iters.max(64), || {
            let _ = Sha1::digest(&buf);
        });
        rows.push(Table2Row {
            function: "SHA-1".into(),
            context: label.into(),
            ibm4764: rate_mb_per_sec(block as f64, dev.cost_ns(Op::Sha1 { bytes: block }) as f64),
            p4_model: rate_mb_per_sec(block as f64, host.cost_ns(Op::Sha1 { bytes: block }) as f64),
            this_machine: rate_mb_per_sec(block as f64, mine),
        });
    }

    // DMA row: the emulated channel vs a memcpy-class host transfer.
    {
        let block = 1usize << 20;
        let src = vec![0x5Au8; block];
        let mut dst = vec![0u8; block];
        let mine = measure_ns(iters.max(32), || {
            dst.copy_from_slice(&src);
            std::hint::black_box(&dst);
        });
        rows.push(Table2Row {
            function: "DMA xfer".into(),
            context: "end-to-end".into(),
            ibm4764: rate_mb_per_sec(block as f64, dev.cost_ns(Op::DmaIn { bytes: block }) as f64),
            p4_model: rate_mb_per_sec(
                block as f64,
                host.cost_ns(Op::DmaIn { bytes: block }) as f64,
            ),
            this_machine: rate_mb_per_sec(block as f64, mine),
        });
    }

    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Table 2 — IBM 4764 vs P4@3.4GHz (paper) vs this machine (our impls)");
    println!();
    println!(
        "{:<10} {:<12} {:>14} {:>14} {:>16}",
        "Function", "Context", "IBM 4764", "P4 model", "this machine"
    );
    println!("{}", "-".repeat(70));
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>14} {:>14} {:>16}",
            r.function, r.context, r.ibm4764, r.p4_model, r.this_machine
        );
    }
    println!();
    println!("paper values: RSA 512/1024/2048 -> 4200/848/316-470 per s (4764),");
    println!("              1315/261/43 per s (P4); SHA-1 1.42 / 18.6 MB/s (4764),");
    println!("              80 / 120+ MB/s (P4); DMA 75-90 MB/s vs 1+ GB/s.");
}
