//! Audit-plane overhead on remote verified reads.
//!
//! PR cost question: every security-relevant event now appends to a
//! hash-chained audit journal, and the registry's trace sink inspects
//! sampled read events to promote failures into that chain. This
//! binary prices the whole plane against its kill switch on the
//! operation the <3% budget applies to — the remote verified read:
//!
//! * **audited** — `AuditLog::set_enabled(true)`: sampled read events
//!   reach the sink, failure promotion is armed, and maintenance
//!   events chain and anchor as in production;
//! * **unaudited** — `AuditLog::set_enabled(false)`: the journal's
//!   emit path short-circuits to one atomic load, restoring the
//!   pre-audit configuration.
//!
//! Methodology matches `trace_overhead.rs`: modes alternate per batch
//! so drift hits both equally, and each mode keeps its *minimum*
//! per-read batch time (least-noise estimate). The binary exits
//! nonzero if the overhead exceeds the 3% budget; `--smoke` runs the
//! same shape with fewer batches for CI, gated only against a loose
//! 25% sanity ceiling (loopback timing in shared CI runners is too
//! noisy for the tight budget). Emits
//! `results/BENCH_audit_overhead.json` as JSON lines.

use std::sync::Arc;
use std::time::{Duration, Instant};

use strongworm::{ReadVerdict, RetentionPolicy, SerialNumber, Verifier};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormnet::{NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;

/// One measured row (a mode, or the summary).
#[derive(Clone, Debug)]
struct AuditOverheadPoint {
    mode: String,
    batches_per_mode: u64,
    reads_per_batch: u64,
    min_ns_per_read: f64,
    reads_per_sec: f64,
    /// Audited minus unaudited, as a percentage of unaudited; zero on
    /// the per-mode rows, filled on the summary row.
    overhead_pct: f64,
    /// Whether the <3% budget holds. Judged on the summary row;
    /// vacuously true elsewhere.
    within_target: bool,
}

json_record!(AuditOverheadPoint {
    mode,
    batches_per_mode,
    reads_per_batch,
    min_ns_per_read,
    reads_per_sec,
    overhead_pct,
    within_target,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const BATCH: u64 = 200;
const OVERHEAD_TARGET_PCT: f64 = 3.0;
const SMOKE_TARGET_PCT: f64 = 25.0;

/// Times one batch of remote verified reads in ns/read.
fn batch(
    client: &mut RemoteWormClient,
    verifier: &Verifier,
    sns: &[SerialNumber],
    start: u64,
) -> f64 {
    let t0 = Instant::now();
    for i in start..start + BATCH {
        let sn = sns[(i as usize) % sns.len()];
        let (verdict, _) = client.read_verified(sn, verifier).expect("verified read");
        assert_eq!(verdict, ReadVerdict::Intact { sn });
    }
    t0.elapsed().as_nanos() as f64 / BATCH as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let batches_per_mode: u64 = if smoke { 10 } else { 100 };
    let target = if smoke {
        SMOKE_TARGET_PCT
    } else {
        OVERHEAD_TARGET_PCT
    };

    let (server, clock) = quick_server();
    let server = Arc::new(server);
    let verifier = Verifier::new(server.keys(), Duration::from_secs(300), clock).expect("verifier");

    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0x33u8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();

    let net = NetServer::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    let mut client = RemoteWormClient::connect(net.local_addr()).expect("connect");

    // Warm both paths before any timed batch.
    let mut pos = 0u64;
    for &audited in &[true, false] {
        server.audit().set_enabled(audited);
        batch(&mut client, &verifier, &sns, pos);
        pos += BATCH;
    }
    let mut min_audited = f64::INFINITY;
    let mut min_unaudited = f64::INFINITY;
    for _ in 0..batches_per_mode {
        for &audited in &[true, false] {
            server.audit().set_enabled(audited);
            let ns = batch(&mut client, &verifier, &sns, pos);
            pos += BATCH;
            if audited {
                min_audited = min_audited.min(ns);
            } else {
                min_unaudited = min_unaudited.min(ns);
            }
        }
    }
    server.audit().set_enabled(true);

    let overhead = (min_audited - min_unaudited) / min_unaudited * 100.0;
    let within = overhead < OVERHEAD_TARGET_PCT;
    let row = |mode: &str, ns: f64, pct: f64, ok: bool| AuditOverheadPoint {
        mode: mode.into(),
        batches_per_mode,
        reads_per_batch: BATCH,
        min_ns_per_read: ns,
        reads_per_sec: if ns > 0.0 { 1e9 / ns } else { 0.0 },
        overhead_pct: pct,
        within_target: ok,
    };
    let points = vec![
        row("audited", min_audited, 0.0, true),
        row("unaudited", min_unaudited, 0.0, true),
        row("overhead", min_audited - min_unaudited, overhead, within),
    ];

    println!(
        "audited={min_audited:.0} unaudited={min_unaudited:.0} ns/read — overhead {overhead:.2}% \
         (target < {OVERHEAD_TARGET_PCT}%) — {}",
        if within {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );

    net.shutdown();
    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_audit_overhead.json", out).expect("write results");
    println!("wrote results/BENCH_audit_overhead.json");

    if overhead >= target {
        eprintln!("audit_overhead: {overhead:.2}% exceeds the {target}% gate");
        std::process::exit(1);
    }
}
