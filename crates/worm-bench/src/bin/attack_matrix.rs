//! Attack matrix: soft-WORM (§3 baseline) vs Strong WORM under the
//! paper's insider attacks — the motivating comparison of §1, printed as
//! a table.
//!
//! Usage: `attack_matrix [--json]`

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use softworm::{attack, SoftWormError, SoftWormStore};
use strongworm::{
    RegulatoryAuthority, RetentionPolicy, Verifier, VerifyError, WormConfig, WormServer,
};
use worm_bench::json_record;
use wormstore::Shredder;

struct Row {
    attack: &'static str,
    softworm: &'static str,
    strongworm: &'static str,
}

json_record!(Row {
    attack,
    softworm,
    strongworm
});

const PAYLOAD: &[u8] = b"WIRE $1,000,000 TO ACCOUNT X-999";

fn strong_fixture() -> (WormServer, Verifier, Arc<VirtualClock>) {
    let clock = VirtualClock::starting_at_millis(1_000_000);
    let mut rng = StdRng::seed_from_u64(66);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server =
        WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public()).expect("boot");
    let verifier =
        Verifier::new(server.keys(), Duration::from_secs(300), clock.clone()).expect("verifier");
    (server, verifier, clock)
}

fn policy() -> RetentionPolicy {
    RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows = Vec::new();

    // --- Attack 1: rewrite record content on the raw medium -----------------
    {
        let mut soft = SoftWormStore::new(1 << 16, VirtualClock::new());
        let sid = soft.write(PAYLOAD, Duration::from_secs(1_000_000)).unwrap();
        attack::rewrite_history(&mut soft, sid, b"WIRE $100 TO CHARITY");
        let soft_verdict = match soft.read(sid) {
            Ok(o) if o.integrity_checked => "UNDETECTED (forgery verified)",
            _ => "detected",
        };

        let (strong, v, _clock) = strong_fixture();
        let sn = strong.write(&[PAYLOAD], policy()).unwrap();
        strong.mallory().corrupt_record_data(sn);
        let strong_verdict = match v.verify_read(sn, &strong.read(sn).unwrap()) {
            Err(VerifyError::DataHashMismatch) => "DETECTED (datasig)",
            _ => "undetected",
        };
        rows.push(Row {
            attack: "rewrite record bytes + fix checksums",
            softworm: soft_verdict,
            strongworm: strong_verdict,
        });
    }

    // --- Attack 2: erase a record and deny its existence --------------------
    {
        let mut soft = SoftWormStore::new(1 << 16, VirtualClock::new());
        let sid = soft.write(PAYLOAD, Duration::from_secs(1_000_000)).unwrap();
        attack::erase_history(&mut soft, sid);
        let soft_verdict = match soft.read(sid) {
            Err(SoftWormError::NotFound(_)) => "UNDETECTED (record 'never existed')",
            _ => "detected",
        };

        let (strong, v, _clock) = strong_fixture();
        let sn = strong.write(&[PAYLOAD], policy()).unwrap();
        strong.refresh_head().unwrap();
        let denial = strong.mallory().deny_existence(sn).unwrap();
        let strong_verdict = match v.verify_read(sn, &denial) {
            Err(VerifyError::HiddenRecord) => "DETECTED (head certificate)",
            _ => "undetected",
        };
        rows.push(Row {
            attack: "erase record + index, deny existence",
            softworm: soft_verdict,
            strongworm: strong_verdict,
        });
    }

    // --- Attack 3: delete before retention, claim rightful expiry -----------
    {
        let mut soft = SoftWormStore::new(1 << 16, VirtualClock::new());
        let sid = soft.write(PAYLOAD, Duration::from_secs(1_000_000)).unwrap();
        let bypassed = soft.delete(sid).is_err() && attack::erase_history(&mut soft, sid);
        let soft_verdict = if bypassed {
            "UNDETECTED (software check bypassed)"
        } else {
            "detected"
        };

        let (strong, v, _clock) = strong_fixture();
        let sn = strong.write(&[PAYLOAD], policy()).unwrap();
        strong.refresh_head().unwrap();
        let forged = strong.mallory().forge_deletion(sn);
        let strong_verdict = match v.verify_read(sn, &forged) {
            Err(VerifyError::BadSignature("deletion proof")) => "DETECTED (needs key d)",
            _ => "undetected",
        };
        rows.push(Row {
            attack: "early deletion with forged expiry proof",
            softworm: soft_verdict,
            strongworm: strong_verdict,
        });
    }

    // --- Attack 4: shorten a record's retention in metadata -----------------
    {
        // soft-WORM keeps retention in process memory / mutable metadata;
        // an insider edits it directly (modeled by erase after "expiry").
        let soft_verdict = "UNDETECTED (metadata is mutable)";

        let (strong, v, _clock) = strong_fixture();
        let sn = strong.write(&[PAYLOAD], policy()).unwrap();
        strong.mallory().rewrite_attributes(sn, |attr| {
            attr.retention_until = scpu::Timestamp::from_millis(0);
        });
        let strong_verdict = match v.verify_read(sn, &strong.read(sn).unwrap()) {
            Err(VerifyError::BadSignature("metasig")) => "DETECTED (metasig)",
            _ => "undetected",
        };
        rows.push(Row {
            attack: "shorten retention in metadata",
            softworm: soft_verdict,
            strongworm: strong_verdict,
        });
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Attack matrix — insider with superuser powers + physical disk access");
    println!();
    println!(
        "{:<42} {:<36} {:<28}",
        "attack", "soft-WORM (§3 baseline)", "Strong WORM"
    );
    println!("{}", "-".repeat(106));
    for r in &rows {
        println!("{:<42} {:<36} {:<28}", r.attack, r.softworm, r.strongworm);
    }
    println!();
    println!("soft-WORM's guarantees live in software the insider controls; Strong");
    println!("WORM's live in SCPU signatures the insider cannot produce — the");
    println!("asymmetry that motivates the entire architecture (§1).");
}
