//! Ablation A4 — does the strengthener drain within the security
//! lifetime?
//!
//! §4.3: short-lived signatures "will then be strengthened [...] during
//! decreased load periods — but within their security lifetime" of 60-180
//! minutes. This binary ingests bursts of deferred-witnessed records and
//! reports how much SCPU idle time the strengthener needs to re-sign the
//! whole backlog with 1024-bit keys, compared against that lifetime.
//!
//! Usage: `ablation_deferred [--json]`

use scpu::{CostModel, Op};
use strongworm::{HashMode, WitnessMode};
use worm_bench::json_record;
use worm_bench::paper_server;

struct Row {
    burst_records: usize,
    burst_seconds_at_2000rps: f64,
    pending_witnesses: usize,
    drain_scpu_seconds: f64,
    fraction_of_120min_lifetime: f64,
}

json_record!(Row {
    burst_records,
    burst_seconds_at_2000rps,
    pending_witnesses,
    drain_scpu_seconds,
    fraction_of_120min_lifetime
});

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let model = CostModel::ibm4764();
    let strong_sig_ns = model.cost_ns(Op::RsaSign { bits: 1024 });

    let mut rows = Vec::new();
    for burst in [1_000usize, 5_000, 20_000, 100_000] {
        let server = paper_server(HashMode::TrustHostHash, WitnessMode::Deferred);
        // Scale down the actual writes and extrapolate: every deferred
        // write enqueues exactly two pending witnesses, so the backlog is
        // linear in the burst size. (Running 100k real RSA signings here
        // would measure this machine, not the model.)
        let sample = burst.min(500);
        for i in 0..sample {
            server
                .write_with(
                    &[format!("burst-{i}").as_bytes()],
                    strongworm::RetentionPolicy::custom(
                        std::time::Duration::from_secs(86_400 * 365),
                        wormstore::Shredder::ZeroFill,
                    ),
                    0,
                    WitnessMode::Deferred,
                )
                .unwrap();
        }
        let pending_per_write =
            server.firmware_for_test().pending_strengthen() as f64 / sample as f64;
        let pending = (pending_per_write * burst as f64).round() as usize;

        // Drain the sampled backlog to validate the cost model end to end.
        let before = server.device_meter().busy_ns();
        server.idle(u64::MAX).unwrap();
        let drained_ns = server.device_meter().busy_ns() - before;
        let measured_per_witness = drained_ns as f64 / (pending_per_write * sample as f64);
        assert!(
            (measured_per_witness - strong_sig_ns as f64).abs() < 0.2 * strong_sig_ns as f64,
            "strengthening cost should be one strong signature per witness"
        );

        let drain_s = pending as f64 * strong_sig_ns as f64 / 1e9;
        rows.push(Row {
            burst_records: burst,
            burst_seconds_at_2000rps: burst as f64 / 2000.0,
            pending_witnesses: pending,
            drain_scpu_seconds: drain_s,
            fraction_of_120min_lifetime: drain_s / (120.0 * 60.0),
        });
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Ablation A4 — strengthening backlog vs the 120-minute security lifetime");
    println!();
    println!(
        "{:>12} {:>14} {:>10} {:>12} {:>20}",
        "burst", "burst dur (s)", "pending", "drain (s)", "fraction of 120 min"
    );
    println!("{}", "-".repeat(75));
    for r in &rows {
        println!(
            "{:>12} {:>14.1} {:>10} {:>12.1} {:>19.1}%",
            r.burst_records,
            r.burst_seconds_at_2000rps,
            r.pending_witnesses,
            r.drain_scpu_seconds,
            r.fraction_of_120min_lifetime * 100.0
        );
    }
    println!();
    println!("each deferred record needs 2 strong re-signatures at 848/s => the SCPU");
    println!("strengthens ~424 records/s of idle time; a burst sustained at 2000+");
    println!("records/s therefore needs idle ~4.7x the burst length, which bounds the");
    println!("burst to ~1/5 of the security lifetime — matching the paper's 'bursts of");
    println!("no more than 60-180 minutes' framing.");
}
