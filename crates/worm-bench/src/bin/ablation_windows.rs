//! Ablation A2 — VRDT storage under multi-window compaction.
//!
//! §4.2.1: when records "do not expire in the order of their insertion —
//! likely if the same store is used with data governed by different
//! regulations", contiguous expired segments of 3+ records can be
//! replaced by signed window-bound pairs, bounding the table's resident
//! state. This binary ingests a mixed-regulation workload, expires
//! records out of insertion order, and reports resident VRDT entries with
//! and without compaction.
//!
//! Usage: `ablation_windows [--json] [--records N]`

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Clock, VirtualClock};
use strongworm::{RegulatoryAuthority, RetentionPolicy, WormConfig, WormServer};
use worm_bench::json_record;
use wormstore::Shredder;

struct Row {
    phase: String,
    elapsed_s: u64,
    resident_no_compaction: usize,
    resident_with_compaction: usize,
    windows: usize,
    scpu_window_sigs: u64,
}

json_record!(Row {
    phase,
    elapsed_s,
    resident_no_compaction,
    resident_with_compaction,
    windows,
    scpu_window_sigs
});

fn build_server(clock: Arc<VirtualClock>) -> WormServer {
    let mut rng = StdRng::seed_from_u64(5);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let mut cfg = WormConfig::test_small();
    cfg.store_capacity = 64 << 20;
    cfg.device.cost_model = scpu::CostModel::ibm4764();
    WormServer::new(cfg, clock, regulator.public()).expect("server boots")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let n: usize = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3000);

    // Three regulation classes with different retention periods, written
    // in alternating batches (as departments upload in blocks): class-0
    // expires first, leaving expired *segments* interleaved with live
    // ones — the multi-window case of §4.2.1.
    let classes = [600u64, 3_000, 30_000];
    let batch = 25usize;

    let clock_a = VirtualClock::starting_at_millis(0);
    let clock_b = VirtualClock::starting_at_millis(0);
    let plain = build_server(clock_a.clone());
    let compacted = build_server(clock_b.clone());

    for i in 0..n {
        let retention = classes[(i / batch) % classes.len()];
        let policy = RetentionPolicy::custom(Duration::from_secs(retention), Shredder::ZeroFill);
        let body = format!("record-{i}");
        plain.write(&[body.as_bytes()], policy).unwrap();
        compacted.write(&[body.as_bytes()], policy).unwrap();
    }

    let mut rows = Vec::new();
    let mut emit = |label: &str, elapsed: u64, plain: &WormServer, compacted: &WormServer| {
        rows.push(Row {
            phase: label.to_owned(),
            elapsed_s: elapsed,
            resident_no_compaction: plain.vrdt().resident_entries(),
            resident_with_compaction: compacted.vrdt().resident_entries(),
            windows: compacted.vrdt().resident_windows(),
            scpu_window_sigs: compacted.device_meter().count("rsa_sign"),
        });
    };

    emit("ingested", 0, &plain, &compacted);
    for (label, at_s) in [
        ("class0-expired", 700u64),
        ("class1-expired", 3_100),
        ("class2-expired", 31_000),
    ] {
        let now = clock_a.now().as_millis() / 1000;
        let advance = at_s.saturating_sub(now);
        clock_a.advance(Duration::from_secs(advance));
        clock_b.advance(Duration::from_secs(advance));
        plain.tick().unwrap();
        compacted.tick().unwrap();
        compacted.compact().unwrap();
        emit(label, at_s, &plain, &compacted);
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Ablation A2 — VRDT residency: per-record proofs vs multi-window compaction");
    println!(
        "workload: {n} records, 3 regulation classes (600 s / 3000 s / 30000 s), 25-record batches"
    );
    println!();
    println!(
        "{:>16} {:>10} {:>22} {:>24} {:>9}",
        "phase", "t (s)", "resident (no compact)", "resident (compacted)", "windows"
    );
    println!("{}", "-".repeat(88));
    for r in &rows {
        println!(
            "{:>16} {:>10} {:>22} {:>24} {:>9}",
            r.phase, r.elapsed_s, r.resident_no_compaction, r.resident_with_compaction, r.windows
        );
    }
    println!();
    println!("with out-of-order expiry, compaction replaces whole expired segments by");
    println!("two signed bounds each; without it every expired record keeps a proof");
    println!("resident until the base finally sweeps past it.");
}
