//! Ablation A1 — window authentication vs Merkle trees.
//!
//! §4.1 ("No Hash-Tree Authentication"): Merkle trees cost O(log n) hash
//! evaluations per update; the window scheme signs only boundaries, so an
//! update costs O(1) — in steady state *zero* extra authentication work
//! beyond the per-record witnesses, with the timestamped head signature
//! amortized over the heartbeat interval.
//!
//! This binary appends records under both schemes and reports, for stores
//! of growing size, the authentication work per update in hash operations
//! and in IBM 4764 virtual nanoseconds.
//!
//! Usage: `ablation_merkle [--json]`

use scpu::{CostModel, Op};
use worm_bench::json_record;
use wormcrypt::MerkleTree;

struct Row {
    n_records: usize,
    merkle_hashes_per_update: f64,
    merkle_scpu_ns_per_update: f64,
    window_hashes_per_update: f64,
    window_scpu_ns_per_update: f64,
    speedup: f64,
}

json_record!(Row {
    n_records,
    merkle_hashes_per_update,
    merkle_scpu_ns_per_update,
    window_hashes_per_update,
    window_scpu_ns_per_update,
    speedup
});

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let dev = CostModel::ibm4764();
    // A Merkle authentication path hashes 32-byte digests pairwise; one
    // interior evaluation digests 64 bytes plus the prefix byte.
    let node_ns = dev.cost_ns(Op::Sha256 { bytes: 65 }) as f64;
    // The window scheme's only steady-state authentication cost is the
    // periodic head re-signature, amortized over the writes of one
    // heartbeat interval (2 min at the paper's 450 rec/s sustained rate).
    let head_sig_ns = dev.cost_ns(Op::RsaSign { bits: 1024 }) as f64;
    let writes_per_heartbeat = 120.0 * 450.0;
    let window_ns_per_update = head_sig_ns / writes_per_heartbeat;

    let mut rows = Vec::new();
    for exp in [10usize, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        // Build a Merkle tree of n records and measure the *marginal*
        // update cost over a batch of appends at that size.
        let mut tree = MerkleTree::new();
        for i in 0..n {
            tree.append(&(i as u64).to_be_bytes());
        }
        tree.take_hash_ops();
        let probe = 1000.min(n);
        for i in 0..probe {
            tree.update(i * (n / probe).max(1) % n, b"rewitnessed");
        }
        let merkle_hashes = tree.take_hash_ops() as f64 / probe as f64;
        rows.push(Row {
            n_records: n,
            merkle_hashes_per_update: merkle_hashes,
            merkle_scpu_ns_per_update: merkle_hashes * node_ns,
            window_hashes_per_update: 0.0,
            window_scpu_ns_per_update: window_ns_per_update,
            speedup: merkle_hashes * node_ns / window_ns_per_update,
        });
    }

    if json {
        println!("{}", worm_bench::to_json_lines(&rows));
        return;
    }
    println!("Ablation A1 — authentication cost per update: Merkle vs windows");
    println!();
    println!(
        "{:>10} {:>18} {:>16} {:>18} {:>16} {:>9}",
        "n", "merkle hashes/up", "merkle ns/up", "window hashes/up", "window ns/up", "speedup"
    );
    println!("{}", "-".repeat(92));
    for r in &rows {
        println!(
            "{:>10} {:>18.1} {:>16.0} {:>18.1} {:>16.2} {:>8.0}x",
            r.n_records,
            r.merkle_hashes_per_update,
            r.merkle_scpu_ns_per_update,
            r.window_hashes_per_update,
            r.window_scpu_ns_per_update,
            r.speedup
        );
    }
    println!();
    println!("merkle grows with log2(n); the window scheme is flat (head signature");
    println!("amortized over one heartbeat of writes) — the O(log n) vs O(1) claim.");
}
