//! Network read-throughput scaling over the `wormnet` serving layer.
//!
//! The paper's service model (§3) puts clients on the far side of a
//! wire from the WORM box; this binary measures what the framed TCP
//! protocol costs and how verified remote reads scale with concurrent
//! client connections. Each client thread owns one TCP session and
//! performs fully verified reads (signatures, data hash, freshness)
//! against a loopback `NetServer`; the server's worker pool serves the
//! sessions concurrently off the shared read plane. Emits
//! `results/BENCH_net_throughput.json` as JSON lines.
//!
//! Like `read_scaling`, this measures *wall clock* — the quantity of
//! interest is end-to-end serving parallelism. Compare `reads_per_sec`
//! here against `BENCH_read_scaling.json` to see the framing + loopback
//! + verification overhead per request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use strongworm::{ReadVerdict, RetentionPolicy, SerialNumber, Verifier};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormnet::{NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;
use wormtrace::{OpSnapshot, OpStats, OpTimer};

/// One measured point of the scaling curve.
#[derive(Clone, Debug)]
struct NetThroughputPoint {
    clients: usize,
    host_cores: usize,
    total_reads: u64,
    wall_ms: f64,
    reads_per_sec: f64,
    speedup_vs_1: f64,
    /// Wire-request latency quantiles from the server's registry
    /// (log2-bucket upper bounds), cumulative up to this point — the
    /// same figures `wormtop` renders live.
    request_p50_ns: u64,
    request_p99_ns: u64,
    /// Client-observed read latency quantiles for *this point only*
    /// (each client times its own verified reads into an `OpStats`;
    /// the per-client histograms merge here). Unlike the cumulative
    /// server-side figures above, these make a tail-latency regression
    /// at high client counts visible instead of averaging it away.
    client_p50_ns: u64,
    client_p99_ns: u64,
    /// The worst single client's p99 at this point — fairness check:
    /// if one connection starves behind the worker pool, it shows here
    /// long before it moves the merged p99.
    client_worst_p99_ns: u64,
}

json_record!(NetThroughputPoint {
    clients,
    host_cores,
    total_reads,
    wall_ms,
    reads_per_sec,
    speedup_vs_1,
    request_p50_ns,
    request_p99_ns,
    client_p50_ns,
    client_p99_ns,
    client_worst_p99_ns,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (server, clock) = quick_server();
    let server = Arc::new(server);

    // A corpus of active records for the clients to sweep over.
    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0xA7u8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();
    let sns = Arc::new(sns);

    // Enough workers that the client count, not the pool, is the
    // variable under test.
    let net = NetServer::bind(
        server.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            workers: 8,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();
    let verifier =
        Arc::new(Verifier::new(server.keys(), Duration::from_secs(300), clock).expect("verifier"));

    let mut points: Vec<NetThroughputPoint> = Vec::new();
    for &clients in &[1usize, 2, 4, 8] {
        let total = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let start = Arc::new(Barrier::new(clients + 1));
        let threads: Vec<_> = (0..clients)
            .map(|t| {
                let sns = sns.clone();
                let verifier = verifier.clone();
                let total = total.clone();
                let stop = stop.clone();
                let start = start.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteWormClient::connect(addr).expect("connect");
                    // This client's own end-to-end read latencies —
                    // fresh per point, so each client count stands on
                    // its own numbers.
                    let lat = OpStats::new();
                    start.wait();
                    let mut n = 0u64;
                    let mut i = t;
                    // ordering: stop flag needs timeliness, not ordering; the final
                    // count is published by the join, not by this load.
                    while !stop.load(Ordering::Relaxed) {
                        let sn = sns[i % sns.len()];
                        let timer = OpTimer::started();
                        let (verdict, _) =
                            client.read_verified(sn, &verifier).expect("verified read");
                        lat.finish(timer, true);
                        assert_eq!(verdict, ReadVerdict::Intact { sn });
                        n += 1;
                        i += 1;
                    }
                    // ordering: joined before reading; the join edge orders this.
                    total.fetch_add(n, Ordering::Relaxed);
                    lat.snapshot()
                })
            })
            .collect();

        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(MEASURE_WINDOW);
        stop.store(true, Ordering::Relaxed); // ordering: see the reader-side note
        let per_client: Vec<OpSnapshot> = threads
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        let wall = t0.elapsed();

        // Merge the per-client histograms for this point's quantiles
        // and keep the worst single client's tail separately.
        let mut merged = OpSnapshot::default();
        let mut worst_p99 = 0u64;
        for snap in &per_client {
            merged.latency.merge(&snap.latency);
            worst_p99 = worst_p99.max(snap.p99_ns());
        }

        // ordering: every writer thread was joined above; Relaxed reads the final sum.
        let total_reads = total.load(Ordering::Relaxed);
        let reads_per_sec = total_reads as f64 / wall.as_secs_f64();
        let baseline = points.first().map_or(reads_per_sec, |p| p.reads_per_sec);
        let snap = server.stats_snapshot();
        points.push(NetThroughputPoint {
            clients,
            host_cores: cores,
            total_reads,
            wall_ms: wall.as_secs_f64() * 1e3,
            reads_per_sec,
            speedup_vs_1: reads_per_sec / baseline,
            request_p50_ns: snap.p50_ns("net.request").unwrap_or(0),
            request_p99_ns: snap.p99_ns("net.request").unwrap_or(0),
            client_p50_ns: merged.p50_ns(),
            client_p99_ns: merged.p99_ns(),
            client_worst_p99_ns: worst_p99,
        });
        let p = points.last().unwrap();
        println!(
            "clients={:<2} total={:<9} rate={:>12.0} reads/s speedup={:.2}x p50={}ns p99={}ns (worst client p99 {}ns)",
            p.clients,
            p.total_reads,
            p.reads_per_sec,
            p.speedup_vs_1,
            p.client_p50_ns,
            p.client_p99_ns,
            p.client_worst_p99_ns
        );
    }

    net.shutdown();

    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_net_throughput.json", out).expect("write results");
    println!("wrote results/BENCH_net_throughput.json ({cores} host cores)");
}
