//! Network read-throughput scaling over the `wormnet` serving layer.
//!
//! The paper's service model (§3) puts clients on the far side of a
//! wire from the WORM box; this binary measures what the framed TCP
//! protocol costs and how verified remote reads scale with concurrent
//! client connections. Each client thread owns one TCP session and
//! performs fully verified reads (signatures, data hash, freshness)
//! against a loopback `NetServer`, keeping a pipeline window of
//! requests in flight so the wire round trip amortizes across the
//! window instead of gating every read. The server's event-loop
//! workers multiplex all the sessions. Emits
//! `results/BENCH_net_throughput.json` as JSON lines.
//!
//! Like `read_scaling`, this measures *wall clock* — the quantity of
//! interest is end-to-end serving parallelism. Compare `reads_per_sec`
//! here against `BENCH_read_scaling.json` to see the framing + loopback
//! + verification overhead per request.
//!
//! The binary is also a regression gate: it exits nonzero if the
//! scaling curve dips (speedup must be monotone within a small
//! tolerance through the highest client count) or if the server shed
//! connections mid-measurement (throughput numbers must never mask
//! admission failures).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use strongworm::{ReadVerdict, RetentionPolicy, SerialNumber, Verifier};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormnet::{NetRequest, NetResponse, NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;
use wormtrace::{OpSnapshot, OpStats, OpTimer};

/// One measured point of the scaling curve.
#[derive(Clone, Debug)]
struct NetThroughputPoint {
    clients: usize,
    host_cores: usize,
    pipeline_depth: usize,
    total_reads: u64,
    wall_ms: f64,
    reads_per_sec: f64,
    speedup_vs_1: f64,
    /// Connections the acceptor shed *during this point* (delta of the
    /// cumulative `net.conn_shed` counter). Must be zero for the
    /// point's throughput to mean anything.
    conn_shed: u64,
    /// High-water mark of `net.queue_depth` (connections handed off
    /// but not yet swept into a worker), cumulative across points —
    /// the gauge only ever ratchets up.
    queue_peak: u64,
    /// Wire-request latency quantiles from the server's registry
    /// (log2-bucket upper bounds), cumulative up to this point — the
    /// same figures `wormtop` renders live.
    request_p50_ns: u64,
    request_p99_ns: u64,
    /// Client-observed submit-to-verified latency quantiles for *this
    /// point only* (each client times every read from pipeline submit
    /// to verified response; the per-client histograms merge here).
    /// Pipelined latency includes window queueing — it is the latency
    /// a batch caller actually experiences.
    client_p50_ns: u64,
    client_p99_ns: u64,
    /// The worst single client's p99 at this point — fairness check:
    /// if one connection starves behind the event loop, it shows here
    /// long before it moves the merged p99.
    client_worst_p99_ns: u64,
}

json_record!(NetThroughputPoint {
    clients,
    host_cores,
    pipeline_depth,
    total_reads,
    wall_ms,
    reads_per_sec,
    speedup_vs_1,
    conn_shed,
    queue_peak,
    request_p50_ns,
    request_p99_ns,
    client_p50_ns,
    client_p99_ns,
    client_worst_p99_ns,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Requests each client keeps in flight on its connection. Depth 8 keeps
/// ~33KiB of 4KiB responses in the pipe — enough to hide a round trip, but
/// below the in-flight volume (131KiB at depth 32) where a slow-draining
/// verifying client starts tripping retransmit/zero-window stalls against
/// the default socket buffers.
const PIPELINE_DEPTH: usize = 8;
/// Monotone-speedup gate: each point must reach at least this fraction
/// of the previous point's throughput. Catches the historical
/// 0.9x-dip-at-8-clients regression while tolerating measurement
/// jitter.
const MONOTONE_TOLERANCE: f64 = 0.9;
/// Measurement passes per client count; the best pass is the point.
/// A regression gate wants the machine's ceiling, not its scheduler
/// noise — a real dip (the 8-client collapse was ~0.3x) fails every
/// pass, while a one-off descheduling stall fails only one.
const POINT_PASSES: usize = 2;

/// Verifies one pipelined response against the SN it was issued for
/// and records its submit-to-verified latency.
fn complete(
    resp: &NetResponse,
    issued: &mut VecDeque<(SerialNumber, OpTimer)>,
    lat: &OpStats,
    verifier: &Verifier,
) {
    let (sn, timer) = issued.pop_front().expect("response without a request");
    match resp {
        NetResponse::Outcome(outcome) => {
            let verdict = verifier.verify_read(sn, outcome).expect("verified read");
            assert_eq!(verdict, ReadVerdict::Intact { sn });
        }
        other => panic!("expected Outcome for {sn:?}, got {other:?}"),
    }
    lat.finish(timer, true);
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (server, clock) = quick_server();
    let server = Arc::new(server);

    // A corpus of active records for the clients to sweep over.
    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0xA7u8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();
    let sns = Arc::new(sns);

    // Peak-throughput measurement runs with trace *collection* off, as
    // a production deployment would at steady state: per-request span
    // capture (and the read-cache bypass it forces) is the price of
    // active diagnosis, not the serving baseline. Counters and gauges —
    // everything the shed/queue gates below read — are unconditional.
    server.trace().set_enabled(false);

    // Enough workers that the client count, not the pool, is the
    // variable under test; the event loop multiplexes 16 clients over
    // 8 workers without anyone waiting for a dedicated thread.
    let net = NetServer::bind(
        server.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            workers: 8,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();
    let verifier =
        Arc::new(Verifier::new(server.keys(), Duration::from_secs(300), clock).expect("verifier"));

    let mut points: Vec<NetThroughputPoint> = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let mut best: Option<NetThroughputPoint> = None;
        let mut shed_total = 0u64;
        for _pass in 0..POINT_PASSES {
            let shed_before = server.stats_snapshot().counter("net.conn_shed");
            let total = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let start = Arc::new(Barrier::new(clients + 1));
            let threads: Vec<_> = (0..clients)
                .map(|t| {
                    let sns = sns.clone();
                    let verifier = verifier.clone();
                    let total = total.clone();
                    let stop = stop.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        let mut client = RemoteWormClient::connect(addr).expect("connect");
                        // This client's own end-to-end read latencies —
                        // fresh per point, so each client count stands on
                        // its own numbers.
                        let lat = OpStats::new();
                        let mut issued: VecDeque<(SerialNumber, OpTimer)> = VecDeque::new();
                        start.wait();
                        let mut n = 0u64;
                        let mut i = t;
                        let mut pipe = client.pipeline(PIPELINE_DEPTH);
                        // ordering: stop flag needs timeliness, not ordering; the final
                        // count is published by the join, not by this load.
                        //
                        // Fill the window, then drain only half of it: the
                        // half-window of requests departs as one coalesced
                        // write and the matching responses arrive in one
                        // buffered read, instead of a syscall per frame —
                        // the cadence a real pipelined consumer settles
                        // into, and what the event-driven server batches
                        // best against.
                        while !stop.load(Ordering::Relaxed) {
                            while pipe.in_flight() < PIPELINE_DEPTH {
                                let sn = sns[i % sns.len()];
                                issued.push_back((sn, OpTimer::started()));
                                if let Some(resp) =
                                    pipe.send(&NetRequest::Read { sn }).expect("pipelined send")
                                {
                                    complete(&resp, &mut issued, &lat, &verifier);
                                    n += 1;
                                }
                                i += 1;
                            }
                            while pipe.in_flight() > PIPELINE_DEPTH / 2 {
                                match pipe.recv().expect("pipelined recv") {
                                    Some(resp) => {
                                        complete(&resp, &mut issued, &lat, &verifier);
                                        n += 1;
                                    }
                                    None => break,
                                }
                            }
                        }
                        // Drain the window: every issued request completes
                        // and counts.
                        for resp in pipe.finish().expect("pipeline drain") {
                            complete(&resp, &mut issued, &lat, &verifier);
                            n += 1;
                        }
                        // ordering: joined before reading; the join edge orders this.
                        total.fetch_add(n, Ordering::Relaxed);
                        lat.snapshot()
                    })
                })
                .collect();

            start.wait();
            let t0 = Instant::now();
            std::thread::sleep(MEASURE_WINDOW);
            stop.store(true, Ordering::Relaxed); // ordering: see the reader-side note
            let per_client: Vec<OpSnapshot> = threads
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect();
            let wall = t0.elapsed();

            // Merge the per-client histograms for this point's quantiles
            // and keep the worst single client's tail separately.
            let mut merged = OpSnapshot::default();
            let mut worst_p99 = 0u64;
            for snap in &per_client {
                merged.latency.merge(&snap.latency);
                worst_p99 = worst_p99.max(snap.p99_ns());
            }

            // ordering: every writer thread was joined above; Relaxed reads the final sum.
            let total_reads = total.load(Ordering::Relaxed);
            let reads_per_sec = total_reads as f64 / wall.as_secs_f64();
            let snap = server.stats_snapshot();
            // Shed connections accumulate across passes: shedding in
            // *any* pass fails the gate — a lucky retry must not
            // launder an overloaded admission path.
            shed_total += snap.counter("net.conn_shed").saturating_sub(shed_before);
            let candidate = NetThroughputPoint {
                clients,
                host_cores: cores,
                pipeline_depth: PIPELINE_DEPTH,
                total_reads,
                wall_ms: wall.as_secs_f64() * 1e3,
                reads_per_sec,
                speedup_vs_1: 1.0, // filled in below from the kept pass
                conn_shed: 0,      // filled in below from the cross-pass sum
                queue_peak: snap.gauge("net.queue_peak").unwrap_or(0),
                request_p50_ns: snap.p50_ns("net.request").unwrap_or(0),
                request_p99_ns: snap.p99_ns("net.request").unwrap_or(0),
                client_p50_ns: merged.p50_ns(),
                client_p99_ns: merged.p99_ns(),
                client_worst_p99_ns: worst_p99,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.reads_per_sec > b.reads_per_sec)
            {
                best = Some(candidate);
            }
        }
        let mut point = best.expect("at least one measurement pass");
        point.conn_shed = shed_total;
        point.speedup_vs_1 = point.reads_per_sec
            / points
                .first()
                .map_or(point.reads_per_sec, |p| p.reads_per_sec);
        points.push(point);
        let p = points.last().unwrap();
        println!(
            "clients={:<2} total={:<9} rate={:>12.0} reads/s speedup={:.2}x shed={} p50={}ns p99={}ns (worst client p99 {}ns)",
            p.clients,
            p.total_reads,
            p.reads_per_sec,
            p.speedup_vs_1,
            p.conn_shed,
            p.client_p50_ns,
            p.client_p99_ns,
            p.client_worst_p99_ns
        );
    }

    net.shutdown();

    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_net_throughput.json", out).expect("write results");
    println!("wrote results/BENCH_net_throughput.json ({cores} host cores)");

    // Regression gates. The historical failure mode was a *dip*: 8
    // clients slower than 4 because connections beyond the worker
    // count starved. The curve must be monotone (within tolerance),
    // and no point may have shed connections to get its number.
    let mut failures = Vec::new();
    for pair in points.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        if cur.reads_per_sec < prev.reads_per_sec * MONOTONE_TOLERANCE {
            failures.push(format!(
                "throughput dipped at {} clients: {:.0} reads/s < {:.0}% of {:.0} at {} clients",
                cur.clients,
                cur.reads_per_sec,
                MONOTONE_TOLERANCE * 100.0,
                prev.reads_per_sec,
                prev.clients
            ));
        }
    }
    for p in &points {
        if p.conn_shed > 0 {
            failures.push(format!(
                "{} connections shed at {} clients: the point under-reports load",
                p.conn_shed, p.clients
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "scaling gate passed: monotone speedup through {} clients, zero shed",
        CLIENT_COUNTS.last().copied().unwrap_or(0)
    );
}
