//! Instrumentation overhead on the read path.
//!
//! The wormtrace registry promises "lock-light": once handles are
//! resolved, a read records one timestamp pair plus a few relaxed
//! atomic increments, and ring events are sampled 1-in-64. This binary
//! prices that promise by timing the same read loop with
//! instrumentation enabled and with the registry kill switch thrown
//! (`Registry::set_enabled(false)`), and emits
//! `results/BENCH_observability.json` as JSON lines.
//!
//! Two denominators are reported, deliberately:
//!
//! * **verified** — `server.read` followed by `Verifier::verify_read`,
//!   the operation the paper's trust model actually defines (an
//!   unverified read carries no WORM guarantee). This is the headline
//!   row the <3% target applies to.
//! * **raw** — the bare `server.read` hot loop, a few hundred ns of
//!   in-memory lookups. Reported so the *absolute* per-read cost
//!   (clock pair + atomics, tens of ns) is visible rather than hidden
//!   behind a large denominator.
//!
//! Methodology: modes alternate per *batch* (a few ms each) so clock
//! and scheduler drift hits both modes equally at fine granularity,
//! and each mode keeps the *minimum* per-read batch time across all
//! batches — the minimum is the least-noise estimate of the true
//! cost, and batching keeps one scheduler preemption from poisoning
//! more than a single batch's figure.

use std::sync::Arc;
use std::time::{Duration, Instant};

use strongworm::{ReadVerdict, RetentionPolicy, SerialNumber, Verifier, WormServer};
use worm_bench::{json_record, quick_server, to_json_lines};
use wormstore::Shredder;

/// One measured row (a mode of one denominator, or a summary).
#[derive(Clone, Debug)]
struct ObservabilityPoint {
    mode: String,
    batches_per_mode: u64,
    reads_per_batch: u64,
    min_ns_per_read: f64,
    reads_per_sec: f64,
    /// Enabled minus disabled, as a percentage of disabled; zero for
    /// the per-mode rows, filled on the summary rows.
    overhead_pct: f64,
    /// Whether the <3% budget holds. Judged on the verified-read
    /// summary row; vacuously true elsewhere.
    within_target: bool,
    /// `server.read` latency quantiles from the registry's histogram
    /// (log2-bucket upper bounds), cumulative over the enabled-mode
    /// reads of the whole run. Same figure `wormtop` renders live.
    read_p50_ns: u64,
    read_p99_ns: u64,
}

json_record!(ObservabilityPoint {
    mode,
    batches_per_mode,
    reads_per_batch,
    min_ns_per_read,
    reads_per_sec,
    overhead_pct,
    within_target,
    read_p50_ns,
    read_p99_ns,
});

const CORPUS: usize = 64;
const RECORD_BYTES: usize = 4 << 10;
const RAW_BATCHES_PER_MODE: u64 = 500;
const VERIFIED_BATCHES_PER_MODE: u64 = 100;
const OVERHEAD_TARGET_PCT: f64 = 3.0;

/// Reads per timed batch — the unit of mode alternation.
const BATCH: u64 = 200;

/// Times one batch of bare `server.read` calls in ns/read.
fn raw_batch(server: &WormServer, sns: &[SerialNumber], start: u64) -> f64 {
    let t0 = Instant::now();
    for i in start..start + BATCH {
        let sn = sns[(i as usize) % sns.len()];
        let outcome = server.read(sn).expect("read succeeds");
        assert_eq!(outcome.kind(), "data");
    }
    t0.elapsed().as_nanos() as f64 / BATCH as f64
}

/// Times one batch of read-then-verify — the full trust-model read —
/// in ns/read.
fn verified_batch(
    server: &WormServer,
    verifier: &Verifier,
    sns: &[SerialNumber],
    start: u64,
) -> f64 {
    let t0 = Instant::now();
    for i in start..start + BATCH {
        let sn = sns[(i as usize) % sns.len()];
        let outcome = server.read(sn).expect("read succeeds");
        let verdict = verifier.verify_read(sn, &outcome).expect("verifies");
        assert_eq!(verdict, ReadVerdict::Intact { sn });
    }
    t0.elapsed().as_nanos() as f64 / BATCH as f64
}

/// Batch-alternating A/B: toggles the kill switch between every batch
/// and returns (min enabled, min disabled) ns/read.
fn measure(
    server: &WormServer,
    label: &str,
    batches_per_mode: u64,
    mut batch: impl FnMut(u64) -> f64,
) -> (f64, f64) {
    // Warm both paths before any timed batch.
    let mut pos = 0u64;
    for &enabled in &[true, false] {
        server.trace().set_enabled(enabled);
        batch(pos);
        pos += BATCH;
    }
    let mut min_enabled = f64::INFINITY;
    let mut min_disabled = f64::INFINITY;
    for _ in 0..batches_per_mode {
        for &enabled in &[true, false] {
            server.trace().set_enabled(enabled);
            let ns = batch(pos);
            pos += BATCH;
            if enabled {
                min_enabled = min_enabled.min(ns);
            } else {
                min_disabled = min_disabled.min(ns);
            }
        }
    }
    server.trace().set_enabled(true);
    println!(
        "{label}: batches/mode={batches_per_mode} min enabled={min_enabled:.1} \
         min disabled={min_disabled:.1} ns/read"
    );
    (min_enabled, min_disabled)
}

fn overhead_pct(enabled: f64, disabled: f64) -> f64 {
    (enabled - disabled) / disabled * 100.0
}

fn main() {
    let (server, clock) = quick_server();
    let server = Arc::new(server);
    let verifier = Verifier::new(server.keys(), Duration::from_secs(300), clock).expect("verifier");

    let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
    let payload = vec![0x5Cu8; RECORD_BYTES];
    let sns: Vec<SerialNumber> = (0..CORPUS)
        .map(|_| server.write(&[&payload], policy).expect("corpus write"))
        .collect();

    let before = server
        .stats_snapshot()
        .op("server.read")
        .map_or(0, |o| o.ok);
    let (verified_on, verified_off) =
        measure(&server, "verified", VERIFIED_BATCHES_PER_MODE, |p| {
            verified_batch(&server, &verifier, &sns, p)
        });
    let (raw_on, raw_off) = measure(&server, "raw     ", RAW_BATCHES_PER_MODE, |p| {
        raw_batch(&server, &sns, p)
    });

    // Sanity: exactly the enabled batches were counted — one warm batch
    // plus the timed batches per denominator, nothing from the disabled
    // batches.
    let after = server
        .stats_snapshot()
        .op("server.read")
        .map_or(0, |o| o.ok);
    let instrumented = (VERIFIED_BATCHES_PER_MODE + 1 + RAW_BATCHES_PER_MODE + 1) * BATCH;
    assert_eq!(
        after - before,
        instrumented,
        "enabled-mode reads all counted, disabled-mode reads none"
    );

    let verified_overhead = overhead_pct(verified_on, verified_off);
    let raw_overhead = overhead_pct(raw_on, raw_off);
    let snap = server.stats_snapshot();
    let read_p50_ns = snap.p50_ns("server.read").unwrap_or(0);
    let read_p99_ns = snap.p99_ns("server.read").unwrap_or(0);
    let row = |mode: &str, batches: u64, ns: f64, pct: f64, ok: bool| ObservabilityPoint {
        mode: mode.into(),
        batches_per_mode: batches,
        reads_per_batch: BATCH,
        min_ns_per_read: ns,
        reads_per_sec: if ns > 0.0 { 1e9 / ns } else { 0.0 },
        overhead_pct: pct,
        within_target: ok,
        read_p50_ns,
        read_p99_ns,
    };
    let points = vec![
        row(
            "verified_enabled",
            VERIFIED_BATCHES_PER_MODE,
            verified_on,
            0.0,
            true,
        ),
        row(
            "verified_disabled",
            VERIFIED_BATCHES_PER_MODE,
            verified_off,
            0.0,
            true,
        ),
        row(
            "verified_overhead",
            VERIFIED_BATCHES_PER_MODE,
            verified_on - verified_off,
            verified_overhead,
            verified_overhead < OVERHEAD_TARGET_PCT,
        ),
        row("raw_enabled", RAW_BATCHES_PER_MODE, raw_on, 0.0, true),
        row("raw_disabled", RAW_BATCHES_PER_MODE, raw_off, 0.0, true),
        row(
            "raw_overhead",
            RAW_BATCHES_PER_MODE,
            raw_on - raw_off,
            raw_overhead,
            true,
        ),
    ];

    println!(
        "verified-read overhead: {verified_overhead:.2}% (target < {OVERHEAD_TARGET_PCT}%) — {}",
        if verified_overhead < OVERHEAD_TARGET_PCT {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );
    println!(
        "raw hot-loop overhead:  {raw_overhead:.2}% ({:.0} ns absolute per read)",
        raw_on - raw_off
    );

    std::fs::create_dir_all("results").expect("results dir");
    let out = to_json_lines(&points) + "\n";
    std::fs::write("results/BENCH_observability.json", out).expect("write results");
    println!("wrote results/BENCH_observability.json");
}
