//! Request/response protocol, layered on the canonical wire codec.
//!
//! Each frame payload is a domain-tagged [`strongworm::wire`] message.
//! Structures that already have canonical encodings in
//! [`strongworm::codec`] — read outcomes, credentials, device keys —
//! are embedded as nested byte strings of those exact encodings, so a
//! verifier sees the same canonical bytes it would see in-process.
//! Decoding is defensive throughout: both sides treat the peer as
//! hostile, and malformed input yields an error, never a panic or an
//! unbounded allocation.

use bytes::Bytes;
use strongworm::authority::{HoldCredential, ReleaseCredential};
use strongworm::codec::{
    decode_captured_traces, decode_composite_head, decode_device_keys, decode_hold_credential,
    decode_read_outcome, decode_read_outcome_shared, decode_release_credential,
    decode_stats_snapshot, decode_weak_key_cert, encode_captured_traces, encode_composite_head,
    encode_device_keys, encode_hold_credential, encode_read_outcome_into,
    encode_release_credential, encode_stats_snapshot, encode_weak_key_cert,
};
use strongworm::firmware::{DeviceKeys, WeakKeyCert};
use strongworm::wire::{WireError, WireReader, WireWriter};
use strongworm::{
    CompositeHead, ReadOutcome, Regulation, RetentionPolicy, SerialNumber, WitnessMode, WormError,
};
use wormstore::Shredder;

const REQ_TAG: &str = "wormnet.req.v1";
const RESP_TAG: &str = "wormnet.resp.v1";

/// Decoding cap on list lengths (records per write, weak certs per key
/// bundle): a hostile count must not drive unbounded allocation.
const MAX_LIST_LEN: usize = 1 << 20;

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetRequest {
    /// Commit a virtual record (§4.2.2 *Write*).
    Write {
        /// The data records of the VR, in order.
        records: Vec<Bytes>,
        /// Retention policy to stamp into the record's attributes.
        policy: RetentionPolicy,
        /// Application flag bits.
        flags: u32,
        /// Witness tier (§4.3 deferred strength).
        witness: WitnessMode,
    },
    /// Read a record by serial number (§4.2.2 *Read*).
    Read {
        /// The serial number to read.
        sn: SerialNumber,
    },
    /// Drive retention maintenance, then re-read `sn` so the caller can
    /// verify the resulting deletion evidence. WORM semantics: there is
    /// no unilateral delete — only records past their retention
    /// deadline are actually removed, and the response proves whichever
    /// state holds.
    Delete {
        /// The serial number whose deletion is being driven.
        sn: SerialNumber,
    },
    /// Place a litigation hold (§4.2.2 *LitHold*).
    LitHold(
        /// Regulator-signed hold credential.
        HoldCredential,
    ),
    /// Release a litigation hold (§4.2.2 *LitRelease*).
    LitRelease(
        /// Regulator-signed release credential.
        ReleaseCredential,
    ),
    /// Drive due device alarms (Retention Monitor wake-ups, head
    /// heartbeats).
    Tick,
    /// Fetch the device's published keys and weak-key certificates, for
    /// bootstrapping a [`strongworm::Verifier`]. The bytes are
    /// untrusted until validated against CA certificates.
    GetKeys,
    /// Fetch a point-in-time snapshot of the server's trace registry:
    /// per-op latency histograms, outcome counters, and subsystem
    /// gauges. Observability only — nothing in it is signed, so it is
    /// diagnostic data, not compliance evidence.
    Stats,
    /// Fetch the flight recorder's retained slow/error span trees
    /// (newest last). Like `Stats`, unsigned diagnostic data only.
    Traces,
    /// Fetch the deployment's composite freshness head: every shard's
    /// head certificate folded into one coordinator-signed root. A
    /// single-SCPU server answers with a degenerate one-shard
    /// composite, so clients need not know the deployment shape.
    GetCompositeHead,
    /// Fetch every shard's published keys and weak-key certificates, in
    /// lane order, for bootstrapping a
    /// [`strongworm::CompositeVerifier`]. Untrusted until validated,
    /// exactly like `GetKeys`.
    GetShardKeys,
    /// Fetch a page of the tamper-evident audit journal, cursor-based:
    /// events with `seq >= from_seq`, at most `max_events` of them,
    /// plus every SCPU anchor covering the returned window. Unlike
    /// `Stats`/`Traces` this *is* compliance evidence — the auditor
    /// replays the hash chain against the anchors
    /// ([`wormaudit::verify_chain`]) rather than trusting the host.
    FetchAuditEvents {
        /// First journal sequence number wanted (0 for the oldest
        /// retained event; resume from `last.seq + 1` to paginate).
        from_seq: u64,
        /// Page size cap; the server additionally clamps to
        /// [`wormaudit::codec::MAX_PAGE_EVENTS`].
        max_events: u32,
    },
}

/// A server response.
#[derive(Clone, Debug)]
pub enum NetResponse {
    /// The request failed server-side.
    Error {
        /// Numeric error class from [`error_code`].
        code: u8,
        /// Human-readable message. Untrusted — display only.
        message: String,
    },
    /// A write committed.
    Written {
        /// The serial number the SCPU assigned.
        sn: SerialNumber,
    },
    /// A read (or delete re-read) outcome, carrying SCPU-signed
    /// evidence for the client to verify.
    Outcome(
        /// The outcome, in its canonical encoding.
        ReadOutcome,
    ),
    /// The request succeeded with nothing to return.
    Ack,
    /// The device's published keys.
    Keys {
        /// Permanent keys plus the current weak-key certificate.
        keys: DeviceKeys,
        /// All weak-key certificates issued so far (deferred witnesses
        /// may be signed under rotated-out keys).
        weak_certs: Vec<WeakKeyCert>,
    },
    /// A stats snapshot, in its canonical encoding.
    Stats(
        /// Every instrument registered server-side, name-sorted.
        wormtrace::StatsSnapshot,
    ),
    /// The flight recorder's retained span trees, oldest first.
    Traces(
        /// Captured slow/error traces, in their canonical encoding.
        Vec<wormtrace::CapturedTrace>,
    ),
    /// The composite freshness head, in its canonical encoding. The
    /// client verifies the coordinator's binding signature, the root,
    /// and every per-shard head before trusting any of it.
    CompositeHead(
        /// Per-shard heads plus the signed binding.
        CompositeHead,
    ),
    /// Every shard's published keys, in lane order.
    ShardKeys(
        /// `(keys, weak_certs)` per shard lane; untrusted until
        /// validated against CA certificates.
        Vec<(DeviceKeys, Vec<WeakKeyCert>)>,
    ),
    /// One page of the audit journal, in its canonical
    /// `wormaudit.events.v1` encoding. Untrusted until the client
    /// replays the chain against the embedded SCPU anchors.
    AuditEvents(
        /// Events plus covering anchors.
        wormaudit::AuditPage,
    ),
}

/// Maps a server-side error to a stable numeric class for the wire.
pub fn error_code(e: &WormError) -> u8 {
    match e {
        WormError::Device(_) => 1,
        WormError::Store(_) => 2,
        WormError::Firmware(_) => 3,
        WormError::NotActive(_) => 4,
        WormError::Wire(_) => 5,
        // `WormError` is non_exhaustive; future variants class as 0.
        _ => 0,
    }
}

/// Error class a server uses for requests it could not even decode.
pub const CODE_BAD_REQUEST: u8 = 6;

/// Error class a server sends — as the sole frame on the connection,
/// immediately before closing it — when admission control sheds the
/// connection (every worker saturated or the connection cap reached).
/// Distinguishes deliberate load-shedding from a network failure: a
/// client seeing `CODE_BUSY` should back off and retry, not alert.
pub const CODE_BUSY: u8 = 7;

fn put_policy(w: &mut WireWriter, p: &RetentionPolicy) {
    w.put_u8(p.regulation.code());
    w.put_u64(u64::try_from(p.retention.as_millis()).unwrap_or(u64::MAX));
    let (kind, arg) = match p.shredder {
        Shredder::ZeroFill => (0, 0),
        Shredder::MultiPass { passes } => (1, passes),
        Shredder::RandomPass => (2, 0),
    };
    w.put_u8(kind);
    w.put_u8(arg);
}

fn get_policy(r: &mut WireReader<'_>) -> Result<RetentionPolicy, WireError> {
    let regulation = Regulation::from_code(r.get_u8()?).ok_or(WireError {
        expected: "regulation code",
    })?;
    let retention = std::time::Duration::from_millis(r.get_u64()?);
    let kind = r.get_u8()?;
    let arg = r.get_u8()?;
    let shredder = match kind {
        0 => Shredder::ZeroFill,
        1 => Shredder::MultiPass { passes: arg },
        2 => Shredder::RandomPass,
        _ => {
            return Err(WireError {
                expected: "shredder kind",
            })
        }
    };
    Ok(RetentionPolicy {
        regulation,
        retention,
        shredder,
    })
}

fn put_shard_keys(w: &mut WireWriter, shards: &[(DeviceKeys, Vec<WeakKeyCert>)]) {
    w.put_count(shards.len());
    for (keys, weak_certs) in shards {
        w.put_bytes(&encode_device_keys(keys));
        w.put_count(weak_certs.len());
        for cert in weak_certs {
            w.put_bytes(&encode_weak_key_cert(cert));
        }
    }
}

#[allow(clippy::type_complexity)]
fn get_shard_keys(
    r: &mut WireReader<'_>,
) -> Result<Vec<(DeviceKeys, Vec<WeakKeyCert>)>, WireError> {
    let n = r.get_count()?;
    if n > MAX_LIST_LEN {
        return Err(WireError {
            expected: "shard count within bounds",
        });
    }
    let mut shards = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let keys = decode_device_keys(r.get_bytes()?)?;
        let m = r.get_count()?;
        if m > MAX_LIST_LEN {
            return Err(WireError {
                expected: "weak cert count within bounds",
            });
        }
        let mut weak_certs = Vec::with_capacity(m.min(r.remaining()));
        for _ in 0..m {
            weak_certs.push(decode_weak_key_cert(r.get_bytes()?)?);
        }
        shards.push((keys, weak_certs));
    }
    Ok(shards)
}

fn witness_code(m: WitnessMode) -> u8 {
    match m {
        WitnessMode::Strong => 0,
        WitnessMode::Deferred => 1,
        WitnessMode::Hmac => 2,
    }
}

fn witness_from_code(code: u8) -> Result<WitnessMode, WireError> {
    match code {
        0 => Ok(WitnessMode::Strong),
        1 => Ok(WitnessMode::Deferred),
        2 => Ok(WitnessMode::Hmac),
        _ => Err(WireError {
            expected: "witness mode code",
        }),
    }
}

/// Encodes a request frame payload.
pub fn encode_request(req: &NetRequest) -> Vec<u8> {
    let mut w = WireWriter::tagged(REQ_TAG);
    match req {
        NetRequest::Write {
            records,
            policy,
            flags,
            witness,
        } => {
            w.put_u8(1);
            w.put_count(records.len());
            for rec in records {
                w.put_bytes(rec);
            }
            put_policy(&mut w, policy);
            w.put_u32(*flags);
            w.put_u8(witness_code(*witness));
        }
        NetRequest::Read { sn } => {
            w.put_u8(2);
            w.put_u64(sn.0);
        }
        NetRequest::Delete { sn } => {
            w.put_u8(3);
            w.put_u64(sn.0);
        }
        NetRequest::LitHold(cred) => {
            w.put_u8(4);
            w.put_bytes(&encode_hold_credential(cred));
        }
        NetRequest::LitRelease(cred) => {
            w.put_u8(5);
            w.put_bytes(&encode_release_credential(cred));
        }
        NetRequest::Tick => {
            w.put_u8(6);
        }
        NetRequest::GetKeys => {
            w.put_u8(7);
        }
        NetRequest::Stats => {
            w.put_u8(8);
        }
        NetRequest::Traces => {
            w.put_u8(10);
        }
        NetRequest::GetCompositeHead => {
            w.put_u8(11);
        }
        NetRequest::GetShardKeys => {
            w.put_u8(12);
        }
        NetRequest::FetchAuditEvents {
            from_seq,
            max_events,
        } => {
            w.put_u8(13);
            w.put_u64(*from_seq);
            w.put_u32(*max_events);
        }
    }
    w.finish()
}

/// Wraps an already-meaningful request in the versioned trace-context
/// envelope (opcode 9): trace id, parent span id, then the inner
/// request's complete canonical encoding as a nested byte string. A
/// server that understands the envelope serves the inner request with
/// its spans joined to the caller's trace; an old server rejects the
/// unknown opcode with a decode error and the connection survives —
/// tracing is strictly opt-in per request.
pub fn encode_request_traced(req: &NetRequest, ctx: wormtrace::TraceContext) -> Vec<u8> {
    let mut w = WireWriter::tagged(REQ_TAG);
    w.put_u8(9);
    w.put_u64(ctx.trace_id);
    w.put_u64(ctx.parent_span);
    w.put_bytes(&encode_request(req));
    w.finish()
}

/// Decodes a request frame payload (context-free form). An envelope
/// (opcode 9) is rejected here — servers use
/// [`decode_request_traced`], which accepts both forms.
///
/// # Errors
///
/// [`WireError`] on an unknown tag or opcode, malformed fields,
/// truncation, or trailing bytes.
pub fn decode_request(bytes: &[u8]) -> Result<NetRequest, WireError> {
    decode_request_inner(bytes, false).map(|(req, _)| req)
}

/// Decodes a request frame payload, accepting either a bare request or
/// a trace-context envelope. Envelopes nest exactly one level: an
/// envelope inside an envelope is malformed.
///
/// # Errors
///
/// [`WireError`] on an unknown tag or opcode, malformed fields or
/// trace context, truncation, or trailing bytes — never a panic.
pub fn decode_request_traced(
    bytes: &[u8],
) -> Result<(NetRequest, Option<wormtrace::TraceContext>), WireError> {
    decode_request_inner(bytes, true)
}

fn decode_request_inner(
    bytes: &[u8],
    allow_envelope: bool,
) -> Result<(NetRequest, Option<wormtrace::TraceContext>), WireError> {
    let mut r = WireReader::new(bytes);
    if r.get_str()? != REQ_TAG {
        return Err(WireError {
            expected: "request tag",
        });
    }
    let opcode = r.get_u8()?;
    if opcode == 9 {
        if !allow_envelope {
            return Err(WireError {
                expected: "bare request opcode (envelope rejected here)",
            });
        }
        let trace_id = r.get_u64()?;
        let parent_span = r.get_u64()?;
        let inner = r.get_bytes()?;
        let (req, _) = decode_request_inner(inner, false)?;
        r.expect_end()?;
        return Ok((
            req,
            Some(wormtrace::TraceContext {
                trace_id,
                parent_span,
            }),
        ));
    }
    let req = match opcode {
        1 => {
            let n = r.get_count()?;
            if n > MAX_LIST_LEN {
                return Err(WireError {
                    expected: "record count within bounds",
                });
            }
            let mut records = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                records.push(Bytes::from(r.get_bytes()?.to_vec()));
            }
            let policy = get_policy(&mut r)?;
            let flags = r.get_u32()?;
            let witness = witness_from_code(r.get_u8()?)?;
            NetRequest::Write {
                records,
                policy,
                flags,
                witness,
            }
        }
        2 => NetRequest::Read {
            sn: SerialNumber(r.get_u64()?),
        },
        3 => NetRequest::Delete {
            sn: SerialNumber(r.get_u64()?),
        },
        4 => NetRequest::LitHold(decode_hold_credential(r.get_bytes()?)?),
        5 => NetRequest::LitRelease(decode_release_credential(r.get_bytes()?)?),
        6 => NetRequest::Tick,
        7 => NetRequest::GetKeys,
        8 => NetRequest::Stats,
        10 => NetRequest::Traces,
        11 => NetRequest::GetCompositeHead,
        12 => NetRequest::GetShardKeys,
        13 => NetRequest::FetchAuditEvents {
            from_seq: r.get_u64()?,
            max_events: r.get_u32()?,
        },
        _ => {
            return Err(WireError {
                expected: "request opcode",
            })
        }
    };
    r.expect_end()?;
    Ok((req, None))
}

/// Encodes a response frame payload.
pub fn encode_response(resp: &NetResponse) -> Vec<u8> {
    let mut w = WireWriter::tagged(RESP_TAG);
    match resp {
        NetResponse::Error { code, message } => {
            w.put_u8(0);
            w.put_u8(*code);
            w.put_str(message);
        }
        NetResponse::Written { sn } => {
            w.put_u8(1);
            w.put_u64(sn.0);
        }
        NetResponse::Outcome(outcome) => {
            w.put_u8(2);
            // In place: outcomes carry whole record payloads, and the
            // serving loop encodes one per read — skip the intermediate
            // buffer-and-recopy.
            w.put_nested(|w| encode_read_outcome_into(w, outcome));
        }
        NetResponse::Ack => {
            w.put_u8(3);
        }
        NetResponse::Keys { keys, weak_certs } => {
            w.put_u8(4);
            w.put_bytes(&encode_device_keys(keys));
            w.put_count(weak_certs.len());
            for cert in weak_certs {
                w.put_bytes(&encode_weak_key_cert(cert));
            }
        }
        NetResponse::Stats(snapshot) => {
            w.put_u8(5);
            w.put_bytes(&encode_stats_snapshot(snapshot));
        }
        NetResponse::Traces(traces) => {
            w.put_u8(6);
            w.put_bytes(&encode_captured_traces(traces));
        }
        NetResponse::CompositeHead(composite) => {
            w.put_u8(7);
            w.put_bytes(&encode_composite_head(composite));
        }
        NetResponse::ShardKeys(shards) => {
            w.put_u8(8);
            put_shard_keys(&mut w, shards);
        }
        NetResponse::AuditEvents(page) => {
            w.put_u8(9);
            w.put_bytes(&wormaudit::codec::encode_audit_page(page));
        }
    }
    w.finish()
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// [`WireError`] on an unknown tag or discriminant, malformed fields,
/// truncation, or trailing bytes.
pub fn decode_response(bytes: &[u8]) -> Result<NetResponse, WireError> {
    decode_response_with(bytes, &decode_read_outcome)
}

/// Decodes a response whose read-outcome records *share* the frame
/// buffer instead of being copied out of it (see
/// [`decode_read_outcome_shared`]): the zero-copy path pipelined
/// clients use, where the per-record copy is measurable at depth.
///
/// # Errors
///
/// Exactly as [`decode_response`].
pub fn decode_response_shared(src: &Bytes) -> Result<NetResponse, WireError> {
    let base = src.as_ptr() as usize; // wormlint: allow(cast) -- pointer identity, not a length
    decode_response_with(src, &|s| {
        // wormlint: allow(cast) -- subslice offset via pointer identity; cannot truncate
        let off = (s.as_ptr() as usize).wrapping_sub(base);
        decode_read_outcome_shared(&src.slice(off..off + s.len()))
    })
}

/// Shared body of the two response decoders: `outcome_dec` decodes the
/// nested read outcome from its wire subslice.
fn decode_response_with(
    bytes: &[u8],
    outcome_dec: &dyn Fn(&[u8]) -> Result<ReadOutcome, WireError>,
) -> Result<NetResponse, WireError> {
    let mut r = WireReader::new(bytes);
    if r.get_str()? != RESP_TAG {
        return Err(WireError {
            expected: "response tag",
        });
    }
    let resp = match r.get_u8()? {
        0 => NetResponse::Error {
            code: r.get_u8()?,
            message: r.get_str()?.to_string(),
        },
        1 => NetResponse::Written {
            sn: SerialNumber(r.get_u64()?),
        },
        2 => NetResponse::Outcome(outcome_dec(r.get_bytes()?)?),
        3 => NetResponse::Ack,
        4 => {
            let keys = decode_device_keys(r.get_bytes()?)?;
            let n = r.get_count()?;
            if n > MAX_LIST_LEN {
                return Err(WireError {
                    expected: "weak cert count within bounds",
                });
            }
            let mut weak_certs = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                weak_certs.push(decode_weak_key_cert(r.get_bytes()?)?);
            }
            NetResponse::Keys { keys, weak_certs }
        }
        5 => NetResponse::Stats(decode_stats_snapshot(r.get_bytes()?)?),
        6 => NetResponse::Traces(decode_captured_traces(r.get_bytes()?)?),
        7 => NetResponse::CompositeHead(decode_composite_head(r.get_bytes()?)?),
        8 => NetResponse::ShardKeys(get_shard_keys(&mut r)?),
        9 => NetResponse::AuditEvents(
            // The page keeps its own canonical codec (and count caps);
            // surface its decode failure as this layer's error type.
            wormaudit::codec::decode_audit_page(r.get_bytes()?).map_err(|e| WireError {
                expected: e.expected,
            })?,
        ),
        _ => {
            return Err(WireError {
                expected: "response discriminant",
            })
        }
    };
    r.expect_end()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use strongworm::witness::Signature;

    fn sig(b: u8) -> Signature {
        Signature {
            key_id: [b; 8],
            bytes: vec![b; 32],
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            NetRequest::Write {
                records: vec![Bytes::from(b"a".to_vec()), Bytes::from(Vec::new())],
                policy: RetentionPolicy::custom(
                    Duration::from_secs(30),
                    Shredder::MultiPass { passes: 3 },
                ),
                flags: 0xDEAD_BEEF,
                witness: WitnessMode::Deferred,
            },
            NetRequest::Read {
                sn: SerialNumber(42),
            },
            NetRequest::Delete {
                sn: SerialNumber(7),
            },
            NetRequest::LitHold(HoldCredential {
                sn: SerialNumber(9),
                issued_at: scpu::Timestamp::from_millis(4),
                litigation_id: 77,
                hold_until: scpu::Timestamp::from_millis(9999),
                sig: sig(1),
            }),
            NetRequest::LitRelease(ReleaseCredential {
                sn: SerialNumber(9),
                issued_at: scpu::Timestamp::from_millis(5),
                litigation_id: 77,
                sig: sig(2),
            }),
            NetRequest::Tick,
            NetRequest::GetKeys,
            NetRequest::Stats,
            NetRequest::Traces,
            NetRequest::GetCompositeHead,
            NetRequest::GetShardKeys,
            NetRequest::FetchAuditEvents {
                from_seq: 0,
                max_events: 4096,
            },
            NetRequest::FetchAuditEvents {
                from_seq: u64::MAX,
                max_events: 0,
            },
        ];
        for req in reqs {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req);
            assert!(decode_request(&enc[..enc.len() - 1]).is_err());
            let mut noisy = enc.clone();
            noisy.push(0);
            assert!(decode_request(&noisy).is_err());
            // The traced form roundtrips request and context together.
            let ctx = wormtrace::TraceContext {
                trace_id: 0xABCD,
                parent_span: 17,
            };
            let traced = encode_request_traced(&req, ctx);
            assert_eq!(
                decode_request_traced(&traced).unwrap(),
                (req.clone(), Some(ctx))
            );
            // A bare request decodes through the traced entry point too,
            // with no context — old clients keep working.
            assert_eq!(decode_request_traced(&enc).unwrap(), (req, None));
            // The context-free decoder rejects envelopes (old servers).
            assert!(decode_request(&traced).is_err());
            for cut in 0..traced.len() {
                assert!(decode_request_traced(&traced[..cut]).is_err());
            }
        }
    }

    #[test]
    fn envelope_cannot_nest_and_garbage_context_rejected() {
        let inner = encode_request_traced(
            &NetRequest::Stats,
            wormtrace::TraceContext {
                trace_id: 1,
                parent_span: 0,
            },
        );
        // An envelope wrapping an envelope is malformed.
        let mut w = WireWriter::tagged(REQ_TAG);
        w.put_u8(9);
        w.put_u64(2);
        w.put_u64(0);
        w.put_bytes(&inner);
        assert!(decode_request_traced(&w.finish()).is_err());
        // An envelope around garbage inner bytes is malformed.
        let mut w = WireWriter::tagged(REQ_TAG);
        w.put_u8(9);
        w.put_u64(2);
        w.put_u64(0);
        w.put_bytes(b"not a request");
        assert!(decode_request_traced(&w.finish()).is_err());
        // Trailing bytes after the envelope are rejected.
        let mut padded = encode_request_traced(
            &NetRequest::Tick,
            wormtrace::TraceContext {
                trace_id: 3,
                parent_span: 4,
            },
        );
        padded.push(0);
        assert!(decode_request_traced(&padded).is_err());
    }

    #[test]
    fn traces_response_roundtrips() {
        let trace = wormtrace::CapturedTrace {
            trace_id: 9,
            trigger: wormtrace::TraceTrigger::Error,
            total_ns: 1234,
            truncated_spans: 0,
            spans: vec![wormtrace::SpanRecord {
                span_id: 1,
                parent_span: 0,
                op: "net.request".into(),
                plane: wormtrace::Plane::Net,
                start_ns: 0,
                duration_ns: 1234,
                sn: None,
                ok: false,
            }],
        };
        let enc = encode_response(&NetResponse::Traces(vec![trace.clone()]));
        match decode_response(&enc).unwrap() {
            NetResponse::Traces(got) => assert_eq!(got, vec![trace]),
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(decode_response(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn hostile_write_count_is_bounded() {
        let mut w = WireWriter::tagged("wormnet.req.v1");
        w.put_u8(1);
        w.put_u32(u32::MAX);
        assert!(decode_request(&w.finish()).is_err());
    }

    #[test]
    fn unknown_opcode_and_tag_rejected() {
        let mut w = WireWriter::tagged("wormnet.req.v1");
        w.put_u8(200);
        assert!(decode_request(&w.finish()).is_err());
        let mut w = WireWriter::tagged("wormnet.resp.v2");
        w.put_u8(3);
        assert!(decode_response(&w.finish()).is_err());
        assert!(decode_request(b"").is_err());
        assert!(decode_response(b"").is_err());
    }

    #[test]
    fn stats_response_roundtrips() {
        let reg = wormtrace::Registry::new();
        reg.op("server.read").record(512, true);
        reg.counter("net.frames_in").add(7);
        let enc = encode_response(&NetResponse::Stats(reg.snapshot()));
        match decode_response(&enc).unwrap() {
            NetResponse::Stats(s) => {
                assert_eq!(s, reg.snapshot());
                assert_eq!(s.counter("net.frames_in"), 7);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(decode_response(&enc[..enc.len() - 1]).is_err());
    }

    fn tiny_key(n: u8) -> wormcrypt::RsaPublicKey {
        // Structurally valid key material (decode only checks non-zero).
        let mut raw = Vec::new();
        raw.extend_from_slice(&1u32.to_be_bytes());
        raw.push(n);
        raw.extend_from_slice(&1u32.to_be_bytes());
        raw.push(3);
        wormcrypt::RsaPublicKey::from_bytes(&raw).unwrap()
    }

    fn sample_shard_keys(lanes: u8) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)> {
        (0..lanes)
            .map(|i| {
                let weak_cert = WeakKeyCert {
                    key: tiny_key(10 + i),
                    max_sig_expiry: scpu::Timestamp::from_millis(u64::from(i) * 100),
                    sig: sig(i),
                };
                let keys = DeviceKeys {
                    data_hash: strongworm::DataHashScheme::Multiset,
                    sign: tiny_key(20 + i),
                    delete: tiny_key(40 + i),
                    weak_cert: weak_cert.clone(),
                };
                (keys, vec![weak_cert])
            })
            .collect()
    }

    #[test]
    fn composite_head_response_roundtrips() {
        let heads = vec![
            strongworm::proofs::HeadCert {
                sn_current: SerialNumber(3),
                issued_at: scpu::Timestamp::from_millis(50),
                sig: sig(7),
            },
            strongworm::proofs::HeadCert {
                sn_current: SerialNumber(SerialNumber::lane_origin(1) + 2),
                issued_at: scpu::Timestamp::from_millis(50),
                sig: sig(8),
            },
        ];
        let composite = CompositeHead {
            binding: strongworm::CompositeBinding {
                shard_count: 2,
                root: strongworm::codec::composite_root(&heads),
                issued_at: scpu::Timestamp::from_millis(51),
                sig: sig(9),
            },
            heads,
        };
        let enc = encode_response(&NetResponse::CompositeHead(composite.clone()));
        match decode_response(&enc).unwrap() {
            NetResponse::CompositeHead(got) => assert_eq!(got, composite),
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(decode_response(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn shard_keys_response_roundtrips() {
        for lanes in [0u8, 1, 3] {
            let shards = sample_shard_keys(lanes);
            let enc = encode_response(&NetResponse::ShardKeys(shards.clone()));
            match decode_response(&enc).unwrap() {
                NetResponse::ShardKeys(got) => {
                    assert_eq!(got.len(), shards.len());
                    for ((gk, gc), (wk, wc)) in got.iter().zip(shards.iter()) {
                        assert_eq!(gk.sign.fingerprint(), wk.sign.fingerprint());
                        assert_eq!(gk.delete.fingerprint(), wk.delete.fingerprint());
                        assert_eq!(gc, wc);
                    }
                }
                other => panic!("wrong variant: {other:?}"),
            }
            if lanes > 0 {
                assert!(decode_response(&enc[..enc.len() - 1]).is_err());
            }
        }
    }

    #[test]
    fn hostile_shard_keys_count_is_bounded() {
        // A hostile shard count must not drive unbounded allocation.
        let mut w = WireWriter::tagged("wormnet.resp.v1");
        w.put_u8(8);
        w.put_u32(u32::MAX);
        assert!(decode_response(&w.finish()).is_err());
        // Same for the nested weak-cert count.
        let (keys, _) = sample_shard_keys(1).pop().unwrap();
        let mut w = WireWriter::tagged("wormnet.resp.v1");
        w.put_u8(8);
        w.put_count(1);
        w.put_bytes(&encode_device_keys(&keys));
        w.put_u32(u32::MAX);
        assert!(decode_response(&w.finish()).is_err());
    }

    #[test]
    fn audit_events_response_roundtrips() {
        let page = wormaudit::AuditPage {
            events: vec![wormaudit::AuditEvent {
                seq: 3,
                at_ms: 9_000,
                class: wormaudit::AuditClass::TamperDetected,
                sn: Some(8),
                detail: "hash mismatch".into(),
                prev_hash: [7; 32],
            }],
            anchors: vec![wormaudit::AuditAnchor {
                seq: 3,
                chain_hash: [9; 32],
                issued_at_ms: 9_100,
                key_id: [2; 8],
                sig: vec![5; 64],
            }],
        };
        let enc = encode_response(&NetResponse::AuditEvents(page.clone()));
        match decode_response(&enc).unwrap() {
            NetResponse::AuditEvents(got) => assert_eq!(got, page),
            other => panic!("wrong variant: {other:?}"),
        }
        for cut in 0..enc.len() {
            assert!(decode_response(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_audit_page_counts_are_bounded() {
        // A hostile event count inside the nested page must not drive
        // unbounded allocation; the nested codec's own cap rejects it
        // and the failure surfaces as this layer's wire error.
        let mut inner = strongworm::wire::WireWriter::tagged("wormaudit.events.v1");
        inner.put_u32(u32::MAX);
        let mut w = WireWriter::tagged("wormnet.resp.v1");
        w.put_u8(9);
        w.put_bytes(&inner.finish());
        assert!(decode_response(&w.finish()).is_err());
    }

    #[test]
    fn error_response_roundtrips() {
        let enc = encode_response(&NetResponse::Error {
            code: CODE_BAD_REQUEST,
            message: "no".into(),
        });
        match decode_response(&enc).unwrap() {
            NetResponse::Error { code, message } => {
                assert_eq!(code, CODE_BAD_REQUEST);
                assert_eq!(message, "no");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
