//! Network serving layer for the Strong WORM server.
//!
//! The paper's deployment model (§3, §4.1) is a *service*: clients in
//! branch offices write and read compliance records against a WORM box
//! they do not trust, and every response carries SCPU-signed evidence
//! the client checks locally. This crate supplies the missing transport:
//! a length-prefixed framed request/response protocol over TCP whose
//! payloads reuse the canonical encoders in [`strongworm::codec`], so
//! the bytes a verifier checks over the network are byte-identical to
//! the bytes it would check in-process.
//!
//! # Trust model
//!
//! The server — and the network between client and server — is
//! **untrusted**. Nothing in this crate authenticates the transport: no
//! TLS, no MACs on frames. That is deliberate, not an omission. Every
//! statement a client acts on (VRDs, head certificates, deletion
//! proofs) is signed by the SCPU and verified client-side with
//! [`strongworm::Verifier`]; an attacker who owns the wire can delay or
//! deny service but cannot forge record contents, hide recent writes,
//! or fake rightful deletion (Theorems 1 and 2). Tampering with a
//! response in flight surfaces as a [`strongworm::VerifyError`], which
//! the tests here exercise with a byte-flipping proxy.
//!
//! # Architecture
//!
//! - [`frame`]: `u32` big-endian length-prefixed frames with a hard
//!   size cap, so a hostile peer cannot drive unbounded allocation.
//! - [`protocol`]: [`NetRequest`]/[`NetResponse`] and their codecs,
//!   layered on [`strongworm::wire`].
//! - [`server`]: [`NetServer`], an event-driven front-end fronting an
//!   `Arc<WormServer>`. Each worker thread runs a readiness loop (the
//!   private `reactor` module, `poll(2)` via the vendored `netpoll`
//!   shim) over its share of the connections, so a handful of workers
//!   serve many more connections than threads. Requests on one
//!   connection may be pipelined; responses come back in request
//!   order. Mutations still funnel through the witness plane's mutex
//!   exactly as in-process callers do.
//! - [`client`]: [`RemoteWormClient`], which composes with
//!   [`strongworm::Verifier`] so every remote read is verified
//!   end-to-end, and whose [`client::Pipeline`] mode keeps a window of
//!   requests in flight on one connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod frame;
pub mod protocol;
mod reactor;
pub mod server;

pub use client::{Pipeline, RemoteWormClient};
pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
pub use protocol::{NetRequest, NetResponse};
pub use server::{NetServer, NetServerConfig, WormBackend};

use strongworm::wire::WireError;
use strongworm::VerifyError;

/// Errors from the network layer, on either side of the wire.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
    /// A frame header announced a payload beyond the configured cap.
    FrameTooLarge {
        /// Announced payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// A frame payload failed to decode.
    Wire(WireError),
    /// The peer violated the protocol (wrong response type, bad tag).
    Protocol(&'static str),
    /// The server reported an error executing the request.
    Remote {
        /// Numeric error class (see [`protocol::error_code`] mapping).
        code: u8,
        /// Human-readable server-side message. Untrusted — display
        /// only, never parse.
        message: String,
    },
    /// The response decoded but failed client-side verification — the
    /// signal that the host or the wire tampered with it.
    Verify(VerifyError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket failure: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte cap")
            }
            NetError::Truncated => write!(f, "connection closed mid-frame"),
            NetError::Wire(e) => write!(f, "frame payload corrupt: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::Verify(e) => write!(f, "response failed verification: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<VerifyError> for NetError {
    fn from(e: VerifyError) -> Self {
        NetError::Verify(e)
    }
}
