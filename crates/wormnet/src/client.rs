//! Remote client: speaks the framed protocol and verifies everything.
//!
//! [`RemoteWormClient`] is a thin transport; the security argument
//! lives in [`strongworm::Verifier`], which this client composes with
//! so every remote read is checked end-to-end. A man-in-the-middle (or
//! the server itself) altering a response in flight surfaces as a
//! [`strongworm::VerifyError`], never as silently wrong data.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use scpu::Clock;
use strongworm::authority::{HoldCredential, ReleaseCredential};
use strongworm::firmware::{DeviceKeys, WeakKeyCert};
use strongworm::{
    CompositeHead, CompositeVerifier, ReadOutcome, ReadVerdict, RetentionPolicy, SerialNumber,
    Verifier, VerifyRead, WitnessMode,
};

use crate::frame::{append_frame, read_frame, write_frame, DEFAULT_MAX_FRAME};
use crate::protocol::{
    decode_response_shared, encode_request, encode_request_traced, NetRequest, NetResponse,
};
use crate::NetError;

/// A connected client session over one TCP stream.
///
/// Not `Sync`: one session serves one caller at a time. The default
/// methods are strictly request/response; [`RemoteWormClient::pipeline`]
/// opens a windowed mode that keeps several requests in flight on the
/// same connection (the server guarantees responses in request order).
/// Open one client per thread for concurrent load — sessions are
/// independent.
pub struct RemoteWormClient {
    stream: TcpStream,
    /// Buffered read half (a cloned handle of the same socket): frame
    /// headers and payloads arrive in few large reads instead of two
    /// syscalls per frame, which matters once pipelining has many
    /// responses back-to-back on the wire.
    reader: BufReader<TcpStream>,
    max_frame: u32,
    /// When set, every request is wrapped in a trace-context envelope
    /// (opcode 9) carrying a fresh client-minted trace id, so the
    /// server's span tree for the request is findable by that id.
    tracing: bool,
    last_trace_id: Option<u64>,
    /// Set when a [`Pipeline`] was dropped with responses still in
    /// flight: the stream holds replies to requests nobody will match
    /// up, so every subsequent call would read the wrong frame.
    desynced: bool,
}

impl RemoteWormClient {
    /// Connects with default timeouts (10 s read/write) and frame cap.
    ///
    /// # Errors
    ///
    /// Socket errors connecting or configuring the stream.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        Self::connect_with(addr, Duration::from_secs(10), DEFAULT_MAX_FRAME)
    }

    /// Connects with explicit socket timeout and frame cap.
    ///
    /// # Errors
    ///
    /// Socket errors connecting or configuring the stream.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
        max_frame: u32,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(64 << 10, stream.try_clone()?);
        Ok(RemoteWormClient {
            stream,
            reader,
            max_frame,
            tracing: false,
            last_trace_id: None,
            desynced: false,
        })
    }

    /// Enables (or disables) wire-propagated trace context. While on,
    /// each request carries a fresh trace id, retrievable afterwards
    /// via [`RemoteWormClient::last_trace_id`] to correlate with traces
    /// captured by the server's flight recorder.
    ///
    /// Requires a server that understands the opcode-9 envelope (this
    /// repo's `NetServer`); older servers reject enveloped requests as
    /// bad requests without dropping the connection.
    pub fn set_request_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace id sent with the most recent enveloped request, if
    /// any. `None` until a request is sent with tracing enabled.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.last_trace_id
    }

    /// Encodes a request, minting and recording a trace envelope when
    /// tracing is on. Shared by the call path and [`Pipeline`].
    fn next_request_bytes(&mut self, req: &NetRequest) -> Vec<u8> {
        if self.tracing {
            let ctx = wormtrace::TraceContext {
                trace_id: wormtrace::span::fresh_trace_id(),
                parent_span: 0,
            };
            self.last_trace_id = Some(ctx.trace_id);
            encode_request_traced(req, ctx)
        } else {
            encode_request(req)
        }
    }

    /// Fails fast on a session a dropped [`Pipeline`] left with
    /// unmatched responses in flight.
    fn check_sync(&self) -> Result<(), NetError> {
        if self.desynced {
            return Err(NetError::Protocol(
                "pipeline dropped with responses in flight; reconnect",
            ));
        }
        Ok(())
    }

    fn call(&mut self, req: &NetRequest) -> Result<NetResponse, NetError> {
        self.check_sync()?;
        let encoded = self.next_request_bytes(req);
        if let Err(e) = write_frame(&mut self.stream, &encoded, self.max_frame) {
            // A write that dies on a broken connection may be racing a
            // courtesy error frame the server sent before closing (load
            // shed at admission sends CODE_BUSY, then hangs up). Drain
            // it so the caller sees *why* the server hung up instead of
            // a bare EPIPE; if there is nothing to read, surface the
            // original write error.
            if let Ok(Some(payload)) = read_frame(&mut self.reader, self.max_frame) {
                let payload = bytes::Bytes::from(payload);
                if let Ok(NetResponse::Error { code, message }) = decode_response_shared(&payload) {
                    return Err(NetError::Remote { code, message });
                }
            }
            return Err(e);
        }
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or(NetError::Truncated)?;
        let payload = bytes::Bytes::from(payload);
        let resp = decode_response_shared(&payload)?;
        if let NetResponse::Error { code, message } = resp {
            return Err(NetError::Remote { code, message });
        }
        Ok(resp)
    }

    /// Opens a pipelined batch session over this connection: up to
    /// `depth` requests stay in flight before the oldest response is
    /// collected, amortizing the round trip the strict call path pays
    /// per request. The server answers in request order, so
    /// [`Pipeline::send`] / [`Pipeline::recv`] pair responses to
    /// requests by position alone.
    ///
    /// Unlike the typed convenience methods, the pipeline returns raw
    /// [`NetResponse`] values — including `Error` responses, which are
    /// *not* turned into `Err` — because a batch may mix request kinds.
    /// Callers match and verify each response themselves.
    ///
    /// Dropping a `Pipeline` with responses still in flight poisons the
    /// session (subsequent calls fail with a protocol error) — the
    /// stream would otherwise hand old responses to new requests. Call
    /// [`Pipeline::finish`] to drain cleanly.
    pub fn pipeline(&mut self, depth: usize) -> Pipeline<'_> {
        Pipeline {
            depth: depth.max(1),
            outbuf: Vec::new(),
            in_flight: 0,
            client: self,
        }
    }

    /// Commits a virtual record with the server's default witness tier
    /// semantics ([`WitnessMode::Strong`]).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn write(
        &mut self,
        records: &[&[u8]],
        policy: RetentionPolicy,
    ) -> Result<SerialNumber, NetError> {
        self.write_with(records, policy, 0, WitnessMode::Strong)
    }

    /// Commits a virtual record with explicit flags and witness tier.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn write_with(
        &mut self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, NetError> {
        let records = records
            .iter()
            .map(|r| bytes::Bytes::from(r.to_vec()))
            .collect();
        match self.call(&NetRequest::Write {
            records,
            policy,
            flags,
            witness,
        })? {
            NetResponse::Written { sn } => Ok(sn),
            _ => Err(NetError::Protocol("expected Written response")),
        }
    }

    /// Reads a record *without* verifying the outcome. Prefer
    /// [`RemoteWormClient::read_verified`]; this exists for callers
    /// that verify in a separate step (or deliberately test tampering).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn read_raw(&mut self, sn: SerialNumber) -> Result<ReadOutcome, NetError> {
        match self.call(&NetRequest::Read { sn })? {
            NetResponse::Outcome(outcome) => Ok(outcome),
            _ => Err(NetError::Protocol("expected Outcome response")),
        }
    }

    /// Reads a record and verifies the outcome end-to-end: signatures,
    /// data hash, freshness, deletion evidence. Any in-flight or
    /// server-side tampering fails here as [`NetError::Verify`].
    ///
    /// Accepts any [`VerifyRead`] implementation: a single-shard
    /// [`Verifier`] or a [`CompositeVerifier`], which routes the check
    /// to the SN's owning shard lane — so the same call verifies reads
    /// against sharded deployments transparently.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-reported error, or verification
    /// failure.
    pub fn read_verified<V: VerifyRead + ?Sized>(
        &mut self,
        sn: SerialNumber,
        verifier: &V,
    ) -> Result<(ReadVerdict, ReadOutcome), NetError> {
        let outcome = self.read_raw(sn)?;
        let verdict = verifier.verify_read(sn, &outcome)?;
        Ok((verdict, outcome))
    }

    /// Drives retention maintenance for `sn` and returns the re-read
    /// outcome. WORM semantics: only a record past its retention
    /// deadline (and free of holds) is actually deleted; verify the
    /// returned outcome to learn — with proof — which state holds.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn delete(&mut self, sn: SerialNumber) -> Result<ReadOutcome, NetError> {
        match self.call(&NetRequest::Delete { sn })? {
            NetResponse::Outcome(outcome) => Ok(outcome),
            _ => Err(NetError::Protocol("expected Outcome response")),
        }
    }

    /// Places a litigation hold.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error (e.g. a bad
    /// credential signature).
    pub fn lit_hold(&mut self, credential: HoldCredential) -> Result<(), NetError> {
        match self.call(&NetRequest::LitHold(credential))? {
            NetResponse::Ack => Ok(()),
            _ => Err(NetError::Protocol("expected Ack response")),
        }
    }

    /// Releases a litigation hold.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn lit_release(&mut self, credential: ReleaseCredential) -> Result<(), NetError> {
        match self.call(&NetRequest::LitRelease(credential))? {
            NetResponse::Ack => Ok(()),
            _ => Err(NetError::Protocol("expected Ack response")),
        }
    }

    /// Drives due device alarms (Retention Monitor, head heartbeat).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn tick(&mut self) -> Result<(), NetError> {
        match self.call(&NetRequest::Tick)? {
            NetResponse::Ack => Ok(()),
            _ => Err(NetError::Protocol("expected Ack response")),
        }
    }

    /// Polls the server's observability snapshot: every registered
    /// counter, gauge, and per-op latency histogram, frozen at one
    /// instant. Stats are diagnostic only — nothing in the snapshot is
    /// signed, so it is *not* compliance evidence; use verified reads
    /// for that.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn stats(&mut self) -> Result<wormtrace::StatsSnapshot, NetError> {
        match self.call(&NetRequest::Stats)? {
            NetResponse::Stats(snapshot) => Ok(snapshot),
            _ => Err(NetError::Protocol("expected Stats response")),
        }
    }

    /// Fetches the server's flight recorder contents: the span trees of
    /// recent requests that errored or exceeded the slow threshold,
    /// newest last. Like stats, traces are diagnostic only.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn traces(&mut self) -> Result<Vec<wormtrace::CapturedTrace>, NetError> {
        match self.call(&NetRequest::Traces)? {
            NetResponse::Traces(traces) => Ok(traces),
            _ => Err(NetError::Protocol("expected Traces response")),
        }
    }

    /// Fetches the device's published keys and all weak-key
    /// certificates. The bytes are untrusted until validated against
    /// CA-issued certificates (see
    /// [`strongworm::Verifier::from_certificates`]).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn fetch_keys(&mut self) -> Result<(DeviceKeys, Vec<WeakKeyCert>), NetError> {
        match self.call(&NetRequest::GetKeys)? {
            NetResponse::Keys { keys, weak_certs } => Ok((keys, weak_certs)),
            _ => Err(NetError::Protocol("expected Keys response")),
        }
    }

    /// Fetches keys and builds a [`Verifier`] from them, registering
    /// every published weak-key certificate.
    ///
    /// Convenience for tests and trusted-bootstrap deployments; when
    /// the server is not trusted to introduce its own keys, fetch the
    /// CA certificates out of band and use
    /// [`Verifier::from_certificates`] instead.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-reported error, or an internally
    /// inconsistent key bundle.
    pub fn bootstrap_verifier(
        &mut self,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Verifier, NetError> {
        let (keys, weak_certs) = self.fetch_keys()?;
        let mut verifier = Verifier::new(&keys, tolerance, clock)?;
        for cert in weak_certs {
            verifier.add_weak_cert(cert)?;
        }
        Ok(verifier)
    }

    /// Fetches every shard's published keys and weak-key certificates,
    /// in lane order. A single-SCPU server answers with one lane.
    /// Untrusted until validated, exactly like
    /// [`RemoteWormClient::fetch_keys`].
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    #[allow(clippy::type_complexity)]
    pub fn fetch_shard_keys(&mut self) -> Result<Vec<(DeviceKeys, Vec<WeakKeyCert>)>, NetError> {
        match self.call(&NetRequest::GetShardKeys)? {
            NetResponse::ShardKeys(shards) => Ok(shards),
            _ => Err(NetError::Protocol("expected ShardKeys response")),
        }
    }

    /// Fetches one page of the server's tamper-evident audit journal:
    /// events with `seq >= from_seq` (at most `max_events`, further
    /// clamped by the server's page cap) plus the SCPU anchors covering
    /// the window. Paginate by resuming from `last.seq + 1`.
    ///
    /// The page is *untrusted as returned* — replay it through
    /// [`wormaudit::verify_chain`] against independently validated
    /// device keys before believing any of it. A host that edits,
    /// drops, or reorders events breaks the hash chain or the anchor
    /// signatures, and the replay reports the first divergence.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn audit_events(
        &mut self,
        from_seq: u64,
        max_events: u32,
    ) -> Result<wormaudit::AuditPage, NetError> {
        match self.call(&NetRequest::FetchAuditEvents {
            from_seq,
            max_events,
        })? {
            NetResponse::AuditEvents(page) => Ok(page),
            _ => Err(NetError::Protocol("expected AuditEvents response")),
        }
    }

    /// Fetches the deployment's composite freshness head *without*
    /// verifying it. Prefer
    /// [`RemoteWormClient::composite_head_verified`]; this exists for
    /// callers that verify separately (or deliberately test tampering).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported error.
    pub fn composite_head_raw(&mut self) -> Result<CompositeHead, NetError> {
        match self.call(&NetRequest::GetCompositeHead)? {
            NetResponse::CompositeHead(composite) => Ok(composite),
            _ => Err(NetError::Protocol("expected CompositeHead response")),
        }
    }

    /// Fetches the composite freshness head and verifies it end-to-end:
    /// the coordinator's binding signature, the folded root, shard
    /// count, freshness, and every per-shard head certificate. A host
    /// hiding a shard, splicing heads from different instants, or
    /// doctoring the root fails here as [`NetError::Verify`] — the
    /// connection itself stays usable.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-reported error, or verification
    /// failure.
    pub fn composite_head_verified(
        &mut self,
        verifier: &CompositeVerifier,
    ) -> Result<CompositeHead, NetError> {
        let composite = self.composite_head_raw()?;
        verifier.verify_composite(&composite)?;
        Ok(composite)
    }

    /// Fetches per-shard keys and builds a [`CompositeVerifier`] over
    /// them, registering every published weak-key certificate per lane.
    ///
    /// Convenience for tests and trusted-bootstrap deployments, with
    /// the same caveat as [`RemoteWormClient::bootstrap_verifier`]:
    /// when the server is not trusted to introduce its own keys, fetch
    /// CA certificates out of band instead.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-reported error, or an internally
    /// inconsistent key bundle.
    pub fn bootstrap_composite_verifier(
        &mut self,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<CompositeVerifier, NetError> {
        let mut shards = Vec::new();
        for (keys, weak_certs) in self.fetch_shard_keys()? {
            let mut verifier = Verifier::new(&keys, tolerance, clock.clone())?;
            for cert in weak_certs {
                verifier.add_weak_cert(cert)?;
            }
            shards.push(verifier);
        }
        Ok(CompositeVerifier::new(shards))
    }
}

/// A windowed, pipelined request batch over a [`RemoteWormClient`],
/// created by [`RemoteWormClient::pipeline`].
///
/// Frames queue locally and flush in coalesced writes; the server
/// answers in request order, so responses pair with requests by
/// position. The strict call path pays a full round trip per request;
/// a pipeline at depth *d* keeps *d* requests in flight and pays one
/// round trip per *window*.
pub struct Pipeline<'c> {
    depth: usize,
    /// Encoded frames not yet pushed to the socket.
    outbuf: Vec<u8>,
    in_flight: usize,
    client: &'c mut RemoteWormClient,
}

impl Pipeline<'_> {
    /// Queues one request. While fewer than `depth` requests are in
    /// flight this is purely local and returns `Ok(None)`; once the
    /// window is full, queued frames flush and the *oldest* in-flight
    /// response is collected and returned, keeping the window exactly
    /// `depth` deep.
    ///
    /// Server `Error` responses come back as `Ok(Some(Error { .. }))`,
    /// not `Err` — a batch may mix requests, and one request's failure
    /// does not disturb its neighbours.
    ///
    /// # Errors
    ///
    /// Transport failures, an over-cap request frame (the request is
    /// not queued), or an undecodable response.
    pub fn send(&mut self, req: &NetRequest) -> Result<Option<NetResponse>, NetError> {
        self.client.check_sync()?;
        let encoded = self.client.next_request_bytes(req);
        append_frame(&mut self.outbuf, &encoded, self.client.max_frame)?;
        self.in_flight += 1;
        if self.in_flight <= self.depth {
            return Ok(None);
        }
        self.recv()
    }

    /// Requests sent (or queued) whose responses are not yet collected.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Toggles wire trace-context envelopes for frames sent *after*
    /// this call. Each frame is encoded at send time, so a batch may
    /// interleave traced and untraced frames freely.
    pub fn set_request_tracing(&mut self, on: bool) {
        self.client.tracing = on;
    }

    /// The trace id minted for the most recent enveloped frame (see
    /// [`RemoteWormClient::last_trace_id`]).
    pub fn last_trace_id(&self) -> Option<u64> {
        self.client.last_trace_id
    }

    /// Pushes every queued frame to the socket in one coalesced write,
    /// without waiting for any response.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn flush(&mut self) -> Result<(), NetError> {
        if !self.outbuf.is_empty() {
            use std::io::Write as _;
            self.client.stream.write_all(&self.outbuf)?;
            self.outbuf.clear();
        }
        Ok(())
    }

    /// Collects the oldest in-flight response, flushing queued frames
    /// first. `Ok(None)` when nothing is in flight.
    ///
    /// # Errors
    ///
    /// Transport failures or an undecodable response.
    pub fn recv(&mut self) -> Result<Option<NetResponse>, NetError> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        self.flush()?;
        let payload = read_frame(&mut self.client.reader, self.client.max_frame)?
            .ok_or(NetError::Truncated)?;
        // The frame is consumed whether or not it decodes: the window
        // position is spent either way.
        self.in_flight -= 1;
        let payload = bytes::Bytes::from(payload);
        Ok(Some(decode_response_shared(&payload)?))
    }

    /// Drains every outstanding response, in request order, and closes
    /// the batch cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures or an undecodable response. The batch is
    /// dropped mid-drain in that case, poisoning the session (see
    /// [`RemoteWormClient::pipeline`]).
    pub fn finish(mut self) -> Result<Vec<NetResponse>, NetError> {
        let mut responses = Vec::with_capacity(self.in_flight);
        while let Some(resp) = self.recv()? {
            responses.push(resp);
        }
        Ok(responses)
    }
}

impl Drop for Pipeline<'_> {
    fn drop(&mut self) {
        if self.in_flight > 0 {
            self.client.desynced = true;
        }
    }
}
