//! Event-driven TCP front-end for any [`WormBackend`].
//!
//! The network layer adds no trust: it is part of the untrusted host.
//! Serving is a small reactor (see [`crate::reactor`]): each worker
//! thread runs a readiness loop over *all* the connections assigned to
//! it — `poll(2)` via the vendored [`netpoll`] shim — so N workers
//! serve M ≫ N connections fairly instead of each worker owning one
//! connection for its lifetime. Requests on one connection may be
//! pipelined; responses return in request order, with decode batched
//! from a per-connection read buffer and flushes coalesced per
//! readiness burst.
//!
//! Workers call straight into the fronted facade — a single
//! [`WormServer`] or a sharded [`ShardedWormServer`] — so concurrent
//! connections exercise the read plane in parallel while mutations
//! serialize per witness plane, exactly the concurrency discipline
//! in-process callers get. Against a sharded backend, writes fan out
//! round-robin across shard lanes and only same-shard writes contend.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender, TrySendError};
use strongworm::authority::{HoldCredential, ReleaseCredential};
use strongworm::firmware::{DeviceKeys, WeakKeyCert};
use strongworm::{
    CompositeHead, ReadOutcome, RetentionPolicy, SerialNumber, ShardedWormServer, WitnessMode,
    WormError, WormServer,
};
use wormstore::BlockDevice;

use crate::frame::{write_frame, DEFAULT_MAX_FRAME};
use crate::protocol::{
    decode_request_traced, encode_response, error_code, NetRequest, NetResponse, CODE_BAD_REQUEST,
    CODE_BUSY,
};
use crate::reactor;
use crate::NetError;

/// The server-side surface [`NetServer`] fronts.
///
/// Implemented by the single-SCPU [`WormServer`] and by the sharded
/// facade [`ShardedWormServer`], so one network layer serves both
/// deployment shapes. A single server answers the shard-aware requests
/// (`GetCompositeHead`, `GetShardKeys`) with degenerate one-shard
/// forms, so clients need not know the deployment shape in advance.
pub trait WormBackend: Send + Sync {
    /// Commits a virtual record with explicit flags and witness tier.
    ///
    /// # Errors
    ///
    /// Store, device, or firmware failures on the owning shard.
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError>;

    /// Reads a record by serial number, host-only.
    ///
    /// # Errors
    ///
    /// Routing failures (sharded backends) or store failures.
    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError>;

    /// Drives due device alarms on every SCPU.
    ///
    /// # Errors
    ///
    /// Device or firmware failures.
    fn tick(&self) -> Result<(), WormError>;

    /// Places a litigation hold, routed by the credential's SN.
    ///
    /// # Errors
    ///
    /// Routing, credential, or firmware failures.
    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError>;

    /// Releases a litigation hold, routed by the credential's SN.
    ///
    /// # Errors
    ///
    /// Routing, credential, or firmware failures.
    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError>;

    /// The coordinator device's published keys.
    fn keys(&self) -> DeviceKeys;

    /// All weak-key certificates the coordinator has issued so far.
    fn weak_certs(&self) -> Vec<WeakKeyCert>;

    /// The composite freshness head over every shard lane.
    ///
    /// # Errors
    ///
    /// Device or firmware failures while refreshing heads or signing
    /// the binding.
    fn composite_head(&self) -> Result<CompositeHead, WormError>;

    /// Every shard's published keys and weak-key certificates, in lane
    /// order.
    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)>;

    /// A point-in-time snapshot of every registered instrument.
    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot;

    /// One page of the tamper-evident audit journal: events with
    /// `seq >= from_seq`, at most `max_events` (further clamped by the
    /// journal's page cap), plus the SCPU anchors covering the window.
    fn audit_page(&self, from_seq: u64, max_events: usize) -> wormaudit::AuditPage;

    /// The trace registry the network layer registers its instruments
    /// into (and whose flight recorder serves `Traces` requests).
    fn trace(&self) -> &Arc<wormtrace::Registry>;
}

impl<D: BlockDevice> WormBackend for WormServer<D> {
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError> {
        WormServer::write_with(self, records, policy, flags, witness)
    }

    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError> {
        WormServer::read(self, sn)
    }

    fn tick(&self) -> Result<(), WormError> {
        WormServer::tick(self)
    }

    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError> {
        WormServer::lit_hold(self, credential)
    }

    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError> {
        WormServer::lit_release(self, credential)
    }

    fn keys(&self) -> DeviceKeys {
        WormServer::keys(self).clone()
    }

    fn weak_certs(&self) -> Vec<WeakKeyCert> {
        WormServer::weak_certs(self)
    }

    fn composite_head(&self) -> Result<CompositeHead, WormError> {
        WormServer::composite_head(self)
    }

    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)> {
        vec![(WormServer::keys(self).clone(), WormServer::weak_certs(self))]
    }

    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot {
        WormServer::stats_snapshot(self)
    }

    fn audit_page(&self, from_seq: u64, max_events: usize) -> wormaudit::AuditPage {
        WormServer::audit(self).page(from_seq, max_events)
    }

    fn trace(&self) -> &Arc<wormtrace::Registry> {
        WormServer::trace(self)
    }
}

impl<D: BlockDevice> WormBackend for ShardedWormServer<D> {
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError> {
        ShardedWormServer::write_with(self, records, policy, flags, witness)
    }

    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError> {
        ShardedWormServer::read(self, sn)
    }

    fn tick(&self) -> Result<(), WormError> {
        ShardedWormServer::tick(self)
    }

    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError> {
        ShardedWormServer::lit_hold(self, credential)
    }

    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError> {
        ShardedWormServer::lit_release(self, credential)
    }

    fn keys(&self) -> DeviceKeys {
        self.coordinator().keys().clone()
    }

    fn weak_certs(&self) -> Vec<WeakKeyCert> {
        self.coordinator().weak_certs()
    }

    fn composite_head(&self) -> Result<CompositeHead, WormError> {
        ShardedWormServer::composite_head(self)
    }

    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)> {
        ShardedWormServer::shard_keys(self)
    }

    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot {
        ShardedWormServer::stats_snapshot(self)
    }

    fn audit_page(&self, from_seq: u64, max_events: usize) -> wormaudit::AuditPage {
        // All lanes chain into one shared journal; anchors may carry
        // any lane's key fingerprint.
        ShardedWormServer::audit(self).page(from_seq, max_events)
    }

    fn trace(&self) -> &Arc<wormtrace::Registry> {
        ShardedWormServer::trace(self)
    }
}

/// Tuning knobs for [`NetServer`].
#[derive(Clone, Copy, Debug)]
pub struct NetServerConfig {
    /// Worker threads, each running a readiness event loop over its
    /// share of the connections. Connections are multiplexed, not
    /// owned: a worker interleaves every connection assigned to it.
    pub workers: usize,
    /// Hard cap on request frame size; oversized announcements are
    /// rejected before allocation and the connection is dropped.
    pub max_frame: u32,
    /// A connection with no inbound bytes for this long is closed.
    pub read_timeout: Duration,
    /// A connection whose pending output makes no progress for this
    /// long (peer not draining) is closed.
    pub write_timeout: Duration,
    /// Per-worker hand-off inbox bound: connections accepted but not
    /// yet swept into a worker's set. A full inbox falls through to the
    /// next worker; when every inbox is full the acceptor sheds the
    /// connection with a [`CODE_BUSY`] frame.
    pub queue_depth: usize,
    /// Server-wide cap on concurrently open connections; beyond it the
    /// acceptor sheds new arrivals with a [`CODE_BUSY`] frame before
    /// closing them, so clients can tell load-shedding from a crash.
    pub max_connections: usize,
    /// Latency at/above which a successful request's span tree is kept
    /// by the flight recorder (applied to the fronted server's trace
    /// registry at bind; errors always capture). Also runtime-settable
    /// via `Registry::flight().set_slow_threshold_ns`.
    pub slow_trace_threshold: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            queue_depth: 64,
            max_connections: 1024,
            slow_trace_threshold: Duration::from_millis(250),
        }
    }
}

/// How long blocked loops wait in `poll(2)` before re-checking the
/// shutdown flag (wakers usually cut this short).
pub(crate) const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Frame header size added to payload length for byte accounting.
pub(crate) const FRAME_HEADER_BYTES: u64 = 4;

/// Consecutive non-`WouldBlock` accept failures before the acceptor
/// backs off. A lone transient failure (`ECONNABORTED`, a blip of
/// `EMFILE`) must not add latency to the next accept; only a
/// persistent failure streak earns a sleep.
const ACCEPT_ERROR_STREAK: u32 = 16;

/// How long the acceptor spends pushing a [`CODE_BUSY`] frame to a
/// connection it is shedding. Best effort: a peer that will not take
/// one small frame promptly forfeits the courtesy.
const BUSY_FRAME_TIMEOUT: Duration = Duration::from_millis(100);

/// Net-layer instrument handles into the fronted server's trace
/// registry, resolved once at bind so per-frame accounting is pure
/// atomics.
#[derive(Clone)]
pub(crate) struct NetStats {
    pub(crate) trace: Arc<wormtrace::Registry>,
    pub(crate) request: Arc<wormtrace::OpStats>,
    pub(crate) conn_accepted: Arc<wormtrace::Counter>,
    pub(crate) conn_shed: Arc<wormtrace::Counter>,
    pub(crate) frames_in: Arc<wormtrace::Counter>,
    pub(crate) frames_out: Arc<wormtrace::Counter>,
    pub(crate) bytes_in: Arc<wormtrace::Counter>,
    pub(crate) bytes_out: Arc<wormtrace::Counter>,
    pub(crate) timeouts: Arc<wormtrace::Counter>,
    pub(crate) accept_errors: Arc<wormtrace::Counter>,
    pub(crate) queue_depth: Arc<wormtrace::Gauge>,
    pub(crate) queue_peak: Arc<wormtrace::Gauge>,
    pub(crate) conns_open: Arc<wormtrace::Gauge>,
    pub(crate) traces_captured: Arc<wormtrace::Counter>,
}

impl NetStats {
    fn new(trace: Arc<wormtrace::Registry>) -> Self {
        NetStats {
            request: trace.op("net.request"),
            conn_accepted: trace.counter("net.conn_accepted"),
            conn_shed: trace.counter("net.conn_shed"),
            frames_in: trace.counter("net.frames_in"),
            frames_out: trace.counter("net.frames_out"),
            bytes_in: trace.counter("net.bytes_in"),
            bytes_out: trace.counter("net.bytes_out"),
            timeouts: trace.counter("net.timeouts"),
            accept_errors: trace.counter("net.accept_errors"),
            queue_depth: trace.gauge("net.queue_depth"),
            queue_peak: trace.gauge("net.queue_peak"),
            conns_open: trace.gauge("net.conns_open"),
            traces_captured: trace.counter("net.traces_captured"),
            trace,
        }
    }
}

/// A running network front-end. Dropping the handle leaks the threads;
/// call [`NetServer::shutdown`] for a graceful stop.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    /// One self-pipe writer per worker, so shutdown interrupts a
    /// mid-`poll` worker immediately instead of waiting out the poll
    /// timeout.
    wakers: Vec<Arc<netpoll::WakeWriter>>,
}

impl NetServer {
    /// Binds `addr` and starts the acceptor plus the worker event
    /// loops.
    ///
    /// # Errors
    ///
    /// Socket errors binding or configuring the listener; resource
    /// errors creating the worker wake pipes or threads.
    pub fn bind<B, A>(
        server: Arc<B>,
        addr: A,
        config: NetServerConfig,
    ) -> Result<NetServer, NetError>
    where
        B: WormBackend + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept; readiness comes from polling the
        // listener fd, so the loop observes the stop flag promptly
        // without busy-spinning.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        // Connections admitted and not yet closed, shared between the
        // acceptor (admission control) and workers (close accounting).
        let live = Arc::new(AtomicUsize::new(0));
        let stats = NetStats::new(Arc::clone(server.trace()));
        stats.trace.flight().set_slow_threshold_ns(
            u64::try_from(config.slow_trace_threshold.as_nanos()).unwrap_or(u64::MAX),
        );

        // Shared read-cache invalidation generation (see [`ReadCache`]).
        let cache_gen = Arc::new(AtomicU64::new(0));
        let mut txs: Vec<Sender<TcpStream>> = Vec::new();
        let mut wakers: Vec<Arc<netpoll::WakeWriter>> = Vec::new();
        let mut workers = Vec::new();
        for idx in 0..config.workers.max(1) {
            let (tx, rx) = bounded(config.queue_depth.max(1));
            let (wake_r, wake_w) = netpoll::wake_pipe()?;
            txs.push(tx);
            wakers.push(Arc::new(wake_w));
            let worker_stop = stop.clone();
            let server = server.clone();
            let served = served.clone();
            let stats = stats.clone();
            let live = live.clone();
            let cache = ReadCache::new(Arc::clone(&cache_gen));
            let handle = std::thread::Builder::new()
                .name(format!("wormnet-worker{idx}"))
                .spawn(move || {
                    reactor::worker_loop(
                        idx,
                        &rx,
                        &wake_r,
                        &worker_stop,
                        server.as_ref(),
                        &served,
                        &stats,
                        &live,
                        &config,
                        cache,
                    )
                })
                .map_err(|e| {
                    // Already-spawned workers see the flag and exit.
                    // ordering: one-shot shutdown flag (see `shutdown`).
                    stop.store(true, Ordering::SeqCst);
                    NetError::Io(e)
                })?;
            workers.push(handle);
        }

        let acceptor = {
            let acceptor_stop = stop.clone();
            let acceptor_wakers = wakers.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("wormnet-acceptor".to_string())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &txs,
                        &acceptor_wakers,
                        &acceptor_stop,
                        &stats,
                        &live,
                        &config,
                    )
                })
                .map_err(|e| {
                    // ordering: one-shot shutdown flag (see `shutdown`).
                    stop.store(true, Ordering::SeqCst);
                    for w in &wakers {
                        w.wake();
                    }
                    NetError::Io(e)
                })?
        };

        Ok(NetServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            served,
            wakers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests committed or served so far, across all workers.
    pub fn requests_served(&self) -> u64 {
        // ordering: monitoring counter; readers need a recent value, not an ordered one.
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, flushes responses already produced, closes
    /// every connection, and joins every thread. Requests already
    /// buffered but unserved when the flag lands are dropped with their
    /// connection — clients see EOF and treat it like any other
    /// connection loss against an untrusted transport.
    pub fn shutdown(mut self) {
        // ordering: one-shot shutdown flag on a cold path; SeqCst costs nothing here and
        // keeps the store/poll pairing obvious without auditing an Acquire/Release chain.
        self.stop.store(true, Ordering::SeqCst);
        // Acceptor first, so no new connections race into worker
        // inboxes after the workers drain them.
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for w in &self.wakers {
            w.wake();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Accepts connections as the listener becomes readable, applies
/// admission control, and hands admitted connections to workers
/// round-robin.
fn accept_loop(
    listener: &TcpListener,
    txs: &[Sender<TcpStream>],
    wakers: &[Arc<netpoll::WakeWriter>],
    stop: &AtomicBool,
    stats: &NetStats,
    live: &AtomicUsize,
    config: &NetServerConfig,
) {
    let mut next = 0usize;
    let mut error_streak = 0u32;
    // ordering: polls the one-shot shutdown flag; SeqCst pairs with the store in
    // `shutdown` on a path that waits in `poll` anyway.
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                error_streak = 0;
                stats.conn_accepted.inc();
                admit(conn, txs, wakers, &mut next, stats, live, config);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Nothing pending: wait for listener readiness (or the
                // shutdown-poll bound), not a fixed sleep after which a
                // waiting SYN would still sit unserved.
                let mut fds = [netpoll::PollFd::new(listener.as_raw_fd(), netpoll::POLLIN)];
                let _ = netpoll::poll(&mut fds, Some(SHUTDOWN_POLL));
            }
            Err(_) => {
                stats.accept_errors.inc();
                error_streak = error_streak.saturating_add(1);
                // Transient failures (ECONNABORTED, a blip of EMFILE)
                // retry immediately; only a persistent streak backs off,
                // and never indefinitely.
                if error_streak >= ACCEPT_ERROR_STREAK {
                    std::thread::sleep(SHUTDOWN_POLL);
                }
            }
        }
    }
}

/// Admission control plus round-robin hand-off. Sheds — with a
/// [`CODE_BUSY`] frame — when the server is at its connection cap or
/// every worker inbox is full.
fn admit(
    conn: TcpStream,
    txs: &[Sender<TcpStream>],
    wakers: &[Arc<netpoll::WakeWriter>],
    next: &mut usize,
    stats: &NetStats,
    live: &AtomicUsize,
    config: &NetServerConfig,
) {
    // ordering: advisory admission counter — the acceptor is the only
    // incrementer and a momentarily stale read only lets the count
    // overshoot the cap by in-flight closes, which is acceptable.
    if live.load(Ordering::Relaxed) >= config.max_connections {
        shed_busy(conn, stats, config);
        return;
    }
    // ordering: advisory admission counter (see above).
    live.fetch_add(1, Ordering::Relaxed);
    let mut conn = conn;
    for step in 0..txs.len() {
        let i = (*next + step) % txs.len();
        let (Some(tx), Some(wake)) = (txs.get(i), wakers.get(i)) else {
            break;
        };
        match tx.try_send(conn) {
            Ok(()) => {
                stats.queue_depth.inc();
                let depth = stats.queue_depth.get();
                if depth > stats.queue_peak.get() {
                    stats.queue_peak.set(depth);
                }
                wake.wake();
                *next = (i + 1) % txs.len();
                return;
            }
            // A full (or, during shutdown, disconnected) inbox falls
            // through to the next worker.
            Err(TrySendError::Full(c) | TrySendError::Disconnected(c)) => conn = c,
        }
    }
    // ordering: advisory admission counter (see above).
    live.fetch_sub(1, Ordering::Relaxed);
    shed_busy(conn, stats, config);
}

/// Sends a best-effort [`CODE_BUSY`] error frame on a connection being
/// shed, then closes it — so a client can tell load-shedding from a
/// crash (silent EOF) and back off instead of failing hard.
fn shed_busy(conn: TcpStream, stats: &NetStats, config: &NetServerConfig) {
    stats.conn_shed.inc();
    // Load-shedding is security-relevant (a flood that sheds auditors
    // is how a dishonest host would hide): the registry's sink promotes
    // this event into the audit chain.
    stats.trace.emit(wormtrace::TraceEvent {
        op: "net.shed",
        plane: wormtrace::Plane::Net,
        sn: None,
        duration_ns: 0,
        ok: false,
    });
    let encoded = encode_response(&NetResponse::Error {
        code: CODE_BUSY,
        message: "server at capacity; back off and retry".to_string(),
    });
    let mut conn = conn;
    let _ = conn.set_write_timeout(Some(BUSY_FRAME_TIMEOUT));
    let _ = write_frame(&mut conn, &encoded, config.max_frame);
}

/// Cap on per-worker cached read responses; clear-when-full keeps the
/// footprint bounded without an eviction policy (at 4 KiB records the
/// cap bounds each worker's cache near 16 MiB, and a working set that
/// overflows it simply re-encodes).
const READ_CACHE_CAP: usize = 4096;

/// Per-worker cache of encoded responses for *untraced* reads.
///
/// A read response is a pure function of backend state: the VRD and
/// records were fixed at commit time and the head certificate only
/// changes on heartbeats — so between mutations the server re-reads,
/// re-encodes, and re-sends byte-identical responses. The cache keys on
/// the serial number and is invalidated wholesale by a shared state
/// generation that every mutating request (write, delete, hold,
/// release, tick) bumps; an entry only serves while the generation it
/// was filled under is still current. Traced requests bypass the cache
/// entirely (their spans must reflect real work), as does the whole
/// path while trace collection is enabled.
pub(crate) struct ReadCache {
    /// Shared mutation generation — bumped by any worker, read by all.
    generation: Arc<AtomicU64>,
    map: HashMap<SerialNumber, (u64, Vec<u8>)>,
}

impl ReadCache {
    pub(crate) fn new(generation: Arc<AtomicU64>) -> Self {
        ReadCache {
            generation,
            map: HashMap::new(),
        }
    }

    fn current(&self) -> u64 {
        // ordering: Acquire pairs with the Release bump in `invalidate`
        // so a hit can only serve bytes at least as fresh as the last
        // completed mutation.
        self.generation.load(Ordering::Acquire)
    }

    fn invalidate(&self) {
        // ordering: Release publishes the backend mutation (already
        // completed by `handle` on this thread) before the bumped
        // generation becomes visible to other workers' Acquire loads.
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn get(&self, sn: SerialNumber) -> Option<Vec<u8>> {
        let now = self.current();
        self.map
            .get(&sn)
            .filter(|(gen, _)| *gen == now)
            .map(|(_, bytes)| bytes.clone())
    }

    fn insert(&mut self, sn: SerialNumber, gen: u64, bytes: Vec<u8>) {
        if self.map.len() >= READ_CACHE_CAP && !self.map.contains_key(&sn) {
            self.map.clear();
        }
        self.map.insert(sn, (gen, bytes));
    }
}

/// Serves one already-parsed request frame: full per-request
/// accounting, tracing, dispatch, and encoding. Returns the encoded
/// response payload for the caller to frame into its write buffer.
pub(crate) fn respond<B: WormBackend>(
    server: &B,
    stats: &NetStats,
    served: &AtomicU64,
    payload: &[u8],
    cache: &mut ReadCache,
) -> Vec<u8> {
    stats.frames_in.inc();
    stats
        .bytes_in
        .add(payload.len() as u64 + FRAME_HEADER_BYTES);
    let timer = stats.trace.timer();
    let decoded = decode_request_traced(payload);
    let tracing_live = stats.trace.enabled();
    // Cache fast path: an untraced read while collection is off can be
    // answered from the bytes encoded last time (see [`ReadCache`]).
    if !tracing_live {
        if let Ok((NetRequest::Read { sn }, None)) = &decoded {
            if let Some(hit) = cache.get(*sn) {
                if let Some((ns, prior)) = stats.request.finish(timer, true) {
                    if prior % stats.trace.read_event_sample() == 0 {
                        stats.trace.emit(wormtrace::TraceEvent {
                            op: "net.request",
                            plane: wormtrace::Plane::Net,
                            sn: None,
                            duration_ns: ns,
                            ok: true,
                        });
                    }
                }
                // ordering: monitoring counter; no other memory is
                // published through it.
                served.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
    }
    // Snapshot *before* dispatch: a mutation racing with this read
    // bumps the generation past the snapshot, so the entry filled
    // below can never serve state older than that mutation.
    let gen_before = cache.current();
    let cache_sn = match &decoded {
        Ok((NetRequest::Read { sn }, None)) if !tracing_live => Some(*sn),
        _ => None,
    };
    let mutating = matches!(
        &decoded,
        Ok((
            NetRequest::Write { .. }
                | NetRequest::Delete { .. }
                | NetRequest::LitHold(_)
                | NetRequest::LitRelease(_)
                | NetRequest::Tick,
            _
        ))
    );
    let (resp, traced) = match decoded {
        // A trace is collected per request whenever the registry is
        // live: thread-attach the trace, open the root span, and
        // serve — every span the planes/SCPU/store open on this
        // thread lands under that root. Wire context (envelope
        // opcode 9) supplies the identity; bare requests root a
        // server-minted trace.
        Ok((req, ctx)) if stats.trace.enabled() => {
            let trace_id = ctx.map_or_else(wormtrace::span::fresh_trace_id, |c| c.trace_id);
            let base_parent = ctx.map_or(0, |c| c.parent_span);
            let active = Arc::new(wormtrace::ActiveTrace::new(trace_id));
            let scope = wormtrace::span::enter(Arc::clone(&active), base_parent);
            let root = wormtrace::span::begin("net.request", wormtrace::Plane::Net);
            let resp = handle(server, req);
            let ok = !matches!(resp, NetResponse::Error { .. });
            wormtrace::span::finish(root, ok, None);
            drop(scope);
            (resp, Some(active))
        }
        Ok((req, _)) => (handle(server, req), None),
        Err(e) => (
            NetResponse::Error {
                code: CODE_BAD_REQUEST,
                message: format!("undecodable request: {e}"),
            },
            None,
        ),
    };
    let ok = !matches!(resp, NetResponse::Error { .. });
    let encoded = encode_response(&resp);
    if mutating {
        cache.invalidate();
    } else if ok {
        if let Some(sn) = cache_sn {
            cache.insert(sn, gen_before, encoded.clone());
        }
    }
    if let Some((ns, prior)) = stats.request.finish(timer, ok) {
        // Counters stay exact; the ring event is sampled like the
        // read plane's (net traffic is read-dominated), except that
        // failures always ring.
        if prior % stats.trace.read_event_sample() == 0 || !ok {
            stats.trace.emit(wormtrace::TraceEvent {
                op: "net.request",
                plane: wormtrace::Plane::Net,
                sn: None,
                duration_ns: ns,
                ok,
            });
        }
        // Tail capture: the flight recorder keeps the span tree of
        // every errored or over-threshold request, bounded memory.
        if let Some(active) = traced {
            if stats.trace.flight().offer(&active, ns, ok) {
                stats.traces_captured.inc();
            }
        }
    }
    // ordering: monitoring counter; no other memory is published through it.
    served.fetch_add(1, Ordering::Relaxed);
    encoded
}

fn handle<B: WormBackend>(server: &B, req: NetRequest) -> NetResponse {
    let result = (|| -> Result<NetResponse, WormError> {
        match req {
            NetRequest::Write {
                records,
                policy,
                flags,
                witness,
            } => {
                let views: Vec<&[u8]> = records.iter().map(|b| b.as_ref()).collect();
                let sn = server.write_with(&views, policy, flags, witness)?;
                Ok(NetResponse::Written { sn })
            }
            NetRequest::Read { sn } => Ok(NetResponse::Outcome(server.read(sn)?)),
            NetRequest::Delete { sn } => {
                // Drive maintenance so any due expiry executes, then
                // return the re-read: the client verifies either the
                // deletion evidence or — if retention has not lapsed —
                // proof the record is still intact. No unilateral
                // delete exists in a WORM store.
                server.tick()?;
                Ok(NetResponse::Outcome(server.read(sn)?))
            }
            NetRequest::LitHold(cred) => {
                server.lit_hold(cred)?;
                Ok(NetResponse::Ack)
            }
            NetRequest::LitRelease(cred) => {
                server.lit_release(cred)?;
                Ok(NetResponse::Ack)
            }
            NetRequest::Tick => {
                server.tick()?;
                Ok(NetResponse::Ack)
            }
            NetRequest::GetKeys => Ok(NetResponse::Keys {
                keys: server.keys(),
                weak_certs: server.weak_certs(),
            }),
            NetRequest::Stats => Ok(NetResponse::Stats(server.stats_snapshot())),
            NetRequest::Traces => {
                let flight = server.trace().flight();
                Ok(NetResponse::Traces(flight.recent(flight.capacity())))
            }
            NetRequest::GetCompositeHead => {
                Ok(NetResponse::CompositeHead(server.composite_head()?))
            }
            NetRequest::GetShardKeys => Ok(NetResponse::ShardKeys(server.shard_keys())),
            NetRequest::FetchAuditEvents {
                from_seq,
                max_events,
            } => Ok(NetResponse::AuditEvents(server.audit_page(
                from_seq,
                usize::try_from(max_events).unwrap_or(usize::MAX),
            ))),
        }
    })();
    result.unwrap_or_else(|e| NetResponse::Error {
        code: error_code(&e),
        message: e.to_string(),
    })
}
