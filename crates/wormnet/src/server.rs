//! Thread-pool TCP acceptor fronting any [`WormBackend`].
//!
//! The network layer adds no trust: it is part of the untrusted host.
//! Worker threads call straight into the fronted facade — a single
//! [`WormServer`] or a sharded [`ShardedWormServer`] — so concurrent
//! connections exercise the read plane in parallel while mutations
//! serialize per witness plane — exactly the concurrency discipline
//! in-process callers get. Against a sharded backend, writes fan out
//! round-robin across shard lanes and only same-shard writes contend.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use strongworm::authority::{HoldCredential, ReleaseCredential};
use strongworm::firmware::{DeviceKeys, WeakKeyCert};
use strongworm::{
    CompositeHead, ReadOutcome, RetentionPolicy, SerialNumber, ShardedWormServer, WitnessMode,
    WormError, WormServer,
};
use wormstore::BlockDevice;

use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use crate::protocol::{
    decode_request_traced, encode_response, error_code, NetRequest, NetResponse, CODE_BAD_REQUEST,
};
use crate::NetError;

/// The server-side surface [`NetServer`] fronts.
///
/// Implemented by the single-SCPU [`WormServer`] and by the sharded
/// facade [`ShardedWormServer`], so one network layer serves both
/// deployment shapes. A single server answers the shard-aware requests
/// (`GetCompositeHead`, `GetShardKeys`) with degenerate one-shard
/// forms, so clients need not know the deployment shape in advance.
pub trait WormBackend: Send + Sync {
    /// Commits a virtual record with explicit flags and witness tier.
    ///
    /// # Errors
    ///
    /// Store, device, or firmware failures on the owning shard.
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError>;

    /// Reads a record by serial number, host-only.
    ///
    /// # Errors
    ///
    /// Routing failures (sharded backends) or store failures.
    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError>;

    /// Drives due device alarms on every SCPU.
    ///
    /// # Errors
    ///
    /// Device or firmware failures.
    fn tick(&self) -> Result<(), WormError>;

    /// Places a litigation hold, routed by the credential's SN.
    ///
    /// # Errors
    ///
    /// Routing, credential, or firmware failures.
    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError>;

    /// Releases a litigation hold, routed by the credential's SN.
    ///
    /// # Errors
    ///
    /// Routing, credential, or firmware failures.
    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError>;

    /// The coordinator device's published keys.
    fn keys(&self) -> DeviceKeys;

    /// All weak-key certificates the coordinator has issued so far.
    fn weak_certs(&self) -> Vec<WeakKeyCert>;

    /// The composite freshness head over every shard lane.
    ///
    /// # Errors
    ///
    /// Device or firmware failures while refreshing heads or signing
    /// the binding.
    fn composite_head(&self) -> Result<CompositeHead, WormError>;

    /// Every shard's published keys and weak-key certificates, in lane
    /// order.
    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)>;

    /// A point-in-time snapshot of every registered instrument.
    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot;

    /// The trace registry the network layer registers its instruments
    /// into (and whose flight recorder serves `Traces` requests).
    fn trace(&self) -> &Arc<wormtrace::Registry>;
}

impl<D: BlockDevice> WormBackend for WormServer<D> {
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError> {
        WormServer::write_with(self, records, policy, flags, witness)
    }

    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError> {
        WormServer::read(self, sn)
    }

    fn tick(&self) -> Result<(), WormError> {
        WormServer::tick(self)
    }

    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError> {
        WormServer::lit_hold(self, credential)
    }

    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError> {
        WormServer::lit_release(self, credential)
    }

    fn keys(&self) -> DeviceKeys {
        WormServer::keys(self).clone()
    }

    fn weak_certs(&self) -> Vec<WeakKeyCert> {
        WormServer::weak_certs(self)
    }

    fn composite_head(&self) -> Result<CompositeHead, WormError> {
        WormServer::composite_head(self)
    }

    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)> {
        vec![(WormServer::keys(self).clone(), WormServer::weak_certs(self))]
    }

    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot {
        WormServer::stats_snapshot(self)
    }

    fn trace(&self) -> &Arc<wormtrace::Registry> {
        WormServer::trace(self)
    }
}

impl<D: BlockDevice> WormBackend for ShardedWormServer<D> {
    fn write_with(
        &self,
        records: &[&[u8]],
        policy: RetentionPolicy,
        flags: u32,
        witness: WitnessMode,
    ) -> Result<SerialNumber, WormError> {
        ShardedWormServer::write_with(self, records, policy, flags, witness)
    }

    fn read(&self, sn: SerialNumber) -> Result<ReadOutcome, WormError> {
        ShardedWormServer::read(self, sn)
    }

    fn tick(&self) -> Result<(), WormError> {
        ShardedWormServer::tick(self)
    }

    fn lit_hold(&self, credential: HoldCredential) -> Result<(), WormError> {
        ShardedWormServer::lit_hold(self, credential)
    }

    fn lit_release(&self, credential: ReleaseCredential) -> Result<(), WormError> {
        ShardedWormServer::lit_release(self, credential)
    }

    fn keys(&self) -> DeviceKeys {
        self.coordinator().keys().clone()
    }

    fn weak_certs(&self) -> Vec<WeakKeyCert> {
        self.coordinator().weak_certs()
    }

    fn composite_head(&self) -> Result<CompositeHead, WormError> {
        ShardedWormServer::composite_head(self)
    }

    fn shard_keys(&self) -> Vec<(DeviceKeys, Vec<WeakKeyCert>)> {
        ShardedWormServer::shard_keys(self)
    }

    fn stats_snapshot(&self) -> wormtrace::StatsSnapshot {
        ShardedWormServer::stats_snapshot(self)
    }

    fn trace(&self) -> &Arc<wormtrace::Registry> {
        ShardedWormServer::trace(self)
    }
}

/// Tuning knobs for [`NetServer`].
#[derive(Clone, Copy, Debug)]
pub struct NetServerConfig {
    /// Worker threads handling connections (each worker owns one
    /// connection at a time).
    pub workers: usize,
    /// Hard cap on request frame size; oversized announcements are
    /// rejected before allocation and the connection is dropped.
    pub max_frame: u32,
    /// Per-connection socket read timeout — an idle or stalled peer is
    /// disconnected after this long without a complete request.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Accepted connections queued ahead of a free worker; beyond this
    /// the acceptor sheds load by dropping the connection.
    pub queue_depth: usize,
    /// Latency at/above which a successful request's span tree is kept
    /// by the flight recorder (applied to the fronted server's trace
    /// registry at bind; errors always capture). Also runtime-settable
    /// via `Registry::flight().set_slow_threshold_ns`.
    pub slow_trace_threshold: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            queue_depth: 64,
            slow_trace_threshold: Duration::from_millis(250),
        }
    }
}

/// How often blocked loops re-check the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Frame header size added to payload length for byte accounting.
const FRAME_HEADER_BYTES: u64 = 4;

/// Net-layer instrument handles into the fronted server's trace
/// registry, resolved once at bind so per-frame accounting is pure
/// atomics.
#[derive(Clone)]
struct NetStats {
    trace: Arc<wormtrace::Registry>,
    request: Arc<wormtrace::OpStats>,
    conn_accepted: Arc<wormtrace::Counter>,
    conn_shed: Arc<wormtrace::Counter>,
    frames_in: Arc<wormtrace::Counter>,
    frames_out: Arc<wormtrace::Counter>,
    bytes_in: Arc<wormtrace::Counter>,
    bytes_out: Arc<wormtrace::Counter>,
    timeouts: Arc<wormtrace::Counter>,
    queue_depth: Arc<wormtrace::Gauge>,
    traces_captured: Arc<wormtrace::Counter>,
}

impl NetStats {
    fn new(trace: Arc<wormtrace::Registry>) -> Self {
        NetStats {
            request: trace.op("net.request"),
            conn_accepted: trace.counter("net.conn_accepted"),
            conn_shed: trace.counter("net.conn_shed"),
            frames_in: trace.counter("net.frames_in"),
            frames_out: trace.counter("net.frames_out"),
            bytes_in: trace.counter("net.bytes_in"),
            bytes_out: trace.counter("net.bytes_out"),
            timeouts: trace.counter("net.timeouts"),
            queue_depth: trace.gauge("net.queue_depth"),
            traces_captured: trace.counter("net.traces_captured"),
            trace,
        }
    }

    /// Counts a socket-level read failure, classifying timeouts.
    fn note_read_error(&self, e: &NetError) {
        if let NetError::Io(io) = e {
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                self.timeouts.inc();
            }
        }
    }
}

/// A running network front-end. Dropping the handle leaks the threads;
/// call [`NetServer::shutdown`] for a graceful stop.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    /// Kept so [`NetServer::shutdown`] can drain connections the
    /// acceptor queued but no worker ever received (each carries a
    /// pending `net.queue_depth` increment).
    rx: Receiver<TcpStream>,
    queue_depth: Arc<wormtrace::Gauge>,
}

impl NetServer {
    /// Binds `addr` and starts the acceptor plus worker pool.
    ///
    /// # Errors
    ///
    /// Socket errors binding or configuring the listener.
    pub fn bind<B, A>(
        server: Arc<B>,
        addr: A,
        config: NetServerConfig,
    ) -> Result<NetServer, NetError>
    where
        B: WormBackend + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let stats = NetStats::new(Arc::clone(server.trace()));
        stats.trace.flight().set_slow_threshold_ns(
            u64::try_from(config.slow_trace_threshold.as_nanos()).unwrap_or(u64::MAX),
        );
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(config.queue_depth);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let stop = stop.clone();
                let server = server.clone();
                let served = served.clone();
                let stats = stats.clone();
                std::thread::spawn(move || {
                    worker_loop(&rx, &stop, server.as_ref(), &served, &stats, config)
                })
            })
            .collect();

        let acceptor = {
            let stop = stop.clone();
            let stats = stats.clone();
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop, &stats))
        };

        Ok(NetServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            served,
            rx,
            queue_depth: stats.queue_depth,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests committed or served so far, across all workers.
    pub fn requests_served(&self) -> u64 {
        // ordering: monitoring counter; readers need a recent value, not an ordered one.
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains in-flight connections, and joins every
    /// thread. In-progress requests complete; idle connections are
    /// closed at their next shutdown-flag poll.
    pub fn shutdown(mut self) {
        // ordering: one-shot shutdown flag on a cold path; SeqCst costs nothing here and
        // keeps the store/poll pairing obvious without auditing an Acquire/Release chain.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connections the acceptor queued (incrementing the gauge) but
        // no worker received before stopping would otherwise leak their
        // queue-depth increment forever; drain and close them so the
        // gauge returns to the true depth: zero.
        while let Ok(conn) = self.rx.try_recv() {
            self.queue_depth.dec();
            drop(conn);
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<TcpStream>,
    stop: &AtomicBool,
    stats: &NetStats,
) {
    // ordering: polls the one-shot shutdown flag; SeqCst pairs with the store in
    // `shutdown` on a path that blocks on `accept` anyway.
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                stats.conn_accepted.inc();
                // Back-pressure: if every worker is busy and the queue
                // is full, shed the connection rather than grow without
                // bound.
                match tx.try_send(conn) {
                    Ok(()) => stats.queue_depth.inc(),
                    Err(TrySendError::Full(conn) | TrySendError::Disconnected(conn)) => {
                        stats.conn_shed.inc();
                        drop(conn);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(SHUTDOWN_POLL);
            }
            Err(_) => std::thread::sleep(SHUTDOWN_POLL),
        }
    }
}

fn worker_loop<B: WormBackend>(
    rx: &Receiver<TcpStream>,
    stop: &AtomicBool,
    server: &B,
    served: &AtomicU64,
    stats: &NetStats,
    config: NetServerConfig,
) {
    // ordering: same one-shot shutdown flag; the recv_timeout bound, not the memory
    // ordering, is what bounds shutdown latency.
    while !stop.load(Ordering::SeqCst) {
        let conn = match rx.recv_timeout(SHUTDOWN_POLL) {
            Ok(conn) => conn,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        stats.queue_depth.dec();
        // Per-connection errors only ever kill that connection.
        let _ = serve_connection(conn, stop, server, served, stats, config);
    }
}

fn serve_connection<B: WormBackend>(
    conn: TcpStream,
    stop: &AtomicBool,
    server: &B,
    served: &AtomicU64,
    stats: &NetStats,
    config: NetServerConfig,
) -> Result<(), NetError> {
    conn.set_read_timeout(Some(config.read_timeout))?;
    conn.set_write_timeout(Some(config.write_timeout))?;
    conn.set_nodelay(true)?;
    let mut reader = conn.try_clone()?;
    let mut writer = BufWriter::new(conn);
    loop {
        // ordering: per-frame poll of the one-shot shutdown flag (see `shutdown`).
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame(&mut reader, config.max_frame) {
            Ok(Some(payload)) => payload,
            // Peer hung up between frames: normal end of session.
            Ok(None) => return Ok(()),
            Err(e) => {
                stats.note_read_error(&e);
                return Err(e);
            }
        };
        stats.frames_in.inc();
        stats
            .bytes_in
            .add(payload.len() as u64 + FRAME_HEADER_BYTES);
        let timer = stats.trace.timer();
        let (resp, traced) = match decode_request_traced(&payload) {
            // A trace is collected per request whenever the registry is
            // live: thread-attach the trace, open the root span, and
            // serve — every span the planes/SCPU/store open on this
            // thread lands under that root. Wire context (envelope
            // opcode 9) supplies the identity; bare requests root a
            // server-minted trace.
            Ok((req, ctx)) if stats.trace.enabled() => {
                let trace_id = ctx.map_or_else(wormtrace::span::fresh_trace_id, |c| c.trace_id);
                let base_parent = ctx.map_or(0, |c| c.parent_span);
                let active = Arc::new(wormtrace::ActiveTrace::new(trace_id));
                let scope = wormtrace::span::enter(Arc::clone(&active), base_parent);
                let root = wormtrace::span::begin("net.request", wormtrace::Plane::Net);
                let resp = handle(server, req);
                let ok = !matches!(resp, NetResponse::Error { .. });
                wormtrace::span::finish(root, ok, None);
                drop(scope);
                (resp, Some(active))
            }
            Ok((req, _)) => (handle(server, req), None),
            Err(e) => (
                NetResponse::Error {
                    code: CODE_BAD_REQUEST,
                    message: format!("undecodable request: {e}"),
                },
                None,
            ),
        };
        let ok = !matches!(resp, NetResponse::Error { .. });
        let encoded = encode_response(&resp);
        if let Err(e) = write_frame(&mut writer, &encoded, config.max_frame) {
            stats.request.finish(timer, false);
            return Err(e);
        }
        stats.frames_out.inc();
        stats
            .bytes_out
            .add(encoded.len() as u64 + FRAME_HEADER_BYTES);
        if let Some((ns, prior)) = stats.request.finish(timer, ok) {
            // Counters stay exact; the ring event is sampled like the
            // read plane's (net traffic is read-dominated), except that
            // failures always ring.
            if prior % wormtrace::READ_EVENT_SAMPLE == 0 || !ok {
                stats.trace.emit(wormtrace::TraceEvent {
                    op: "net.request",
                    plane: wormtrace::Plane::Net,
                    sn: None,
                    duration_ns: ns,
                    ok,
                });
            }
            // Tail capture: the flight recorder keeps the span tree of
            // every errored or over-threshold request, bounded memory.
            if let Some(active) = traced {
                if stats.trace.flight().offer(&active, ns, ok) {
                    stats.traces_captured.inc();
                }
            }
        }
        // ordering: monitoring counter; no other memory is published through it.
        served.fetch_add(1, Ordering::Relaxed);
    }
}

fn handle<B: WormBackend>(server: &B, req: NetRequest) -> NetResponse {
    let result = (|| -> Result<NetResponse, WormError> {
        match req {
            NetRequest::Write {
                records,
                policy,
                flags,
                witness,
            } => {
                let views: Vec<&[u8]> = records.iter().map(|b| b.as_ref()).collect();
                let sn = server.write_with(&views, policy, flags, witness)?;
                Ok(NetResponse::Written { sn })
            }
            NetRequest::Read { sn } => Ok(NetResponse::Outcome(server.read(sn)?)),
            NetRequest::Delete { sn } => {
                // Drive maintenance so any due expiry executes, then
                // return the re-read: the client verifies either the
                // deletion evidence or — if retention has not lapsed —
                // proof the record is still intact. No unilateral
                // delete exists in a WORM store.
                server.tick()?;
                Ok(NetResponse::Outcome(server.read(sn)?))
            }
            NetRequest::LitHold(cred) => {
                server.lit_hold(cred)?;
                Ok(NetResponse::Ack)
            }
            NetRequest::LitRelease(cred) => {
                server.lit_release(cred)?;
                Ok(NetResponse::Ack)
            }
            NetRequest::Tick => {
                server.tick()?;
                Ok(NetResponse::Ack)
            }
            NetRequest::GetKeys => Ok(NetResponse::Keys {
                keys: server.keys(),
                weak_certs: server.weak_certs(),
            }),
            NetRequest::Stats => Ok(NetResponse::Stats(server.stats_snapshot())),
            NetRequest::Traces => {
                let flight = server.trace().flight();
                Ok(NetResponse::Traces(flight.recent(flight.capacity())))
            }
            NetRequest::GetCompositeHead => {
                Ok(NetResponse::CompositeHead(server.composite_head()?))
            }
            NetRequest::GetShardKeys => Ok(NetResponse::ShardKeys(server.shard_keys())),
        }
    })();
    result.unwrap_or_else(|e| NetResponse::Error {
        code: error_code(&e),
        message: e.to_string(),
    })
}
