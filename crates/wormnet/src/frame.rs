//! Length-prefixed framing.
//!
//! Every message on the wire is `u32` big-endian payload length followed
//! by the payload. The length is checked against a cap *before* any
//! allocation, so a hostile peer announcing a 4 GiB frame costs the
//! receiver four header bytes, not four gigabytes.

use std::io::{ErrorKind, Read, Write};

use crate::NetError;

/// Default frame cap: 16 MiB, comfortably above the largest legitimate
/// response (a full VRD with its records) for the configurations this
/// workspace ships.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max` (the local
/// side refuses to emit frames its peer would reject); socket errors
/// otherwise.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u32) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        // wormlint: allow(cast) -- lossless usize→u64 widening on every supported target
        len: payload.len() as u64,
        max: u64::from(max),
    })?;
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing the size cap before allocating.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer closed the
/// connection between frames) — the normal way a client hangs up.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] for an oversized announcement,
/// [`NetError::Truncated`] if the stream ends inside a frame, socket
/// errors otherwise.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        Filled::Eof => return Ok(None),
        Filled::Partial => return Err(NetError::Truncated),
        Filled::Full => {}
    }
    let len = u32::from_be_bytes(header);
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    // wormlint: allow(cast) -- lossless u32→usize widening on the ≥32-bit targets this server supports; len is already capped at `max`
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Full => Ok(Some(payload)),
        Filled::Eof | Filled::Partial => Err(NetError::Truncated),
    }
}

enum Filled {
    /// The whole buffer was read.
    Full,
    /// The stream ended before the first byte.
    Eof,
    /// The stream ended after at least one byte.
    Partial,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Filled, NetError> {
    let mut filled = 0;
    while let Some(dst) = buf.get_mut(filled..).filter(|d| !d.is_empty()) {
        match r.read(dst) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(Filled::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        // 4 GiB - 1 announced; only the 4 header bytes are consumed.
        let buf = u32::MAX.to_be_bytes().to_vec();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn writer_refuses_oversized_payload() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 100], 10),
            Err(NetError::FrameTooLarge { len: 100, max: 10 })
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn truncation_inside_header_and_payload() {
        // Two header bytes, then EOF.
        let mut r = Cursor::new(vec![0u8, 1]);
        assert!(matches!(read_frame(&mut r, 1024), Err(NetError::Truncated)));
        // Full header announcing 8 bytes, only 3 present.
        let mut buf = 8u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r, 1024), Err(NetError::Truncated)));
    }
}
