//! Length-prefixed framing.
//!
//! Every message on the wire is `u32` big-endian payload length followed
//! by the payload. The length is checked against a cap *before* any
//! allocation, so a hostile peer announcing a 4 GiB frame costs the
//! receiver four header bytes, not four gigabytes.

use std::io::{ErrorKind, Read, Write};

use crate::NetError;

/// Default frame cap: 16 MiB, comfortably above the largest legitimate
/// response (a full VRD with its records) for the configurations this
/// workspace ships.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max` (the local
/// side refuses to emit frames its peer would reject); socket errors
/// otherwise.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u32) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        // wormlint: allow(cast) -- lossless usize→u64 widening on every supported target
        len: payload.len() as u64,
        max: u64::from(max),
    })?;
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Appends one frame (header + payload) to an in-memory buffer with no
/// I/O: the building block for deferred-flush responses, where every
/// frame of a readiness burst coalesces into one vectored write.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max`; `out` is
/// untouched in that case.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8], max: u32) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        // wormlint: allow(cast) -- lossless usize→u64 widening on every supported target
        len: payload.len() as u64,
        max: u64::from(max),
    })?;
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    out.reserve(4 + payload.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Examines the front of an in-memory buffer for one complete frame,
/// without consuming or copying anything: the building block for
/// batched decode from a per-connection read buffer.
///
/// Returns `Ok(Some((payload, consumed)))` when a whole frame is
/// buffered — `payload` borrows the frame body and `consumed` is the
/// total bytes (header + body) the caller should drain afterwards —
/// and `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] the moment a header announces a payload
/// beyond `max`, before that payload is buffered: an oversized
/// announcement costs four bytes of buffer, never a large allocation.
pub fn parse_frame(buf: &[u8], max: u32) -> Result<Option<(&[u8], usize)>, NetError> {
    let Some(header) = buf.first_chunk::<4>() else {
        return Ok(None);
    };
    let len = u32::from_be_bytes(*header);
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    // wormlint: allow(cast) -- lossless u32→usize widening on the ≥32-bit targets this server supports; len is already capped at `max`
    let total = 4 + len as usize;
    match buf.get(4..total) {
        Some(payload) => Ok(Some((payload, total))),
        None => Ok(None),
    }
}

/// Reads one frame, enforcing the size cap before allocating.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer closed the
/// connection between frames) — the normal way a client hangs up.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] for an oversized announcement,
/// [`NetError::Truncated`] if the stream ends inside a frame, socket
/// errors otherwise.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        Filled::Eof => return Ok(None),
        Filled::Partial => return Err(NetError::Truncated),
        Filled::Full => {}
    }
    let len = u32::from_be_bytes(header);
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    // wormlint: allow(cast) -- lossless u32→usize widening on the ≥32-bit targets this server supports; len is already capped at `max`
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Full => Ok(Some(payload)),
        Filled::Eof | Filled::Partial => Err(NetError::Truncated),
    }
}

enum Filled {
    /// The whole buffer was read.
    Full,
    /// The stream ended before the first byte.
    Eof,
    /// The stream ended after at least one byte.
    Partial,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Filled, NetError> {
    let mut filled = 0;
    while let Some(dst) = buf.get_mut(filled..).filter(|d| !d.is_empty()) {
        match r.read(dst) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(Filled::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn parse_frame_walks_a_pipelined_buffer() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first", DEFAULT_MAX_FRAME).unwrap();
        append_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        append_frame(&mut buf, b"third frame", DEFAULT_MAX_FRAME).unwrap();
        // Trailing partial frame: header promising more than buffered.
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3]);

        let mut seen = Vec::new();
        let mut rest = buf.as_slice();
        while let Some((payload, consumed)) = parse_frame(rest, DEFAULT_MAX_FRAME).unwrap() {
            seen.push(payload.to_vec());
            rest = rest.get(consumed..).unwrap();
        }
        assert_eq!(
            seen,
            vec![b"first".to_vec(), Vec::new(), b"third frame".to_vec()]
        );
        // The partial tail stays unconsumed until more bytes arrive.
        assert_eq!(rest.len(), 7);
        assert!(parse_frame(rest, DEFAULT_MAX_FRAME).unwrap().is_none());
        // Partial header alone is also "need more".
        assert!(parse_frame(&[0, 0], DEFAULT_MAX_FRAME).unwrap().is_none());
        assert!(parse_frame(&[], DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn parse_frame_rejects_oversized_header_before_buffering() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.push(0); // one byte of the impossible payload
        match parse_frame(&buf, 1024) {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn append_frame_matches_write_frame_bytes_and_refuses_oversize() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, b"same bytes", DEFAULT_MAX_FRAME).unwrap();
        let mut appended = Vec::new();
        append_frame(&mut appended, b"same bytes", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(streamed, appended);

        let mut out = vec![0xAA];
        assert!(matches!(
            append_frame(&mut out, &[0u8; 100], 10),
            Err(NetError::FrameTooLarge { len: 100, max: 10 })
        ));
        assert_eq!(
            out,
            vec![0xAA],
            "failed append must leave the buffer untouched"
        );
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        // 4 GiB - 1 announced; only the 4 header bytes are consumed.
        let buf = u32::MAX.to_be_bytes().to_vec();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn writer_refuses_oversized_payload() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 100], 10),
            Err(NetError::FrameTooLarge { len: 100, max: 10 })
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn truncation_inside_header_and_payload() {
        // Two header bytes, then EOF.
        let mut r = Cursor::new(vec![0u8, 1]);
        assert!(matches!(read_frame(&mut r, 1024), Err(NetError::Truncated)));
        // Full header announcing 8 bytes, only 3 present.
        let mut buf = 8u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r, 1024), Err(NetError::Truncated)));
    }
}
