//! Per-worker readiness event loop: many connections, one thread.
//!
//! Each worker owns a *set* of connections (not one, as the old
//! thread-per-connection pool did) and multiplexes them with a single
//! `poll(2)` sweep per iteration via the vendored [`netpoll`] shim.
//! The loop is built around three amortizations:
//!
//! * **Batched decode** — bytes are pulled off a readable socket into a
//!   per-connection read buffer in large chunks; every complete frame
//!   already buffered is then parsed and served without another
//!   syscall. A pipelining client paying one wakeup for N requests is
//!   the whole point.
//! * **Deferred flush** — responses for a readiness burst accumulate in
//!   a per-connection write buffer and leave in one coalesced write,
//!   not one flush per frame.
//! * **Fairness caps** — a connection serves at most [`BURST_FRAMES`]
//!   requests per iteration and reads at most [`READ_BUDGET`] bytes per
//!   wakeup, so one firehose connection cannot starve its neighbours;
//!   leftover buffered frames are served on the next iteration, which
//!   runs immediately (zero poll timeout) while deferred work exists.
//!
//! Backpressure: a connection whose un-flushed output exceeds
//! [`WBUF_PAUSE`] stops being read (and parsed) until the peer drains
//! it — in-flight memory per connection is bounded by that watermark
//! plus one maximum-size response.

use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel::Receiver;

use crate::frame::{append_frame, parse_frame};
use crate::server::{respond, NetServerConfig, NetStats, ReadCache, WormBackend, SHUTDOWN_POLL};

/// Cap on requests served from one connection per loop iteration.
pub(crate) const BURST_FRAMES: usize = 64;

/// Cap on bytes read from one connection per wakeup.
pub(crate) const READ_BUDGET: usize = 256 << 10;

/// Scratch chunk size for draining a readable socket.
const READ_CHUNK: usize = 64 << 10;

/// Pending-output watermark above which a connection stops being read.
pub(crate) const WBUF_PAUSE: usize = 1 << 20;

/// Retained buffer capacity above which an idle buffer is shrunk back.
const BUF_SHRINK: usize = 256 << 10;

/// Why a connection left the loop (close accounting).
enum Close {
    /// Peer hung up cleanly (or the session completed after EOF).
    Eof,
    /// Socket error, framing violation, or an unencodable response.
    Error,
    /// No read progress within `read_timeout`, or a write stalled
    /// beyond `write_timeout`.
    Timeout,
}

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Unparsed request bytes (complete frames + a possible tail).
    rbuf: Vec<u8>,
    /// Encoded, un-flushed response bytes.
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf` (drained lazily, in one truncate).
    wpos: usize,
    /// Peer sent EOF; serve what is buffered, flush, then close.
    eof: bool,
    /// Set when the connection must be removed this iteration.
    close: Option<Close>,
    last_read: Instant,
    last_write: Instant,
}

impl Conn {
    fn register(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let fd = stream.as_raw_fd();
        let now = Instant::now();
        Ok(Conn {
            stream,
            fd,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            close: None,
            last_read: now,
            last_write: now,
        })
    }

    /// Un-flushed output bytes pending.
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Too much pending output: stop reading until the peer drains.
    fn paused(&self) -> bool {
        self.wbuf.len() - self.wpos >= WBUF_PAUSE
    }

    /// A buffered complete frame (or a buffered framing violation)
    /// that the burst cap deferred to the next iteration.
    fn deferred_work(&self, max_frame: u32) -> bool {
        if self.close.is_some() || self.paused() {
            return false;
        }
        !matches!(parse_frame(&self.rbuf, max_frame), Ok(None))
    }

    /// Drains the readable socket into `rbuf`, up to the fairness
    /// budget. Sets `eof` / `close` as the socket dictates.
    fn fill(&mut self, scratch: &mut [u8]) {
        use std::io::Read as _;
        let mut taken = 0usize;
        while taken < READ_BUDGET {
            match (&self.stream).read(scratch) {
                Ok(0) => {
                    self.eof = true;
                    return;
                }
                Ok(n) => {
                    taken += n;
                    self.rbuf.extend_from_slice(&scratch[..n]);
                    self.last_read = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close = Some(Close::Error);
                    return;
                }
            }
        }
    }

    /// Parses and serves every complete buffered frame, up to the burst
    /// cap and the write-buffer watermark. Responses append to `wbuf`.
    fn serve<B: WormBackend>(
        &mut self,
        server: &B,
        stats: &NetStats,
        served: &AtomicU64,
        config: &NetServerConfig,
        cache: &mut ReadCache,
    ) {
        let mut consumed = 0usize;
        for _ in 0..BURST_FRAMES {
            if self.wbuf.len() - self.wpos >= WBUF_PAUSE {
                break;
            }
            let unparsed = self.rbuf.get(consumed..).unwrap_or_default();
            match parse_frame(unparsed, config.max_frame) {
                Ok(Some((payload, frame_len))) => {
                    let resp = respond(server, stats, served, payload, cache);
                    if append_frame(&mut self.wbuf, &resp, config.max_frame).is_err() {
                        // A response the peer would reject as oversized:
                        // nothing sane to send; drop the connection.
                        self.close = Some(Close::Error);
                        return;
                    }
                    stats.frames_out.inc();
                    stats
                        .bytes_out
                        .add(resp.len() as u64 + crate::server::FRAME_HEADER_BYTES);
                    consumed += frame_len;
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing violation (oversized announcement): the
                    // stream is unrecoverable — close, as the blocking
                    // server did. Flush responses already owed first.
                    self.close = Some(Close::Error);
                    break;
                }
            }
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
        if self.rbuf.is_empty() && self.rbuf.capacity() > BUF_SHRINK {
            self.rbuf.shrink_to(READ_CHUNK);
        }
    }

    /// Pushes pending output to the socket: one coalesced write per
    /// burst rather than one flush per frame.
    fn flush(&mut self) {
        use std::io::Write as _;
        while self.wants_write() {
            let pending = self.wbuf.get(self.wpos..).unwrap_or_default();
            match (&self.stream).write(pending) {
                Ok(0) => {
                    self.close = Some(Close::Error);
                    return;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.last_write = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close = Some(Close::Error);
                    return;
                }
            }
        }
        if !self.wants_write() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.wbuf.capacity() > BUF_SHRINK {
                self.wbuf.shrink_to(READ_CHUNK);
            }
        }
    }

    /// Post-step close decisions: clean EOF completion and timeouts.
    fn decide_close(&mut self, now: Instant, config: &NetServerConfig) {
        if self.close.is_some() {
            return;
        }
        if self.eof {
            let drained = matches!(parse_frame(&self.rbuf, config.max_frame), Ok(None));
            if drained && !self.wants_write() {
                self.close = Some(Close::Eof);
            }
            return;
        }
        let read_stalled = now.duration_since(self.last_read) > config.read_timeout;
        let write_stalled =
            self.wants_write() && now.duration_since(self.last_write) > config.write_timeout;
        if read_stalled || write_stalled {
            self.close = Some(Close::Timeout);
        }
    }
}

/// Per-worker gauge/counter rows (`net.worker{i}.*`), rendered by
/// `wormtop` as one line per worker.
struct WorkerStats {
    conns: std::sync::Arc<wormtrace::Gauge>,
    frames: std::sync::Arc<wormtrace::Counter>,
}

/// The worker body: an event loop over every connection assigned to
/// this worker, woken by readiness, the acceptor's hand-off pipe, or
/// the shutdown flag's poll interval.
#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_loop<B: WormBackend>(
    idx: usize,
    rx: &Receiver<TcpStream>,
    wake: &netpoll::WakeReader,
    stop: &AtomicBool,
    server: &B,
    served: &AtomicU64,
    stats: &NetStats,
    live: &AtomicUsize,
    config: &NetServerConfig,
    mut cache: ReadCache,
) {
    let wstats = WorkerStats {
        conns: stats.trace.gauge(&format!("net.worker{idx}.conns")),
        frames: stats.trace.counter(&format!("net.worker{idx}.frames")),
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<netpoll::PollFd> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];

    // ordering: one-shot shutdown flag; the poll timeout (not the memory
    // ordering) bounds shutdown latency, and the waker cuts even that short.
    while !stop.load(Ordering::SeqCst) {
        intake(rx, &mut conns, stats, &wstats, live);

        // One poll(2) over the waker plus every connection: read
        // interest unless backpressured, write interest while output is
        // pending. Zero timeout while any connection has deferred
        // buffered frames (burst-capped last iteration).
        fds.clear();
        fds.push(netpoll::PollFd::new(wake.fd(), netpoll::POLLIN));
        let mut deferred = false;
        for c in &conns {
            let mut interest = 0i16;
            if !c.paused() && !c.eof {
                interest |= netpoll::POLLIN;
            }
            if c.wants_write() {
                interest |= netpoll::POLLOUT;
            }
            fds.push(netpoll::PollFd::new(c.fd, interest));
            deferred |= c.deferred_work(config.max_frame);
        }
        let timeout = if deferred {
            std::time::Duration::ZERO
        } else {
            SHUTDOWN_POLL
        };
        let _ = netpoll::poll(&mut fds, Some(timeout));
        wake.drain();

        let now = Instant::now();
        for (i, conn) in conns.iter_mut().enumerate() {
            let ready = fds.get(i + 1).copied();
            let readable = ready.is_some_and(|r| r.readable() || r.errored());
            let writable = ready.is_some_and(|r| r.writable());
            if writable {
                // Free output space first so a backpressured connection
                // can resume serving within the same iteration.
                conn.flush();
            }
            if readable && !conn.paused() && conn.close.is_none() {
                conn.fill(&mut scratch);
            }
            if conn.close.is_none() {
                let before = stats.frames_in.get();
                conn.serve(server, stats, served, config, &mut cache);
                wstats
                    .frames
                    .add(stats.frames_in.get().saturating_sub(before));
                conn.flush();
            }
            conn.decide_close(now, config);
        }
        sweep(&mut conns, stats, &wstats, live);
    }

    // Graceful exit: push out responses already produced (best effort,
    // one attempt), then drop every connection and drain the inbox so
    // gauges return to the truth — zero.
    for conn in &mut conns {
        conn.flush();
    }
    for _ in conns.drain(..) {
        stats.conns_open.dec();
        wstats.conns.dec();
        // ordering: admission counter is advisory (see `admit`).
        live.fetch_sub(1, Ordering::Relaxed);
    }
    while let Ok(conn) = rx.try_recv() {
        stats.queue_depth.dec();
        // ordering: admission counter is advisory (see `admit`).
        live.fetch_sub(1, Ordering::Relaxed);
        drop(conn);
    }
}

/// Moves connections the acceptor handed off into this worker's set.
fn intake(
    rx: &Receiver<TcpStream>,
    conns: &mut Vec<Conn>,
    stats: &NetStats,
    wstats: &WorkerStats,
    live: &AtomicUsize,
) {
    while let Ok(stream) = rx.try_recv() {
        stats.queue_depth.dec();
        match Conn::register(stream) {
            Ok(conn) => {
                conns.push(conn);
                stats.conns_open.inc();
                wstats.conns.inc();
            }
            Err(_) => {
                // ordering: admission counter is advisory (see `admit`).
                live.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Removes connections marked for close, with gauge/counter accounting.
fn sweep(conns: &mut Vec<Conn>, stats: &NetStats, wstats: &WorkerStats, live: &AtomicUsize) {
    conns.retain_mut(|c| {
        let Some(reason) = &c.close else {
            return true;
        };
        if matches!(reason, Close::Timeout) {
            stats.timeouts.inc();
        }
        // Give buffered responses one last chance before the socket
        // drops (e.g. a framing violation after valid frames: the
        // valid frames' responses still go out).
        c.flush();
        stats.conns_open.dec();
        wstats.conns.dec();
        // ordering: admission counter is advisory (see `admit`).
        live.fetch_sub(1, Ordering::Relaxed);
        false
    });
}
