//! Fuzz-style property tests of the network layer: frames and protocol
//! payloads arrive from an untrusted peer, so decoding must be total —
//! errors, never panics, never unbounded allocation — and valid
//! encodings must survive a roundtrip bit-for-bit.

use std::io::Cursor;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use strongworm::{RetentionPolicy, SerialNumber, WitnessMode};
use wormnet::frame::{read_frame, write_frame};
use wormnet::protocol::{decode_request, decode_response, encode_request, NetRequest};
use wormnet::NetError;
use wormstore::Shredder;

fn arb_policy() -> impl Strategy<Value = RetentionPolicy> {
    (any::<u32>(), 0u8..4).prop_map(|(secs, kind)| {
        let shredder = match kind {
            0 => Shredder::ZeroFill,
            1 => Shredder::MultiPass { passes: 3 },
            _ => Shredder::RandomPass,
        };
        RetentionPolicy::custom(Duration::from_secs(u64::from(secs)), shredder)
    })
}

fn arb_request() -> impl Strategy<Value = NetRequest> {
    prop_oneof![
        (
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..5),
            arb_policy(),
            any::<u32>(),
            0u8..3,
        )
            .prop_map(|(records, policy, flags, w)| NetRequest::Write {
                records: records.into_iter().map(Bytes::from).collect(),
                policy,
                flags,
                witness: match w {
                    0 => WitnessMode::Strong,
                    1 => WitnessMode::Deferred,
                    _ => WitnessMode::Hmac,
                },
            }),
        any::<u64>().prop_map(|sn| NetRequest::Read {
            sn: SerialNumber(sn)
        }),
        any::<u64>().prop_map(|sn| NetRequest::Delete {
            sn: SerialNumber(sn)
        }),
        Just(NetRequest::Tick),
        Just(NetRequest::GetKeys),
        Just(NetRequest::GetCompositeHead),
        Just(NetRequest::GetShardKeys),
        (any::<u64>(), any::<u32>()).prop_map(|(from_seq, max_events)| {
            NetRequest::FetchAuditEvents {
                from_seq,
                max_events,
            }
        }),
    ]
}

fn arb_audit_event() -> impl Strategy<Value = wormaudit::AuditEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<prop::sample::Index>(),
        proptest::option::of(any::<u64>()),
        proptest::collection::vec(97u8..123, 0..12),
        any::<[u8; 32]>(),
    )
        .prop_map(
            |(seq, at_ms, class, sn, detail, prev_hash)| wormaudit::AuditEvent {
                seq,
                at_ms,
                class: wormaudit::ALL_CLASSES[class.index(wormaudit::ALL_CLASSES.len())],
                sn,
                detail: String::from_utf8(detail).unwrap_or_default(),
                prev_hash,
            },
        )
}

fn arb_audit_page() -> impl Strategy<Value = wormaudit::AuditPage> {
    (
        proptest::collection::vec(arb_audit_event(), 0..6),
        proptest::collection::vec(
            (
                any::<u64>(),
                any::<[u8; 32]>(),
                any::<u64>(),
                any::<[u8; 8]>(),
                proptest::collection::vec(any::<u8>(), 0..72),
            ),
            0..3,
        ),
    )
        .prop_map(|(events, anchors)| wormaudit::AuditPage {
            events,
            anchors: anchors
                .into_iter()
                .map(
                    |(seq, chain_hash, issued_at_ms, key_id, sig)| wormaudit::AuditAnchor {
                        seq,
                        chain_hash,
                        issued_at_ms,
                        key_id,
                        sig,
                    },
                )
                .collect(),
        })
}

proptest! {
    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Valid requests roundtrip exactly; every strict prefix fails.
    #[test]
    fn requests_roundtrip_and_reject_prefixes(req in arb_request()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc).unwrap(), req);
        for cut in 0..enc.len() {
            prop_assert!(decode_request(&enc[..cut]).is_err());
        }
    }

    /// Single-byte mutations either fail to decode or decode to a
    /// different request — no silent aliasing of hostile edits.
    #[test]
    fn mutations_never_alias(req in arb_request(), pos in any::<prop::sample::Index>(), flip in 1u8..255) {
        let enc = encode_request(&req);
        let mut bad = enc.clone();
        let i = pos.index(bad.len());
        bad[i] ^= flip;
        if let Ok(decoded) = decode_request(&bad) {
            prop_assert_ne!(decoded, req);
        }
    }

    /// Audit-page responses roundtrip exactly through the response
    /// codec; every strict prefix fails — the `wormaudit.events.v1`
    /// encoding embedded at opcode 13's response is canonical on the
    /// wire too.
    #[test]
    fn audit_page_responses_roundtrip_and_reject_prefixes(page in arb_audit_page()) {
        let enc = wormnet::protocol::encode_response(
            &wormnet::protocol::NetResponse::AuditEvents(page.clone()),
        );
        match decode_response(&enc).unwrap() {
            wormnet::protocol::NetResponse::AuditEvents(got) => prop_assert_eq!(got, page),
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
        for cut in 0..enc.len() {
            prop_assert!(decode_response(&enc[..cut]).is_err());
        }
    }

    /// Single-byte mutations of an audit-page response either fail to
    /// decode or decode to a *different* page — a peer cannot alias one
    /// chain into another with a bit flip (chain integrity itself is
    /// then enforced by `wormaudit::verify_chain`).
    #[test]
    fn audit_page_mutations_never_alias(page in arb_audit_page(), pos in any::<prop::sample::Index>(), flip in 1u8..255) {
        let enc = wormnet::protocol::encode_response(
            &wormnet::protocol::NetResponse::AuditEvents(page.clone()),
        );
        let mut bad = enc.clone();
        let i = pos.index(bad.len());
        bad[i] ^= flip;
        if let Ok(wormnet::protocol::NetResponse::AuditEvents(got)) = decode_response(&bad) {
            prop_assert_ne!(got, page);
        }
    }

    /// Frame layer roundtrips arbitrary payloads under the cap.
    #[test]
    fn frames_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, 1024).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut r, 1024).unwrap(), Some(payload));
        prop_assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    /// Truncating a framed message at any byte yields Truncated (or a
    /// clean EOF when cut exactly at the frame boundary start).
    #[test]
    fn truncated_frames_error_cleanly(payload in proptest::collection::vec(any::<u8>(), 1..128), pos in any::<prop::sample::Index>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, 1024).unwrap();
        let cut = pos.index(buf.len());
        let mut r = Cursor::new(&buf[..cut]);
        match read_frame(&mut r, 1024) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(NetError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "unexpected result: {:?}", other),
        }
    }
}
