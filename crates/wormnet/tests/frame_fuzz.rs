//! Fuzz-style property tests of the network layer: frames and protocol
//! payloads arrive from an untrusted peer, so decoding must be total —
//! errors, never panics, never unbounded allocation — and valid
//! encodings must survive a roundtrip bit-for-bit.

use std::io::Cursor;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use strongworm::{RetentionPolicy, SerialNumber, WitnessMode};
use wormnet::frame::{read_frame, write_frame};
use wormnet::protocol::{decode_request, decode_response, encode_request, NetRequest};
use wormnet::NetError;
use wormstore::Shredder;

fn arb_policy() -> impl Strategy<Value = RetentionPolicy> {
    (any::<u32>(), 0u8..4).prop_map(|(secs, kind)| {
        let shredder = match kind {
            0 => Shredder::ZeroFill,
            1 => Shredder::MultiPass { passes: 3 },
            _ => Shredder::RandomPass,
        };
        RetentionPolicy::custom(Duration::from_secs(u64::from(secs)), shredder)
    })
}

fn arb_request() -> impl Strategy<Value = NetRequest> {
    prop_oneof![
        (
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..5),
            arb_policy(),
            any::<u32>(),
            0u8..3,
        )
            .prop_map(|(records, policy, flags, w)| NetRequest::Write {
                records: records.into_iter().map(Bytes::from).collect(),
                policy,
                flags,
                witness: match w {
                    0 => WitnessMode::Strong,
                    1 => WitnessMode::Deferred,
                    _ => WitnessMode::Hmac,
                },
            }),
        any::<u64>().prop_map(|sn| NetRequest::Read {
            sn: SerialNumber(sn)
        }),
        any::<u64>().prop_map(|sn| NetRequest::Delete {
            sn: SerialNumber(sn)
        }),
        Just(NetRequest::Tick),
        Just(NetRequest::GetKeys),
        Just(NetRequest::GetCompositeHead),
        Just(NetRequest::GetShardKeys),
    ]
}

proptest! {
    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Valid requests roundtrip exactly; every strict prefix fails.
    #[test]
    fn requests_roundtrip_and_reject_prefixes(req in arb_request()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc).unwrap(), req);
        for cut in 0..enc.len() {
            prop_assert!(decode_request(&enc[..cut]).is_err());
        }
    }

    /// Single-byte mutations either fail to decode or decode to a
    /// different request — no silent aliasing of hostile edits.
    #[test]
    fn mutations_never_alias(req in arb_request(), pos in any::<prop::sample::Index>(), flip in 1u8..255) {
        let enc = encode_request(&req);
        let mut bad = enc.clone();
        let i = pos.index(bad.len());
        bad[i] ^= flip;
        if let Ok(decoded) = decode_request(&bad) {
            prop_assert_ne!(decoded, req);
        }
    }

    /// Frame layer roundtrips arbitrary payloads under the cap.
    #[test]
    fn frames_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, 1024).unwrap();
        let mut r = Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut r, 1024).unwrap(), Some(payload));
        prop_assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    /// Truncating a framed message at any byte yields Truncated (or a
    /// clean EOF when cut exactly at the frame boundary start).
    #[test]
    fn truncated_frames_error_cleanly(payload in proptest::collection::vec(any::<u8>(), 1..128), pos in any::<prop::sample::Index>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, 1024).unwrap();
        let cut = pos.index(buf.len());
        let mut r = Cursor::new(&buf[..cut]);
        match read_frame(&mut r, 1024) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(NetError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "unexpected result: {:?}", other),
        }
    }
}
