//! End-to-end network tests: a real `NetServer` on loopback, driven by
//! concurrent `RemoteWormClient`s, with every response verified
//! client-side — plus a byte-flipping proxy proving that in-flight
//! tampering cannot survive verification.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Clock, VirtualClock};
use strongworm::{
    ReadVerdict, RegulatoryAuthority, RetentionPolicy, SerialNumber, ShardedWormServer, WormConfig,
    WormServer,
};
use wormnet::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use wormnet::{NetError, NetServer, NetServerConfig, RemoteWormClient};
use wormstore::Shredder;

const CLIENTS: usize = 4;

struct Harness {
    net: NetServer,
    /// Retained so tests can inspect gauges and the flight recorder
    /// after `net.shutdown()` (the registry outlives the listener).
    server: Arc<WormServer>,
    clock: Arc<VirtualClock>,
    regulator: RegulatoryAuthority,
}

fn boot(config: NetServerConfig) -> Harness {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(7777);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server = Arc::new(
        WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public()).unwrap(),
    );
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", config).unwrap();
    Harness {
        net,
        server,
        clock,
        regulator,
    }
}

fn policy(secs: u64) -> RetentionPolicy {
    RetentionPolicy::custom(Duration::from_secs(secs), Shredder::ZeroFill)
}

#[test]
fn concurrent_clients_write_read_delete_all_verified() {
    let h = boot(NetServerConfig::default());
    let addr = h.net.local_addr();

    // Bootstrap the verifier over the wire, like a branch-office client.
    let verifier = {
        let mut c = RemoteWormClient::connect(addr).unwrap();
        Arc::new(
            c.bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
                .unwrap(),
        )
    };

    // Three barriers: start together, pause while the main thread
    // expires retention, resume for the delete phase.
    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let written = Arc::new(Barrier::new(CLIENTS + 1));
    let expired = Arc::new(Barrier::new(CLIENTS + 1));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let verifier = verifier.clone();
            let (start, written, expired) = (start.clone(), written.clone(), expired.clone());
            std::thread::spawn(move || {
                let mut client = RemoteWormClient::connect(addr).unwrap();
                start.wait();

                // Write a multi-record VR, then read it back verified.
                let body = format!("client-{t} record");
                let sn = client
                    .write(&[body.as_bytes(), b"second extent"], policy(60))
                    .unwrap();
                let (verdict, outcome) = client.read_verified(sn, &verifier).unwrap();
                assert_eq!(verdict, ReadVerdict::Intact { sn });
                assert_eq!(outcome.kind(), "data");

                written.wait();
                expired.wait();

                // Retention has lapsed: drive the deletion and verify
                // the returned evidence end-to-end.
                let outcome = client.delete(sn).unwrap();
                assert_eq!(outcome.kind(), "deleted");
                assert!(matches!(
                    verifier.verify_read(sn, &outcome).unwrap(),
                    ReadVerdict::ConfirmedDeleted { .. }
                ));

                // A never-allocated SN yields a verifiable absence proof.
                let absent = SerialNumber(1_000_000 + t as u64);
                let (verdict, _) = client.read_verified(absent, &verifier).unwrap();
                assert_eq!(verdict, ReadVerdict::ConfirmedNeverExisted);
            })
        })
        .collect();

    start.wait();
    written.wait();
    h.clock.advance(Duration::from_secs(61));
    expired.wait();

    for t in threads {
        t.join().expect("client thread panicked");
    }
    assert!(h.net.requests_served() >= (CLIENTS * 4) as u64);
    h.net.shutdown();
}

#[test]
fn litigation_hold_blocks_deletion_over_the_wire() {
    let h = boot(NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();

    let sn = client.write(&[b"under investigation"], policy(10)).unwrap();
    let now = h.clock.now();
    let hold = h
        .regulator
        .issue_hold(sn, now, 99, now.after(Duration::from_secs(3600)));
    client.lit_hold(hold).unwrap();

    // Retention lapses, but the hold keeps the record alive.
    h.clock.advance(Duration::from_secs(11));
    let outcome = client.delete(sn).unwrap();
    assert_eq!(outcome.kind(), "data");
    assert_eq!(
        verifier.verify_read(sn, &outcome).unwrap(),
        ReadVerdict::Intact { sn }
    );

    // Release the hold; now deletion goes through and proves itself.
    let release = h.regulator.issue_release(sn, h.clock.now(), 99);
    client.lit_release(release).unwrap();
    let outcome = client.delete(sn).unwrap();
    assert!(matches!(
        verifier.verify_read(sn, &outcome).unwrap(),
        ReadVerdict::ConfirmedDeleted { .. }
    ));
    h.net.shutdown();
}

/// One-connection proxy that relays frames both ways but flips the
/// last payload byte of every server→client frame.
fn tampering_proxy(upstream: SocketAddr) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (client_side, _) = listener.accept().unwrap();
        let server_side = TcpStream::connect(upstream).unwrap();
        let mut c_read = client_side.try_clone().unwrap();
        let mut s_write = server_side.try_clone().unwrap();
        // Client → server: pass through untouched.
        std::thread::spawn(move || {
            while let Ok(Some(frame)) = read_frame(&mut c_read, DEFAULT_MAX_FRAME) {
                if write_frame(&mut s_write, &frame, DEFAULT_MAX_FRAME).is_err() {
                    break;
                }
            }
        });
        // Server → client: flip the final byte of each response, which
        // lands in the head certificate's signature bytes.
        let mut s_read = server_side;
        let mut c_write = client_side;
        while let Ok(Some(mut frame)) = read_frame(&mut s_read, DEFAULT_MAX_FRAME) {
            if let Some(last) = frame.last_mut() {
                *last ^= 0xFF;
            }
            if write_frame(&mut c_write, &frame, DEFAULT_MAX_FRAME).is_err() {
                break;
            }
        }
    });
    addr
}

#[test]
fn in_flight_tampering_fails_verification() {
    let h = boot(NetServerConfig::default());

    // Honest path: write the record and build the verifier directly.
    let mut honest = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = honest
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();
    let sn = honest.write(&[b"evidence"], policy(3600)).unwrap();
    assert_eq!(
        honest.read_verified(sn, &verifier).unwrap().0,
        ReadVerdict::Intact { sn }
    );

    // Tampered path: same request through the byte-flipping proxy.
    let proxy = tampering_proxy(h.net.local_addr());
    let mut victim = RemoteWormClient::connect(proxy).unwrap();
    match victim.read_verified(sn, &verifier) {
        Err(NetError::Verify(e)) => {
            // The flipped byte sits inside SCPU-signed material; which
            // check trips first is an implementation detail, but it
            // must be a verification failure, not silent acceptance.
            let _ = e;
        }
        Err(NetError::Wire(_)) => {
            panic!("tampering corrupted framing instead of signed bytes; adjust the proxy")
        }
        other => panic!("tampered read must fail verification, got {other:?}"),
    }
    h.net.shutdown();
}

#[test]
fn stats_deltas_match_operations_over_the_wire() {
    let h = boot(NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();

    let sn = client.write(&[b"measured record"], policy(60)).unwrap();
    let before = client.stats().unwrap();

    // A burst of verified reads, one store, one (expired) delete — all
    // on this single connection, so the wire deltas are exact.
    const READS: u64 = 10;
    for _ in 0..READS {
        assert_eq!(
            client.read_verified(sn, &verifier).unwrap().0,
            ReadVerdict::Intact { sn }
        );
    }
    let sn2 = client.write(&[b"second record"], policy(3600)).unwrap();
    assert_eq!(
        client.read_verified(sn2, &verifier).unwrap().0,
        ReadVerdict::Intact { sn: sn2 }
    );
    h.clock.advance(Duration::from_secs(61));
    let outcome = client.delete(sn).unwrap();
    assert!(matches!(
        verifier.verify_read(sn, &outcome).unwrap(),
        ReadVerdict::ConfirmedDeleted { .. }
    ));
    let after = client.stats().unwrap();

    let op_delta = |name: &str| {
        after.op(name).map_or(0, |o| o.total()) - before.op(name).map_or(0, |o| o.total())
    };
    // Server-side op counts: each verified read is one server.read, the
    // delete re-reads once more; one server.write for the store.
    assert_eq!(op_delta("server.read"), READS + 2);
    assert_eq!(op_delta("server.write"), 1);
    // The expired delete minted exactly one deletion proof.
    assert_eq!(
        after.counter("witness.deletion_proof") - before.counter("witness.deletion_proof"),
        1
    );
    // Wire accounting: requests between the snapshots plus the second
    // Stats poll itself (frames_in is counted before a request is
    // handled, so each snapshot includes its own request's frame).
    let requests_between = READS + 3; // reads + write + read-back + delete
    assert_eq!(
        after.counter("net.frames_in") - before.counter("net.frames_in"),
        requests_between + 1
    );
    assert_eq!(
        after.counter("net.frames_out") - before.counter("net.frames_out"),
        requests_between + 1
    );
    assert!(after.counter("net.bytes_in") > before.counter("net.bytes_in"));
    assert!(after.counter("net.bytes_out") > before.counter("net.bytes_out"));
    // The request op settles after its response is written, so the
    // delta also comes out to requests-between plus one Stats poll
    // (the first poll's completion replaces the second's).
    assert_eq!(op_delta("net.request"), requests_between + 1);
    assert!(after.counter("net.conn_accepted") >= 1);

    // The registry invariant holds for every op that crossed the wire.
    for (name, op) in &after.ops {
        assert_eq!(
            op.ok + op.err,
            op.latency.count(),
            "op {name} histogram count must match its counters"
        );
    }
    h.net.shutdown();
}

/// One-connection proxy that flips the FIRST payload byte of every
/// server→client frame. The first byte sits in the response's domain
/// tag, so corruption is guaranteed to surface as a decode error (the
/// stats snapshot is unsigned — flipping a trailing value byte would
/// alter a counter silently, which is exactly why stats are documented
/// as diagnostics, not evidence).
fn first_byte_tampering_proxy(upstream: SocketAddr) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (client_side, _) = listener.accept().unwrap();
        let server_side = TcpStream::connect(upstream).unwrap();
        let mut c_read = client_side.try_clone().unwrap();
        let mut s_write = server_side.try_clone().unwrap();
        std::thread::spawn(move || {
            while let Ok(Some(frame)) = read_frame(&mut c_read, DEFAULT_MAX_FRAME) {
                if write_frame(&mut s_write, &frame, DEFAULT_MAX_FRAME).is_err() {
                    break;
                }
            }
        });
        let mut s_read = server_side;
        let mut c_write = client_side;
        while let Ok(Some(mut frame)) = read_frame(&mut s_read, DEFAULT_MAX_FRAME) {
            if let Some(first) = frame.first_mut() {
                *first ^= 0xFF;
            }
            if write_frame(&mut c_write, &frame, DEFAULT_MAX_FRAME).is_err() {
                break;
            }
        }
    });
    addr
}

#[test]
fn corrupted_stats_frame_is_a_decode_error_not_a_panic() {
    let h = boot(NetServerConfig::default());
    let proxy = first_byte_tampering_proxy(h.net.local_addr());
    let mut victim = RemoteWormClient::connect(proxy).unwrap();
    match victim.stats() {
        Err(NetError::Wire(_)) => {}
        other => panic!("corrupted stats frame must fail decoding, got {other:?}"),
    }
    h.net.shutdown();
}

#[test]
fn hostile_and_malformed_clients_cannot_break_the_server() {
    let h = boot(NetServerConfig {
        max_frame: 4096,
        ..NetServerConfig::default()
    });
    let addr = h.net.local_addr();

    // Oversized frame announcement: the server must drop the
    // connection without allocating or serving.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[0u8; 64], DEFAULT_MAX_FRAME).unwrap();
        // 64-byte frame is fine but garbage: server answers with a
        // bad-request error rather than dying.
        let resp = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
        let decoded = wormnet::protocol::decode_response(&resp).unwrap();
        assert!(matches!(
            decoded,
            wormnet::protocol::NetResponse::Error { code, .. } if code == wormnet::protocol::CODE_BAD_REQUEST
        ));

        // Now announce a frame beyond the server's 4 KiB cap.
        use std::io::Write as _;
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        // The server hangs up on us; the next read sees EOF/reset.
        let gone = read_frame(&mut raw, DEFAULT_MAX_FRAME);
        assert!(matches!(gone, Ok(None) | Err(_)));
    }

    // A well-behaved client connecting afterwards is served normally.
    let mut client = RemoteWormClient::connect(addr).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();
    let sn = client.write(&[b"still alive"], policy(3600)).unwrap();
    assert_eq!(
        client.read_verified(sn, &verifier).unwrap().0,
        ReadVerdict::Intact { sn }
    );
    h.net.shutdown();
}

#[test]
fn remote_request_span_trees_link_net_to_planes_and_store() {
    let h = boot(NetServerConfig::default());
    // Threshold 0: every request counts as "slow", so every span tree
    // is captured — the test's injection knob for deterministic capture.
    h.server.trace().flight().set_slow_threshold_ns(0);
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    client.set_request_tracing(true);
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();

    let sn = client.write(&[b"traced record"], policy(3600)).unwrap();
    let write_trace = client.last_trace_id().expect("write minted a trace id");
    assert_eq!(
        client.read_verified(sn, &verifier).unwrap().0,
        ReadVerdict::Intact { sn }
    );
    let read_trace = client.last_trace_id().expect("read minted a trace id");
    assert_ne!(write_trace, read_trace, "each request gets its own trace");

    // Ids must be saved BEFORE this call — fetching traces is itself a
    // traced request that advances last_trace_id.
    let traces = client.traces().unwrap();
    let find = |id: u64| {
        traces
            .iter()
            .find(|t| t.trace_id == id)
            .unwrap_or_else(|| panic!("trace {id:#x} not captured"))
    };

    // Read request: net.request (rooted at the client's parent 0)
    // → server.read (read plane) → store.read (device I/O).
    let rt = find(read_trace);
    let span = |op: &str| {
        rt.spans
            .iter()
            .find(|s| s.op == op)
            .unwrap_or_else(|| panic!("span {op} missing from read trace"))
    };
    let root = span("net.request");
    assert_eq!(root.parent_span, 0);
    assert_eq!(root.plane, wormtrace::Plane::Net);
    let read = span("server.read");
    assert_eq!(read.parent_span, root.span_id);
    assert_eq!(read.sn, Some(sn.0));
    let store = span("store.read");
    assert_eq!(store.parent_span, read.span_id);
    assert_eq!(store.plane, wormtrace::Plane::Store);
    assert!(rt.spans.iter().all(|s| s.ok), "read path spans all succeed");
    // The tree is connected: every non-root parent is a span in it.
    for s in &rt.spans {
        assert!(
            s.parent_span == 0 || rt.spans.iter().any(|p| p.span_id == s.parent_span),
            "span {} has a dangling parent",
            s.op
        );
    }

    // Write request: the SCPU's virtual-time cost and the store append
    // both attribute under the witness-plane span.
    let wt = find(write_trace);
    let wspan = |op: &str| {
        wt.spans
            .iter()
            .find(|s| s.op == op)
            .unwrap_or_else(|| panic!("span {op} missing from write trace"))
    };
    let wroot = wspan("net.request");
    let write = wspan("server.write");
    assert_eq!(write.parent_span, wroot.span_id);
    assert_eq!(write.plane, wormtrace::Plane::Witness);
    assert_eq!(write.sn, Some(sn.0));
    let scpu = wspan("scpu.write");
    assert_eq!(scpu.parent_span, write.span_id);
    assert_eq!(scpu.plane, wormtrace::Plane::Scpu);
    let append = wspan("store.write");
    assert_eq!(append.parent_span, write.span_id);
    h.net.shutdown();
}

#[test]
fn untraced_requests_still_served_and_rooted_with_server_minted_ids() {
    let h = boot(NetServerConfig::default());
    h.server.trace().flight().set_slow_threshold_ns(0);
    // A pre-envelope client: plain opcodes, no trace context on the
    // wire (tracing stays off — this is the old wire format).
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    client.tick().unwrap();
    assert!(client.last_trace_id().is_none());
    let traces = client.traces().unwrap();
    assert!(!traces.is_empty(), "untraced requests still capture");
    for t in &traces {
        assert_ne!(t.trace_id, 0, "server must mint a nonzero trace id");
        let root = t
            .spans
            .iter()
            .find(|s| s.op == "net.request")
            .expect("every capture has a net root span");
        assert_eq!(root.parent_span, 0);
    }
    h.net.shutdown();
}

#[test]
fn malformed_trace_envelope_is_bad_request_and_connection_survives() {
    let h = boot(NetServerConfig::default());
    let mut raw = TcpStream::connect(h.net.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let good = wormnet::protocol::encode_request_traced(
        &wormnet::protocol::NetRequest::Tick,
        wormtrace::TraceContext {
            trace_id: 42,
            parent_span: 7,
        },
    );
    let expect_bad_request = |raw: &mut TcpStream, frame: &[u8]| {
        write_frame(raw, frame, DEFAULT_MAX_FRAME).unwrap();
        let resp = read_frame(raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
        match wormnet::protocol::decode_response(&resp).unwrap() {
            wormnet::protocol::NetResponse::Error { code, .. } => {
                assert_eq!(code, wormnet::protocol::CODE_BAD_REQUEST);
            }
            other => panic!("malformed envelope must fail, got {other:?}"),
        }
    };

    // Truncations throughout the envelope — mid-context, mid-length,
    // mid-inner-request — all come back as errors, never a hangup.
    for len in [good.len() - 1, good.len() / 2, 15, 9] {
        expect_bad_request(&mut raw, &good[..len]);
    }
    // Garbage where the inner request should be.
    let mut garbage = good.clone();
    let n = garbage.len();
    for b in &mut garbage[n - 8..] {
        *b ^= 0xA5;
    }
    expect_bad_request(&mut raw, &garbage);

    // The same connection still serves a well-formed request after all
    // five rejections.
    write_frame(
        &mut raw,
        &wormnet::protocol::encode_request(&wormnet::protocol::NetRequest::Tick),
        DEFAULT_MAX_FRAME,
    )
    .unwrap();
    let resp = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(
        wormnet::protocol::decode_response(&resp).unwrap(),
        wormnet::protocol::NetResponse::Ack
    ));
    h.net.shutdown();
}

#[test]
fn flight_recorder_bounds_memory_and_captures_slow_and_failing_requests() {
    let h = boot(NetServerConfig::default());
    let flight = h.server.trace().flight();
    let capacity = flight.capacity();

    // Injected slowness: threshold 0 makes every request over-threshold.
    flight.set_slow_threshold_ns(0);
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    client.set_request_tracing(true);
    let total = capacity as u64 + 10;
    for _ in 0..total {
        client.tick().unwrap();
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.counter("net.traces_captured") >= total,
        "every over-threshold request must be offered and captured"
    );
    let traces = client.traces().unwrap();
    assert!(
        traces.len() <= capacity,
        "ring holds {} traces, capacity {capacity}: memory bound violated",
        traces.len()
    );
    assert!(traces
        .iter()
        .all(|t| t.trigger == wormtrace::TraceTrigger::Slow));

    // Injected failure: with the threshold at MAX, only errors capture.
    flight.set_slow_threshold_ns(u64::MAX);
    let captured_before = client.stats().unwrap().counter("net.traces_captured");
    let sn = client.write(&[b"held"], policy(60)).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    let imposter = RegulatoryAuthority::generate(&mut rng, 512);
    let now = h.clock.now();
    let bad_hold = imposter.issue_hold(sn, now, 1, now.after(Duration::from_secs(60)));
    let failing_trace = match client.lit_hold(bad_hold) {
        Err(NetError::Remote { .. }) => client.last_trace_id().unwrap(),
        other => panic!("imposter hold must be rejected, got {other:?}"),
    };
    let traces = client.traces().unwrap();
    let errored = traces
        .iter()
        .find(|t| t.trace_id == failing_trace)
        .expect("failing request captured by trigger=error");
    assert_eq!(errored.trigger, wormtrace::TraceTrigger::Error);
    assert!(errored.spans.iter().any(|s| s.op == "net.request" && !s.ok));
    // The successful write/stats/traces requests in between did not
    // capture: exactly one new entry.
    let captured_after = client.stats().unwrap().counter("net.traces_captured");
    assert_eq!(captured_after, captured_before + 1);
    h.net.shutdown();
}

struct ShardedHarness {
    net: NetServer,
    server: Arc<ShardedWormServer>,
    clock: Arc<VirtualClock>,
}

fn boot_sharded(shards: u32, config: NetServerConfig) -> ShardedHarness {
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(4242);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let server = Arc::new(
        ShardedWormServer::new(
            WormConfig::test_small(),
            clock.clone(),
            regulator.public(),
            shards,
        )
        .unwrap(),
    );
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", config).unwrap();
    ShardedHarness { net, server, clock }
}

#[test]
fn sharded_writes_fan_out_and_reads_verify_across_lanes() {
    let h = boot_sharded(3, NetServerConfig::default());
    let addr = h.net.local_addr();

    // Bootstrap one composite verifier over the wire: per-shard keys in
    // lane order, coordinator first.
    let verifier = {
        let mut c = RemoteWormClient::connect(addr).unwrap();
        Arc::new(
            c.bootstrap_composite_verifier(Duration::from_secs(300), h.clock.clone())
                .unwrap(),
        )
    };
    assert_eq!(verifier.shard_count(), 3);

    // Concurrent clients write; each verifies its own records as it
    // goes. Round-robin on the server fans the writes across lanes.
    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let verifier = verifier.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let mut client = RemoteWormClient::connect(addr).unwrap();
                start.wait();
                (0..3u8)
                    .map(|i| {
                        let body = format!("client-{t} record-{i}");
                        let sn = client.write(&[body.as_bytes()], policy(100_000)).unwrap();
                        let (verdict, _) = client.read_verified(sn, &verifier).unwrap();
                        assert_eq!(verdict, ReadVerdict::Intact { sn });
                        sn
                    })
                    .collect::<Vec<SerialNumber>>()
            })
        })
        .collect();
    start.wait();
    let mut sns = Vec::new();
    for t in threads {
        sns.extend(t.join().expect("client thread panicked"));
    }

    // The writes really fanned out: every shard lane got some.
    let lanes: std::collections::BTreeSet<u32> = sns.iter().map(|sn| sn.lane()).collect();
    assert_eq!(lanes.len(), 3, "12 round-robin writes must touch 3 lanes");

    // Cross-shard verified reads: one connection reads every record,
    // spanning every shard boundary, each outcome verified under the
    // owning lane's keys.
    let mut reader = RemoteWormClient::connect(addr).unwrap();
    for sn in &sns {
        let (verdict, outcome) = reader.read_verified(*sn, &verifier).unwrap();
        assert_eq!(verdict, ReadVerdict::Intact { sn: *sn });
        assert_eq!(outcome.kind(), "data");
    }

    // The composite freshness head covers all three lanes and verifies
    // end-to-end on the same connection.
    let composite = reader.composite_head_verified(&verifier).unwrap();
    assert_eq!(composite.binding.shard_count, 3);
    assert_eq!(composite.heads.len(), 3);

    // An SN outside every lane is a clean remote error, not a hangup.
    let foreign = SerialNumber(SerialNumber::lane_origin(9) + 1);
    match reader.read_raw(foreign) {
        Err(NetError::Remote { .. }) => {}
        other => panic!("out-of-lane SN must be a remote error, got {other:?}"),
    }
    // ... and the connection still serves verified reads afterwards.
    let first = *sns.first().unwrap();
    let (verdict, _) = reader.read_verified(first, &verifier).unwrap();
    assert_eq!(verdict, ReadVerdict::Intact { sn: first });
    h.net.shutdown();
}

#[test]
fn tampered_composite_head_fails_verification_without_dropping_connection() {
    let h = boot_sharded(2, NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = client
        .bootstrap_composite_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();

    let sn = client.write(&[b"cross-checked"], policy(100_000)).unwrap();

    // Mint the composite, then poison the cached copy server-side: the
    // host now serves a composite whose signed root does not match its
    // heads — the model of a host doctoring freshness evidence.
    h.server.composite_head().unwrap();
    h.server.tamper_composite_for_test();
    match client.composite_head_verified(&verifier) {
        Err(NetError::Verify(_)) => {}
        other => panic!("tampered composite must fail verification, got {other:?}"),
    }

    // The connection survives the rejection: the same client still
    // performs verified reads against the owning shard.
    let (verdict, _) = client.read_verified(sn, &verifier).unwrap();
    assert_eq!(verdict, ReadVerdict::Intact { sn });

    // Once the cache lapses, the lazily re-minted composite verifies
    // again on this same connection — the poison washes out.
    h.clock.advance(Duration::from_secs(10_000));
    let composite = client.composite_head_verified(&verifier).unwrap();
    assert_eq!(composite.binding.shard_count, 2);
    h.net.shutdown();
}

#[test]
fn single_server_answers_shard_aware_requests_degenerately() {
    // A client that only speaks the shard-aware bootstrap still works
    // against a single-SCPU server: one lane, degenerate composite.
    let h = boot(NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = client
        .bootstrap_composite_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();
    assert_eq!(verifier.shard_count(), 1);
    let sn = client.write(&[b"one lane"], policy(3600)).unwrap();
    let (verdict, _) = client.read_verified(sn, &verifier).unwrap();
    assert_eq!(verdict, ReadVerdict::Intact { sn });
    let composite = client.composite_head_verified(&verifier).unwrap();
    assert_eq!(composite.binding.shard_count, 1);
    h.net.shutdown();
}

#[test]
fn queue_depth_gauge_drains_to_zero_after_connection_storm_and_shutdown() {
    let h = boot(NetServerConfig {
        workers: 1,
        queue_depth: 4,
        read_timeout: Duration::from_millis(200),
        ..NetServerConfig::default()
    });
    let addr = h.net.local_addr();
    // Storm of idle connections: one occupies the lone worker, a few
    // sit queued, the rest are shed by the acceptor. None sends a
    // request, so queued entries are still in flight at shutdown —
    // exactly the case that used to leak gauge increments.
    let conns: Vec<TcpStream> = (0..16).map(|_| TcpStream::connect(addr).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(100));
    h.net.shutdown();
    drop(conns);
    assert_eq!(
        h.server.stats_snapshot().gauge("net.queue_depth"),
        Some(0),
        "queue depth gauge must drain to zero on shutdown"
    );
}

#[test]
fn shed_connections_receive_a_busy_frame_not_silent_eof() {
    let h = boot(NetServerConfig {
        max_connections: 2,
        ..NetServerConfig::default()
    });
    let addr = h.net.local_addr();

    // Fill the admission cap with idle connections, then wait until the
    // reactor has actually registered both — a fixed sleep races the
    // accept loop under load, and a connection that lands before the
    // cap-fillers are counted is admitted instead of shed.
    let _held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = h.server.stats_snapshot();
        let conns: u64 = (0..8)
            .filter_map(|i| snap.gauge(&format!("net.worker{i}.conns")))
            .sum();
        if conns >= 2 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The next arrival is shed — but with an explicit CODE_BUSY error
    // frame before the close, so the client can tell load-shedding
    // from a crash.
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = read_frame(&mut shed, DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("shed connection must get a busy frame, not silent EOF");
    match wormnet::protocol::decode_response(&payload).unwrap() {
        wormnet::protocol::NetResponse::Error { code, .. } => {
            assert_eq!(code, wormnet::protocol::CODE_BUSY);
        }
        other => panic!("expected busy error frame, got {other:?}"),
    }
    // After the courtesy frame the connection is closed.
    assert!(matches!(
        read_frame(&mut shed, DEFAULT_MAX_FRAME),
        Ok(None) | Err(_)
    ));

    // The typed client surfaces the same shed as a Remote error.
    let mut typed = RemoteWormClient::connect(addr).unwrap();
    match typed.tick() {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, wormnet::protocol::CODE_BUSY),
        other => panic!("expected remote busy error, got {other:?}"),
    }

    h.net.shutdown();
    let snapshot = h.server.stats_snapshot();
    assert!(snapshot.counter("net.conn_shed") >= 2);
}

#[test]
fn pipelined_responses_arrive_in_request_order_and_verify() {
    let h = boot(NetServerConfig::default());
    let addr = h.net.local_addr();
    let mut client = RemoteWormClient::connect(addr).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();

    let sns: Vec<SerialNumber> = (0..12)
        .map(|i| {
            client
                .write(&[format!("pipelined record {i}").as_bytes()], policy(3600))
                .unwrap()
        })
        .collect();

    // Window of 4, twelve reads in flight: responses must come back in
    // request order, every one verifying as the SN it was asked for.
    let mut responses = Vec::new();
    let mut pipe = client.pipeline(4);
    for sn in &sns {
        if let Some(resp) = pipe.send(&wormnet::NetRequest::Read { sn: *sn }).unwrap() {
            responses.push(resp);
        }
    }
    assert!(pipe.in_flight() > 0);
    responses.extend(pipe.finish().unwrap());

    assert_eq!(responses.len(), sns.len());
    for (sn, resp) in sns.iter().zip(&responses) {
        match resp {
            wormnet::NetResponse::Outcome(outcome) => {
                assert_eq!(
                    verifier.verify_read(*sn, outcome).unwrap(),
                    ReadVerdict::Intact { sn: *sn },
                    "response out of order or tampered for {sn:?}"
                );
            }
            other => panic!("expected Outcome, got {other:?}"),
        }
    }

    // Abandoning a pipeline mid-flight poisons the session instead of
    // silently desynchronizing request/response pairing.
    {
        let mut pipe = client.pipeline(4);
        pipe.send(&wormnet::NetRequest::Tick).unwrap();
        // Dropped with one response in flight.
    }
    assert!(matches!(client.tick(), Err(NetError::Protocol(_))));

    h.net.shutdown();
}

#[test]
fn interleaved_traced_and_untraced_frames_share_one_pipelined_connection() {
    let h = boot(NetServerConfig::default());
    let addr = h.net.local_addr();
    let mut client = RemoteWormClient::connect(addr).unwrap();
    let sn = client.write(&[b"traced and bare"], policy(3600)).unwrap();

    // Alternate bare frames and opcode-9 trace envelopes within one
    // pipelined batch: the server must serve both shapes interleaved
    // on a single connection, in order.
    let mut responses = Vec::new();
    let mut traced_ids = Vec::new();
    {
        let mut pipe = client.pipeline(3);
        for i in 0..10 {
            // Safety of toggling mid-batch: encoding happens at send
            // time, so each frame independently carries (or omits) its
            // envelope.
            pipe.set_request_tracing(i % 2 == 0);
            if let Some(resp) = pipe.send(&wormnet::NetRequest::Read { sn }).unwrap() {
                responses.push(resp);
            }
            if i % 2 == 0 {
                traced_ids.push(pipe.last_trace_id());
            }
        }
        responses.extend(pipe.finish().unwrap());
    }
    assert_eq!(responses.len(), 10);
    for resp in &responses {
        assert!(
            matches!(resp, wormnet::NetResponse::Outcome(o) if o.kind() == "data"),
            "every interleaved request must be served, got {resp:?}"
        );
    }
    // Every traced frame minted a distinct id.
    let ids: Vec<u64> = traced_ids.into_iter().flatten().collect();
    assert_eq!(ids.len(), 5);
    let dedup: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(dedup.len(), ids.len());

    h.net.shutdown();
}

#[test]
fn malformed_frame_mid_pipeline_kills_only_that_connection() {
    let h = boot(NetServerConfig {
        max_frame: 4096,
        ..NetServerConfig::default()
    });
    let addr = h.net.local_addr();

    // One write carrying two valid pipelined requests followed by an
    // oversized frame announcement.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut burst = Vec::new();
    for _ in 0..2 {
        wormnet::frame::append_frame(
            &mut burst,
            &wormnet::protocol::encode_request(&wormnet::NetRequest::GetKeys),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
    }
    burst.extend_from_slice(&u32::MAX.to_be_bytes());
    {
        use std::io::Write as _;
        bad.write_all(&burst).unwrap();
    }

    // The valid prefix is answered — responses owed before the
    // violation still flush — then the connection dies.
    for _ in 0..2 {
        let payload = read_frame(&mut bad, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(
            wormnet::protocol::decode_response(&payload).unwrap(),
            wormnet::protocol::NetResponse::Keys { .. }
        ));
    }
    assert!(matches!(
        read_frame(&mut bad, DEFAULT_MAX_FRAME),
        Ok(None) | Err(_)
    ));

    // A neighbour connection is untouched by the violation.
    let mut client = RemoteWormClient::connect(addr).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();
    let sn = client
        .write(&[b"unaffected neighbour"], policy(3600))
        .unwrap();
    assert_eq!(
        client.read_verified(sn, &verifier).unwrap().0,
        ReadVerdict::Intact { sn }
    );
    h.net.shutdown();
}

#[test]
fn audit_chain_paginates_over_the_wire_and_verifies() {
    let h = boot(NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let (keys, _) = client.fetch_keys().unwrap();

    // Generate a spread of integrity events, then anchor via Tick.
    for i in 0..4u8 {
        client.write(&[&[i]], policy(1)).unwrap();
    }
    h.clock.advance(Duration::from_secs(2));
    client.tick().unwrap();

    // Paginate with a tiny window; pages must be dense and contiguous.
    let mut events = Vec::new();
    let mut anchors = Vec::new();
    let mut cursor = 0u64;
    loop {
        let page = client.audit_events(cursor, 2).unwrap();
        if page.events.is_empty() {
            break;
        }
        assert!(page.events.len() <= 2, "server must honour the page cap");
        assert_eq!(
            page.events.first().unwrap().seq,
            cursor,
            "pages must resume exactly at the cursor"
        );
        cursor = page.events.last().unwrap().seq + 1;
        events.extend(page.events);
        anchors.extend(page.anchors);
    }
    assert!(events.len() >= 4, "writes and ticks must have audited");

    // The stitched pages replay as one clean, fully anchored chain.
    anchors.sort_by_key(|a: &wormaudit::AuditAnchor| a.seq);
    anchors.dedup_by_key(|a| a.seq);
    let whole = wormaudit::AuditPage { events, anchors };
    let report = wormaudit::verify_chain(&whole, &[keys.sign]);
    assert!(report.is_clean(), "{:?}", report.divergence);
    assert_eq!(report.unattested_tail, 0);

    // A cursor past the tip is an empty page, not an error.
    let empty = client.audit_events(u64::MAX, 16).unwrap();
    assert!(empty.events.is_empty());
    h.net.shutdown();
}

#[test]
fn tampered_audit_chain_is_detected_and_the_connection_survives() {
    let h = boot(NetServerConfig::default());
    let mut client = RemoteWormClient::connect(h.net.local_addr()).unwrap();
    let verifier = client
        .bootstrap_verifier(Duration::from_secs(300), h.clock.clone())
        .unwrap();
    let (keys, _) = client.fetch_keys().unwrap();

    let sn = client.write(&[b"audited"], policy(3600)).unwrap();
    client.tick().unwrap();
    let clean = wormaudit::verify_chain(
        &client.audit_events(0, 4096).unwrap(),
        std::slice::from_ref(&keys.sign),
    );
    assert!(clean.is_clean(), "{:?}", clean.divergence);

    // The host edits an already-chained journal entry in place — the
    // model of a server scrubbing its own audit trail.
    h.server.audit().tamper_event_for_test(0);
    let page = client.audit_events(0, 4096).unwrap();
    let report = wormaudit::verify_chain(&page, &[keys.sign]);
    let divergence = report.divergence.expect("tamper must surface on replay");
    assert_eq!(divergence.seq, 0, "replay reports the first divergence");

    // Detection is the client's verdict, not a transport failure: the
    // same connection still serves verified reads.
    assert_eq!(
        client.read_verified(sn, &verifier).unwrap().0,
        ReadVerdict::Intact { sn }
    );
    h.net.shutdown();
}

#[test]
fn audit_events_span_a_recovery_cycle_over_the_wire() {
    // Boot, commit, crash with a torn journal, resume, and serve the
    // resumed server over TCP: a remote auditor sees the recovery
    // incident in the chain and the chain still anchors and verifies.
    let clock = VirtualClock::new();
    let mut rng = StdRng::seed_from_u64(9090);
    let regulator = RegulatoryAuthority::generate(&mut rng, 512);
    let srv = WormServer::new(WormConfig::test_small(), clock.clone(), regulator.public()).unwrap();
    srv.write(&[b"committed"], policy(10_000)).unwrap();
    srv.write(&[b"torn-away"], policy(10_000)).unwrap();

    let (device, store, journal) = srv.into_parts();
    let mut torn = wormstore::Journal::from_bytes(journal.as_bytes().to_vec());
    torn.truncate_tail(40);
    let srv = Arc::new(
        WormServer::resume(device, store, torn, WormConfig::test_small(), clock.clone()).unwrap(),
    );
    let net = NetServer::bind(Arc::clone(&srv), "127.0.0.1:0", NetServerConfig::default()).unwrap();

    let mut client = RemoteWormClient::connect(net.local_addr()).unwrap();
    let (keys, _) = client.fetch_keys().unwrap();
    client.tick().unwrap();
    let page = client.audit_events(0, 4096).unwrap();
    assert!(
        page.events
            .iter()
            .any(|e| e.class == wormaudit::AuditClass::RecoveryTornTail),
        "remote auditor must see the torn-tail incident"
    );
    let report = wormaudit::verify_chain(&page, &[keys.sign]);
    assert!(report.is_clean(), "{:?}", report.divergence);
    assert_eq!(report.unattested_tail, 0);

    // Stats expose the same plane for cheap polling.
    let snap = client.stats().unwrap();
    assert!(snap.counter("audit.emitted") > 0);
    assert!(snap.counter("audit.anchored") >= 1);
    assert!(snap.gauge("audit.chain_height").unwrap_or(0) > 0);
    net.shutdown();
}

#[test]
fn shutdown_with_frames_in_flight_neither_hangs_nor_leaks_gauges() {
    let h = boot(NetServerConfig {
        workers: 2,
        ..NetServerConfig::default()
    });
    let addr = h.net.local_addr();

    // Stuff unread pipelined requests into several connections and
    // shut down without collecting any response: shutdown must join
    // cleanly (requests in flight are dropped with their connections)
    // and every connection-tracking gauge must drain to zero.
    let conns: Vec<TcpStream> = (0..6)
        .map(|_| {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut burst = Vec::new();
            for _ in 0..8 {
                wormnet::frame::append_frame(
                    &mut burst,
                    &wormnet::protocol::encode_request(&wormnet::NetRequest::Tick),
                    DEFAULT_MAX_FRAME,
                )
                .unwrap();
            }
            use std::io::Write as _;
            c.write_all(&burst).unwrap();
            c
        })
        .collect();

    h.net.shutdown();
    drop(conns);
    let snapshot = h.server.stats_snapshot();
    assert_eq!(snapshot.gauge("net.queue_depth"), Some(0));
    assert_eq!(
        snapshot.gauge("net.conns_open"),
        Some(0),
        "open-connection gauge must return to zero after shutdown"
    );
}
