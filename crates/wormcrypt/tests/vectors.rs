//! Known-answer and structural vectors for the crypto substrate, beyond
//! the per-module FIPS/RFC tests: PKCS#1 v1.5 encoding structure,
//! deterministic regression signatures, and additional published vectors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use wormcrypt::bignum::Ubig;
use wormcrypt::{ct_eq, Digest, HashAlg, Hmac, RsaPrivateKey, Sha1, Sha256};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn key512() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(&mut StdRng::seed_from_u64(0xC0FFEE), 512))
}

/// RSA signature = EM^d mod n; recovering EM with the public exponent
/// must yield the exact EMSA-PKCS1-v1_5 structure of RFC 8017 §9.2.
#[test]
fn pkcs1_v15_encoded_message_structure() {
    let key = key512();
    let msg = b"structure check";
    let sig = key.sign(msg, HashAlg::Sha256).unwrap();
    let s = Ubig::from_bytes_be(&sig);
    let em = s
        .pow_mod(key.public().e(), key.public().n())
        .to_bytes_be_padded(64);

    // 0x00 0x01 PS(0xFF..) 0x00 DigestInfo Hash — with |PS| >= 8.
    assert_eq!(em[0], 0x00);
    assert_eq!(em[1], 0x01);
    let sep = em[2..].iter().position(|&b| b == 0x00).expect("separator") + 2;
    assert!(sep - 2 >= 8, "padding string too short");
    assert!(em[2..sep].iter().all(|&b| b == 0xFF));
    // DigestInfo for SHA-256 (RFC 8017 §9.2 note 1).
    const DI: [u8; 19] = [
        0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
        0x05, 0x00, 0x04, 0x20,
    ];
    assert_eq!(&em[sep + 1..sep + 1 + 19], &DI);
    assert_eq!(&em[sep + 20..], &Sha256::digest(msg)[..]);
}

/// Signature values are a pure function of (key, message): deterministic
/// PKCS#1 v1.5 — a regression pin for the whole bignum/RSA stack. If any
/// arithmetic change alters this value, sign/verify may still round-trip
/// while silently diverging from the spec; this test catches that.
#[test]
fn deterministic_signature_regression() {
    let key = key512();
    let sig1 = key.sign(b"pinned message", HashAlg::Sha256).unwrap();
    let sig2 = key.sign(b"pinned message", HashAlg::Sha256).unwrap();
    assert_eq!(sig1, sig2, "PKCS#1 v1.5 must be deterministic");
    // Structural regression: correct length and verifies.
    assert_eq!(sig1.len(), 64);
    assert!(key
        .public()
        .verify(b"pinned message", &sig1, HashAlg::Sha256));
    // And the raw m^e^d == m identity holds for the encoded block.
    let m = Ubig::from_u64(0x1234_5678);
    let c = m.pow_mod(key.public().e(), key.public().n());
    let back = c.pow_mod(key.d(), key.public().n());
    assert_eq!(back, m);
}

/// Additional RFC 4231 HMAC-SHA256 cases (4 and 7).
#[test]
fn rfc4231_cases_4_and_7() {
    // Case 4: 25-byte incrementing key, 50x 0xcd data.
    let key: Vec<u8> = (1..=25u8).collect();
    let tag = Hmac::<Sha256>::mac(&key, &[0xcd; 50]);
    assert_eq!(
        hex(&tag),
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    );
    // Case 7: key and data both longer than one block.
    let key = [0xaau8; 131];
    let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
    let tag = Hmac::<Sha256>::mac(&key, data);
    assert_eq!(
        hex(&tag),
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    );
}

/// RFC 2202 HMAC-SHA1 cases 2 and 3.
#[test]
fn rfc2202_sha1_more_cases() {
    let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    let tag = Hmac::<Sha1>::mac(&[0xaa; 20], &[0xdd; 50]);
    assert_eq!(hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

/// SHA-256 two-block boundary vector (NIST CAVS style: exactly 64 bytes).
#[test]
fn sha256_exact_block_lengths() {
    // 64 'a' characters.
    let d = Sha256::digest(&[b'a'; 64]);
    assert_eq!(
        hex(&d),
        "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    );
    // 55 bytes: padding fits in one block; 56 bytes: padding spills.
    let d55 = Sha256::digest(&[b'a'; 55]);
    assert_eq!(
        hex(&d55),
        "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    );
    let d56 = Sha256::digest(&[b'a'; 56]);
    assert_eq!(
        hex(&d56),
        "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    );
}

/// Cross-width consistency: the same seeded generator produces keys whose
/// signatures never verify across widths or instances.
#[test]
fn signatures_are_key_specific_across_widths() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let k512 = RsaPrivateKey::generate(&mut rng, 512);
    let k768 = RsaPrivateKey::generate(&mut rng, 768);
    let msg = b"cross";
    let s512 = k512.sign(msg, HashAlg::Sha256).unwrap();
    let s768 = k768.sign(msg, HashAlg::Sha256).unwrap();
    assert_eq!(s512.len(), 64);
    assert_eq!(s768.len(), 96);
    assert!(!k768.public().verify(msg, &s512, HashAlg::Sha256));
    assert!(!k512.public().verify(msg, &s768, HashAlg::Sha256));
}

/// ct_eq is actually constant-shape over equal lengths (smoke property).
#[test]
fn ct_eq_smoke() {
    let a = [0u8; 256];
    let mut b = [0u8; 256];
    assert!(ct_eq(&a, &b));
    b[255] = 1;
    assert!(!ct_eq(&a, &b));
}
