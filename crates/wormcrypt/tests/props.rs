//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use wormcrypt::bignum::Ubig;
use wormcrypt::{ChainHash, Digest, Hmac, MerkleTree, MultisetHash, Sha1, Sha256};

fn ubig_strategy(max_bytes: usize) -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u8>(), 0..=max_bytes).prop_map(|b| Ubig::from_bytes_be(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Ring axioms ------------------------------------------------------

    #[test]
    fn add_commutes(a in ubig_strategy(40), b in ubig_strategy(40)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in ubig_strategy(32), b in ubig_strategy(32), c in ubig_strategy(32)) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in ubig_strategy(32), b in ubig_strategy(32)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in ubig_strategy(24), b in ubig_strategy(24), c in ubig_strategy(24)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_sub_roundtrip(a in ubig_strategy(40), b in ubig_strategy(40)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn shift_roundtrip(a in ubig_strategy(40), s in 0usize..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    // --- Division ---------------------------------------------------------

    #[test]
    fn div_rem_reconstructs(a in ubig_strategy(64), d in ubig_strategy(32)) {
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn rem_is_idempotent(a in ubig_strategy(48), d in ubig_strategy(24)) {
        prop_assume!(!d.is_zero());
        let r = a.rem(&d);
        prop_assert_eq!(r.rem(&d), r);
    }

    // --- Serialization ----------------------------------------------------

    #[test]
    fn bytes_roundtrip(a in ubig_strategy(48)) {
        prop_assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    // --- Modular exponentiation -------------------------------------------

    #[test]
    fn pow_mod_matches_naive(
        b in ubig_strategy(16),
        e in ubig_strategy(3),
        m in ubig_strategy(16),
    ) {
        prop_assume!(!m.is_zero() && !m.is_one());
        let fast = b.pow_mod(&e, &m);
        // Naive square-and-multiply with explicit reduction.
        let mut acc = Ubig::one();
        let base = b.rem(&m);
        for i in (0..e.bit_len()).rev() {
            acc = acc.mul(&acc).rem(&m);
            if e.bit(i) {
                acc = acc.mul(&base).rem(&m);
            }
        }
        let naive = acc.rem(&m);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn mod_inverse_is_inverse(a in ubig_strategy(16), m in ubig_strategy(16)) {
        prop_assume!(!m.is_zero() && !m.is_one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mul(&inv).rem(&m), Ubig::one());
            prop_assert!(inv < m);
        } else {
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in ubig_strategy(24), b in ubig_strategy(24)) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.rem(&g).is_zero());
            prop_assert!(b.rem(&g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    // --- Hashes -----------------------------------------------------------

    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..1024), split in 0usize..1024) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn hmac_verifies_and_rejects(key in proptest::collection::vec(any::<u8>(), 0..100),
                                 msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let tag = Hmac::<Sha256>::mac(&key, &msg);
        prop_assert!(Hmac::<Sha256>::verify(&key, &msg, &tag));
        let mut wrong = msg.clone();
        wrong.push(0);
        prop_assert!(!Hmac::<Sha256>::verify(&key, &wrong, &tag));
    }

    // --- Chain hash -------------------------------------------------------

    #[test]
    fn chain_hash_is_injective_on_structure(records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..6)) {
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let base = ChainHash::digest_records(refs.iter().copied());
        // Any single-record mutation changes the digest.
        for i in 0..records.len() {
            let mut mutated = records.clone();
            mutated[i].push(0xAB);
            let refs2: Vec<&[u8]> = mutated.iter().map(|r| r.as_slice()).collect();
            prop_assert_ne!(ChainHash::digest_records(refs2.iter().copied()), base.clone());
        }
    }

    // --- Multiset hash ----------------------------------------------------

    #[test]
    fn multiset_order_independent(elems in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..10),
                                  seed in any::<u64>()) {
        let mut fwd = MultisetHash::new();
        for e in &elems {
            fwd.add(e);
        }
        // Deterministic shuffle.
        let mut shuffled = elems.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut rev = MultisetHash::new();
        for e in &shuffled {
            rev.add(e);
        }
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn multiset_add_remove_is_identity(keep in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..6),
                                       temp in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut m = MultisetHash::new();
        for e in &keep {
            m.add(e);
        }
        let snapshot = m.clone();
        m.add(&temp);
        m.remove(&temp);
        prop_assert_eq!(m, snapshot);
    }

    // --- Merkle tree ------------------------------------------------------

    #[test]
    fn merkle_proofs_verify_for_random_trees(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..40)) {
        let mut t = MerkleTree::new();
        for l in &leaves {
            t.append(l);
        }
        let root = t.root();
        for (i, l) in leaves.iter().enumerate() {
            let proof = t.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(&root, i, l, &proof));
            prop_assert!(!MerkleTree::verify(&root, i, b"not the leaf!", &proof));
        }
    }

    #[test]
    fn merkle_update_preserves_sibling_proofs(n in 2usize..30, target in 0usize..30) {
        let target = target % n;
        let mut t = MerkleTree::new();
        for i in 0..n {
            t.append(format!("leaf{i}").as_bytes());
        }
        t.update(target, b"updated");
        let root = t.root();
        for i in 0..n {
            let data = if i == target {
                b"updated".to_vec()
            } else {
                format!("leaf{i}").into_bytes()
            };
            let proof = t.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(&root, i, &data, &proof), "leaf {i}");
        }
    }
}
