//! Merkle hash tree — the baseline the paper's window scheme replaces.
//!
//! §2.3 and §4.1 argue that Merkle trees, the standard tool for
//! authenticated storage, impose O(log n) hashing per update and are
//! therefore a bottleneck for a constantly-growing compliance store. This
//! module implements that baseline so ablation A1 can measure the claim:
//! an appendable Merkle tree with authenticated updates, inclusion proofs,
//! and an operation counter exposing exactly how many hash evaluations each
//! mutation cost.

use crate::digest::Digest;
use crate::Sha256;

/// Leaf/interior domain separation prefixes (RFC 6962 style).
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// An in-memory Merkle tree over binary leaves.
///
/// The tree is stored as a flat vector of levels; level 0 holds leaf hashes.
/// Appends and updates rehash one root-path (O(log n) hash ops), which the
/// built-in [`MerkleTree::hash_ops`] counter makes measurable.
///
/// ```
/// use wormcrypt::MerkleTree;
/// let mut t = MerkleTree::new();
/// let i = t.append(b"record");
/// let proof = t.prove(i).unwrap();
/// assert!(MerkleTree::verify(&t.root(), i, b"record", &proof));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, `levels.last()` = root (length 1).
    levels: Vec<Vec<[u8; 32]>>,
    hash_ops: u64,
}

impl MerkleTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total hash evaluations performed since construction (for ablation
    /// measurements).
    pub fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    /// Resets the operation counter and returns the previous value.
    pub fn take_hash_ops(&mut self) -> u64 {
        std::mem::take(&mut self.hash_ops)
    }

    fn leaf_hash(&mut self, data: &[u8]) -> [u8; 32] {
        self.hash_ops += 1;
        let mut h = Sha256::new();
        h.update(&[LEAF_PREFIX]);
        h.update(data);
        let d = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&d);
        out
    }

    fn node_hash(&mut self, left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
        self.hash_ops += 1;
        let mut h = Sha256::new();
        h.update(&[NODE_PREFIX]);
        h.update(left);
        h.update(right);
        let d = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&d);
        out
    }

    /// Appends a leaf, returning its index.
    pub fn append(&mut self, data: &[u8]) -> usize {
        let leaf = self.leaf_hash(data);
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(leaf);
        let idx = self.levels[0].len() - 1;
        self.rebuild_path(idx);
        idx
    }

    /// Replaces the leaf at `index` (used to model in-place revocation
    /// marks; the WORM layer itself never mutates committed data).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update(&mut self, index: usize, data: &[u8]) {
        assert!(index < self.len(), "leaf index {index} out of bounds");
        let leaf = self.leaf_hash(data);
        self.levels[0][index] = leaf;
        self.rebuild_path(index);
    }

    /// Rehashes the path from leaf `index` up to the root.
    ///
    /// Only the ancestors of `index` can change on an append or update (an
    /// appended leaf's parent slot is always the newly grown one), so this
    /// is O(log n) hash evaluations.
    fn rebuild_path(&mut self, index: usize) {
        let mut idx = index;
        let mut level = 0;
        while self.levels[level].len() > 1 {
            let len = self.levels[level].len();
            let parent_count = len.div_ceil(2);
            if self.levels.len() <= level + 1 {
                self.levels.push(vec![[0u8; 32]; parent_count]);
            } else {
                self.levels[level + 1].resize(parent_count, [0u8; 32]);
            }
            let pair = idx & !1;
            let left = self.levels[level][pair];
            let right = if pair + 1 < len {
                self.levels[level][pair + 1]
            } else {
                // Odd node promotes by duplicating itself.
                left
            };
            let parent = self.node_hash(&left, &right);
            self.levels[level + 1][idx / 2] = parent;
            idx /= 2;
            level += 1;
        }
        self.levels.truncate(level + 1);
    }

    /// Current root hash (all-zero for an empty tree).
    pub fn root(&self) -> [u8; 32] {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or([0u8; 32])
    }

    /// Builds the inclusion proof (sibling path) for leaf `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<Vec<[u8; 32]>> {
        if index >= self.len() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in 0..self.levels.len() - 1 {
            let nodes = &self.levels[level];
            let sibling = if idx.is_multiple_of(2) {
                if idx + 1 < nodes.len() {
                    nodes[idx + 1]
                } else {
                    nodes[idx] // odd duplicate
                }
            } else {
                nodes[idx - 1]
            };
            proof.push(sibling);
            idx /= 2;
        }
        Some(proof)
    }

    /// Verifies an inclusion proof against a root.
    pub fn verify(root: &[u8; 32], index: usize, data: &[u8], proof: &[[u8; 32]]) -> bool {
        let mut h = Sha256::new();
        h.update(&[LEAF_PREFIX]);
        h.update(data);
        let d = h.finalize();
        let mut cur = [0u8; 32];
        cur.copy_from_slice(&d);
        let mut idx = index;
        for sib in proof {
            let mut h = Sha256::new();
            h.update(&[NODE_PREFIX]);
            if idx.is_multiple_of(2) {
                h.update(&cur);
                h.update(sib);
            } else {
                h.update(sib);
                h.update(&cur);
            }
            let d = h.finalize();
            cur.copy_from_slice(&d);
            idx /= 2;
        }
        cur == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = MerkleTree::new();
        assert!(t.is_empty());
        assert_eq!(t.root(), [0u8; 32]);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf() {
        let mut t = MerkleTree::new();
        let i = t.append(b"only");
        assert_eq!(i, 0);
        assert_eq!(t.len(), 1);
        let proof = t.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(&t.root(), 0, b"only", &proof));
    }

    #[test]
    fn proofs_for_all_sizes() {
        for n in 1..=33usize {
            let mut t = MerkleTree::new();
            let data: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
            for d in &data {
                t.append(d);
            }
            let root = t.root();
            for (i, d) in data.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(MerkleTree::verify(&root, i, d, &proof), "n={n} leaf={i}");
                // Wrong data fails.
                assert!(!MerkleTree::verify(&root, i, b"bogus", &proof));
                // Wrong index fails (except degenerate single-leaf tree).
                if n > 1 {
                    assert!(!MerkleTree::verify(&root, (i + 1) % n, d, &proof));
                }
            }
        }
    }

    #[test]
    fn update_changes_root_and_reproves() {
        let mut t = MerkleTree::new();
        for i in 0..10 {
            t.append(format!("v{i}").as_bytes());
        }
        let old_root = t.root();
        t.update(3, b"patched");
        assert_ne!(t.root(), old_root);
        let proof = t.prove(3).unwrap();
        assert!(MerkleTree::verify(&t.root(), 3, b"patched", &proof));
        // Siblings still verify under the new root.
        let proof2 = t.prove(7).unwrap();
        assert!(MerkleTree::verify(&t.root(), 7, b"v7", &proof2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn update_out_of_bounds_panics() {
        MerkleTree::new().update(0, b"x");
    }

    #[test]
    fn update_cost_is_logarithmic() {
        let mut t = MerkleTree::new();
        for i in 0..1024 {
            t.append(format!("{i}").as_bytes());
        }
        t.take_hash_ops();
        t.update(100, b"new");
        let ops = t.take_hash_ops();
        // 1 leaf hash + 10 levels of interior hashing.
        assert!((10..=12).contains(&ops), "ops={ops}");
    }

    #[test]
    fn append_is_logarithmic_amortized() {
        let mut t = MerkleTree::new();
        for i in 0..4096 {
            t.append(format!("{i}").as_bytes());
        }
        let total = t.hash_ops();
        // ~ n * (log2(n) + 1); far below n^2, sanity bound at 20n.
        assert!(total < 20 * 4096, "total={total}");
    }

    #[test]
    fn proof_against_stale_root_fails() {
        let mut t = MerkleTree::new();
        t.append(b"a");
        t.append(b"b");
        let stale_root = t.root();
        let stale_proof = t.prove(0).unwrap();
        t.append(b"c");
        // Old proof still verifies against old root but not new one.
        assert!(MerkleTree::verify(&stale_root, 0, b"a", &stale_proof));
        assert!(!MerkleTree::verify(&t.root(), 0, b"a", &stale_proof));
    }
}
