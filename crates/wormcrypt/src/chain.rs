//! Chained record hashing.
//!
//! The `datasig` field of a VRD signs `(SN, Hash(data))` where `Hash` is "a
//! chained hash (or other incremental secure hashing) of the data records"
//! (Table 1). [`ChainHash`] implements that construct: the records of a
//! virtual record are absorbed one at a time, each chaining step binding the
//! running digest to the next record's content and position, so the final
//! digest commits to the full *ordered* record list.

use crate::digest::Digest;
use crate::Sha256;

/// Domain-separation tag for the first link of a chain.
const CHAIN_INIT_TAG: &[u8] = b"strongworm.chain.v1";

/// Chained hash over an ordered sequence of data records.
///
/// `h_0 = H(tag)`, `h_i = H(h_{i-1} || be64(i) || be64(len) || record_i)`.
///
/// ```
/// use wormcrypt::ChainHash;
/// let mut c = ChainHash::new();
/// c.absorb(b"record one");
/// c.absorb(b"record two");
/// let digest = c.finalize();
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct ChainHash {
    state: Vec<u8>,
    count: u64,
}

impl Default for ChainHash {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainHash {
    /// Starts a new chain.
    pub fn new() -> Self {
        ChainHash {
            state: Sha256::digest(CHAIN_INIT_TAG),
            count: 0,
        }
    }

    /// Absorbs the next record in order.
    pub fn absorb(&mut self, record: &[u8]) {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(&self.count.to_be_bytes());
        h.update(&(record.len() as u64).to_be_bytes());
        h.update(record);
        self.state = h.finalize();
        self.count += 1;
    }

    /// Absorbs a record supplied in streaming chunks (for large records the
    /// caller does not want to buffer). The record boundary is closed when
    /// the returned [`ChainRecordWriter`] is finished.
    pub fn absorb_streaming(&mut self) -> ChainRecordWriter<'_> {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(&self.count.to_be_bytes());
        ChainRecordWriter {
            chain: self,
            hasher: h,
            len: 0,
        }
    }

    /// Number of records absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the chain digest (32 bytes).
    pub fn finalize(self) -> Vec<u8> {
        self.state
    }

    /// Digest without consuming (the chain can keep absorbing afterwards).
    pub fn current(&self) -> &[u8] {
        &self.state
    }

    /// One-shot digest of an ordered record list.
    pub fn digest_records<'a, I>(records: I) -> Vec<u8>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut c = ChainHash::new();
        for r in records {
            c.absorb(r);
        }
        c.finalize()
    }
}

/// Streaming writer for one record inside a [`ChainHash`].
///
/// Note: the streaming form hashes `h_{i-1} || be64(i) || record || be64(len)`
/// (length *suffix* rather than prefix, since the length is unknown up
/// front); it therefore produces a digest distinct from [`ChainHash::absorb`]
/// but with the same binding properties.
#[derive(Debug)]
pub struct ChainRecordWriter<'a> {
    chain: &'a mut ChainHash,
    hasher: Sha256,
    len: u64,
}

impl ChainRecordWriter<'_> {
    /// Appends a chunk of the current record.
    pub fn write(&mut self, chunk: &[u8]) {
        self.hasher.update(chunk);
        self.len += chunk.len() as u64;
    }

    /// Closes the record and advances the chain.
    pub fn finish(self) {
        let mut h = self.hasher;
        h.update(&self.len.to_be_bytes());
        self.chain.state = h.finalize();
        self.chain.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_tag_digest() {
        let c = ChainHash::new();
        assert_eq!(c.count(), 0);
        assert_eq!(c.finalize(), Sha256::digest(CHAIN_INIT_TAG));
    }

    #[test]
    fn order_matters() {
        let ab = ChainHash::digest_records([b"a".as_slice(), b"b".as_slice()]);
        let ba = ChainHash::digest_records([b"b".as_slice(), b"a".as_slice()]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn boundaries_matter() {
        // ("ab") vs ("a", "b") must differ — length framing prevents
        // record-boundary confusion.
        let joined = ChainHash::digest_records([b"ab".as_slice()]);
        let split = ChainHash::digest_records([b"a".as_slice(), b"b".as_slice()]);
        assert_ne!(joined, split);
    }

    #[test]
    fn deterministic() {
        let r: Vec<&[u8]> = vec![b"x", b"y", b"z"];
        assert_eq!(
            ChainHash::digest_records(r.iter().copied()),
            ChainHash::digest_records(r.iter().copied())
        );
    }

    #[test]
    fn single_bit_change_propagates() {
        let base = ChainHash::digest_records([b"aaaa".as_slice(), b"bbbb".as_slice()]);
        let tweaked = ChainHash::digest_records([b"aaab".as_slice(), b"bbbb".as_slice()]);
        assert_ne!(base, tweaked);
    }

    #[test]
    fn streaming_record_is_consistent() {
        let mut c1 = ChainHash::new();
        {
            let mut w = c1.absorb_streaming();
            w.write(b"hello ");
            w.write(b"world");
            w.finish();
        }
        let mut c2 = ChainHash::new();
        {
            let mut w = c2.absorb_streaming();
            w.write(b"hello world");
            w.finish();
        }
        assert_eq!(c1.current(), c2.current());
        assert_eq!(c1.count(), 1);
    }

    #[test]
    fn current_continues() {
        let mut c = ChainHash::new();
        c.absorb(b"one");
        let mid = c.current().to_vec();
        c.absorb(b"two");
        assert_ne!(mid, c.current());
    }
}
