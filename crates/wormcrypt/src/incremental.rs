//! Incremental multiset hashing (MSet-Add-Hash).
//!
//! Table 1 permits `datasig` to use "other incremental secure hashing
//! [Bellare–Micciancio '97, Clarke et al. '03]" instead of a chained hash.
//! [`MultisetHash`] follows the *additive* construction of Clarke et al.:
//! each element is expanded by SHA-256 into a vector of 64-bit words that is
//! added component-wise (mod 2^64) into the accumulator. Adding is O(1) per
//! element, commutative, and supports *removal* — which the WORM layer uses
//! when a record expires out of a VR without re-reading its siblings.

use crate::digest::Digest;
use crate::Sha256;

/// Number of 64-bit lanes in the accumulator (4 lanes = 256 bits).
const LANES: usize = 4;

/// Domain tag mixed into every element expansion.
const MSET_TAG: &[u8] = b"strongworm.mset.v1";

/// Additive incremental multiset hash.
///
/// ```
/// use wormcrypt::MultisetHash;
/// let mut a = MultisetHash::new();
/// a.add(b"x");
/// a.add(b"y");
/// let mut b = MultisetHash::new();
/// b.add(b"y");
/// b.add(b"x");
/// assert_eq!(a.digest(), b.digest()); // commutative
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MultisetHash {
    acc: [u64; LANES],
    count: u64,
}

impl MultisetHash {
    /// Empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Expands an element into its lane vector.
    fn expand(element: &[u8]) -> [u64; LANES] {
        let mut h = Sha256::new();
        h.update(MSET_TAG);
        h.update(&(element.len() as u64).to_be_bytes());
        h.update(element);
        let d = h.finalize();
        let mut lanes = [0u64; LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            // wormlint: allow(panic) -- an 8-byte slice of the 64-byte digest
            *lane = u64::from_be_bytes(d[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        lanes
    }

    /// Adds an element to the multiset.
    pub fn add(&mut self, element: &[u8]) {
        let lanes = Self::expand(element);
        for (a, l) in self.acc.iter_mut().zip(lanes) {
            *a = a.wrapping_add(l);
        }
        self.count = self.count.wrapping_add(1);
    }

    /// Removes one occurrence of an element.
    ///
    /// The caller is responsible for only removing elements previously
    /// added; removing a never-added element silently produces the hash of
    /// a different (signed-multiplicity) multiset.
    pub fn remove(&mut self, element: &[u8]) {
        let lanes = Self::expand(element);
        for (a, l) in self.acc.iter_mut().zip(lanes) {
            *a = a.wrapping_sub(l);
        }
        self.count = self.count.wrapping_sub(1);
    }

    /// Merges another multiset into this one (union with multiplicities).
    pub fn merge(&mut self, other: &MultisetHash) {
        for (a, l) in self.acc.iter_mut().zip(other.acc) {
            *a = a.wrapping_add(l);
        }
        self.count = self.count.wrapping_add(other.count);
    }

    /// Number of elements (additions minus removals).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// 40-byte digest: the four lanes plus the cardinality.
    ///
    /// Including the count defeats trivial `k·2^64`-fold multiplicity
    /// confusions of the bare additive accumulator.
    pub fn digest(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LANES * 8 + 8);
        for lane in self.acc {
            out.extend_from_slice(&lane.to_be_bytes());
        }
        out.extend_from_slice(&self.count.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_zero() {
        let m = MultisetHash::new();
        assert_eq!(m.digest(), vec![0u8; 40]);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn commutative() {
        let elems: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let mut fwd = MultisetHash::new();
        for e in &elems {
            fwd.add(e);
        }
        let mut rev = MultisetHash::new();
        for e in elems.iter().rev() {
            rev.add(e);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn add_remove_cancels() {
        let mut m = MultisetHash::new();
        m.add(b"keep");
        let snapshot = m.clone();
        m.add(b"temp");
        m.remove(b"temp");
        assert_eq!(m, snapshot);
    }

    #[test]
    fn multiplicity_matters() {
        let mut once = MultisetHash::new();
        once.add(b"x");
        let mut twice = MultisetHash::new();
        twice.add(b"x");
        twice.add(b"x");
        assert_ne!(once.digest(), twice.digest());
    }

    #[test]
    fn different_sets_differ() {
        let mut a = MultisetHash::new();
        a.add(b"alpha");
        let mut b = MultisetHash::new();
        b.add(b"beta");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let mut left = MultisetHash::new();
        left.add(b"1");
        left.add(b"2");
        let mut right = MultisetHash::new();
        right.add(b"3");
        left.merge(&right);
        let mut all = MultisetHash::new();
        for e in [b"1".as_slice(), b"2", b"3"] {
            all.add(e);
        }
        assert_eq!(left, all);
    }

    #[test]
    fn length_framing() {
        // {"ab"} vs {"a","b"} must differ even though concatenations match.
        let mut joined = MultisetHash::new();
        joined.add(b"ab");
        let mut split = MultisetHash::new();
        split.add(b"a");
        split.add(b"b");
        assert_ne!(joined.digest(), split.digest());
    }
}
