//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold. The threshold was picked empirically; RSA-2048 operands
//! (32 limbs) sit right at the point where Karatsuba starts winning.

use super::Ubig;

/// Operand size (in limbs) above which Karatsuba is used.
const KARATSUBA_THRESHOLD: usize = 24;

impl Ubig {
    /// `self * other`.
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let out = mul_limbs(&self.limbs, &other.limbs);
        Ubig::from_limbs(out)
    }

    /// `self * self`, slightly cheaper than `mul` for squaring-heavy
    /// workloads (modular exponentiation).
    pub fn square(&self) -> Ubig {
        // A dedicated squaring routine would halve the partial products; the
        // Montgomery path (where modexp spends its time) already avoids this
        // function, so plain multiplication keeps the code surface small.
        self.mul(self)
    }
}

/// Multiplies two little-endian limb slices.
pub(crate) fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba(a, b)
    } else {
        schoolbook(a, b)
    }
}

fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let half = a.len().max(b.len()) / 2;
    if half == 0 || a.len() <= half || b.len() <= half {
        return schoolbook(a, b);
    }
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);

    let a01 = add_limbs(a0, a1);
    let b01 = add_limbs(b0, b1);
    let z1_full = mul_limbs(&a01, &b01);
    // z1 = z1_full - z0 - z2
    let mut z1 = sub_limbs(&z1_full, &z0);
    z1 = sub_limbs(&z1, &z2);

    // out = z0 + z1 << (64*half) + z2 << (64*2*half)
    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1, half);
    add_into(&mut out, &z2, 2 * half);
    out
}

fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (r1, c1) = long[i].overflowing_add(s);
        let (r2, c2) = r1.overflowing_add(carry);
        out.push(r2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// `a - b` on raw limb vectors; requires `a >= b` numerically.
fn sub_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "sub_limbs underflow");
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// `acc[offset..] += v`, where `acc` is large enough to absorb the carry.
fn add_into(acc: &mut [u64], v: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < v.len() || carry > 0 {
        let vi = v.get(i).copied().unwrap_or(0);
        let slot = &mut acc[offset + i];
        let (r1, c1) = slot.overflowing_add(vi);
        let (r2, c2) = r1.overflowing_add(carry);
        *slot = r2;
        carry = (c1 as u64) + (c2 as u64);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(
            Ubig::from_u64(6).mul(&Ubig::from_u64(7)),
            Ubig::from_u64(42)
        );
        assert_eq!(Ubig::zero().mul(&Ubig::from_u64(7)), Ubig::zero());
        assert_eq!(Ubig::from_u64(7).mul(&Ubig::zero()), Ubig::zero());
        assert_eq!(Ubig::one().mul(&Ubig::from_u64(99)), Ubig::from_u64(99));
    }

    #[test]
    fn cross_limb_product() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = Ubig::from_u64(u64::MAX);
        let expected = Ubig::from_u128(u128::MAX)
            .shl(0)
            .sub(&Ubig::from_u128((1u128 << 65) - 2));
        assert_eq!(a.mul(&a), expected);
    }

    #[test]
    fn square_matches_mul() {
        let n = Ubig::from_hex("fedcba9876543210fedcba9876543210").unwrap();
        assert_eq!(n.square(), n.mul(&n));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trigger Karatsuba (>= 24 limbs).
        let mut a_limbs = Vec::new();
        let mut b_limbs = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..40u64 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
            a_limbs.push(x);
            x = x.rotate_left(17) ^ i;
            b_limbs.push(x);
        }
        let fast = mul_limbs(&a_limbs, &b_limbs);
        let slow = schoolbook(&a_limbs, &b_limbs);
        let mut fast = fast;
        let mut slow = slow;
        while fast.last() == Some(&0) {
            fast.pop();
        }
        while slow.last() == Some(&0) {
            slow.pop();
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn distributivity_spot_check() {
        let a = Ubig::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let b = Ubig::from_hex("fedcba9876543210").unwrap();
        let c = Ubig::from_hex("abcdef").unwrap();
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert_eq!(left, right);
    }
}
