//! Probabilistic primality testing and prime generation.
//!
//! Candidates are screened by trial division against a sieve of small
//! primes, then subjected to Miller–Rabin with random bases. Round counts
//! follow the usual conservative table (more rounds for smaller candidates,
//! where the error bound per round is weakest relative to the target
//! security level).

use super::Ubig;
use std::sync::OnceLock;

/// Upper bound of the small-prime sieve used for trial division.
const SIEVE_LIMIT: usize = 1 << 14;

fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let mut composite = vec![false; SIEVE_LIMIT];
        let mut primes = Vec::new();
        for i in 2..SIEVE_LIMIT {
            if !composite[i] {
                primes.push(i as u64);
                let mut j = i * i;
                while j < SIEVE_LIMIT {
                    composite[j] = true;
                    j += i;
                }
            }
        }
        primes
    })
}

/// Number of Miller–Rabin rounds for a candidate of `bits` bits.
///
/// Values are conservative relative to the Handbook of Applied Cryptography
/// table 4.4 (error < 2^-80 after trial division).
fn mr_rounds(bits: usize) -> usize {
    match bits {
        0..=128 => 40,
        129..=256 => 32,
        257..=512 => 16,
        513..=1024 => 8,
        _ => 4,
    }
}

impl Ubig {
    /// Probabilistic primality test (trial division + Miller–Rabin).
    ///
    /// Returns `true` if the value is prime with overwhelming probability,
    /// `false` if it is certainly composite (or < 2).
    pub fn is_probable_prime<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Small and even cases.
        if self.bit_len() <= 1 {
            return false; // 0 and 1
        }
        if self.limbs.len() == 1 {
            let v = self.limbs[0];
            if v == 2 || v == 3 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in small_primes() {
            let pb = Ubig::from_u64(p);
            if *self == pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        self.miller_rabin(rng, mr_rounds(self.bit_len()))
    }

    /// Raw Miller–Rabin with `rounds` random bases (no trial division).
    pub fn miller_rabin<R: rand::RngCore + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        debug_assert!(self.is_odd() && self.bit_len() > 1);
        let one = Ubig::one();
        let n_minus_1 = self.sub(&one);
        // n - 1 = d * 2^s with d odd.
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr(s);
        let two = Ubig::from_u64(2);
        let n_minus_3 = match n_minus_1.checked_sub(&two) {
            Some(v) => v,
            None => return true, // n == 3
        };

        'rounds: for _ in 0..rounds {
            // a ∈ [2, n-2]
            let a = Ubig::random_below(rng, &n_minus_3).add(&two);
            let mut x = a.pow_mod(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue 'rounds;
            }
            for _ in 0..s.saturating_sub(1) {
                x = x.mul(&x).rem(self);
                if x == n_minus_1 {
                    continue 'rounds;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2`.
    pub fn gen_prime<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Ubig {
        assert!(bits >= 2, "a prime needs at least 2 bits");
        loop {
            let mut candidate = Ubig::random_bits(rng, bits);
            // Force odd and (for RSA-friendliness) the top two bits set so
            // that p*q has exactly the intended width.
            candidate.set_bit(0);
            if bits >= 2 {
                candidate.set_bit(bits - 1);
                candidate.set_bit(bits.saturating_sub(2));
            }
            // Walk forward in steps of 2 a bounded number of times before
            // resampling, which is cheaper than fresh candidates.
            let two = Ubig::from_u64(2);
            let mut c = candidate;
            for _ in 0..64 {
                if c.bit_len() != bits {
                    break; // walked past the width; resample
                }
                if c.is_probable_prime(rng) {
                    return c;
                }
                c = c.add(&two);
            }
        }
    }
}

/// Number of trailing zero bits (input must be nonzero).
fn trailing_zeros(n: &Ubig) -> usize {
    debug_assert!(!n.is_zero());
    for (i, &l) in n.limbs.iter().enumerate() {
        if l != 0 {
            return i * 64 + l.trailing_zeros() as usize;
        }
    }
    unreachable!("nonzero Ubig with all-zero limbs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7374726f6e67 /* "strong" */)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 10007, 65537] {
            assert!(Ubig::from_u64(p).is_probable_prime(&mut r), "p={p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [
            0u64, 1, 4, 6, 9, 15, 21, 10005, 65535, 341, 561, /* Carmichael */
        ] {
            assert!(!Ubig::from_u64(c).is_probable_prime(&mut r), "c={c}");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 (Mersenne prime M127).
        let m127 = Ubig::one().shl(127).sub(&Ubig::one());
        assert!(m127.is_probable_prime(&mut rng()));
        // 2^128 - 1 is composite (divisible by 3).
        let c = Ubig::one().shl(128).sub(&Ubig::one());
        assert!(!c.is_probable_prime(&mut rng()));
    }

    #[test]
    fn generated_primes_have_width_and_pass() {
        let mut r = rng();
        for bits in [32usize, 64, 128, 256] {
            let p = Ubig::gen_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_probable_prime(&mut r));
            assert!(p.is_odd());
        }
    }

    #[test]
    fn trailing_zero_helper() {
        assert_eq!(trailing_zeros(&Ubig::from_u64(8)), 3);
        assert_eq!(trailing_zeros(&Ubig::one().shl(130)), 130);
    }
}
