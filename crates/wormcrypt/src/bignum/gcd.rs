//! Greatest common divisor and modular inverse (extended Euclid).
//!
//! The extended algorithm needs signed intermediates; a small private
//! sign-magnitude wrapper keeps that machinery out of the public API.

use super::Ubig;

/// Sign-magnitude signed big integer, private to this module.
#[derive(Clone, Debug)]
struct Sbig {
    neg: bool,
    mag: Ubig,
}

impl Sbig {
    fn zero() -> Self {
        Sbig {
            neg: false,
            mag: Ubig::zero(),
        }
    }

    fn one() -> Self {
        Sbig {
            neg: false,
            mag: Ubig::one(),
        }
    }

    fn sub(&self, other: &Sbig) -> Sbig {
        match (self.neg, other.neg) {
            (false, true) => Sbig {
                neg: false,
                mag: self.mag.add(&other.mag),
            },
            (true, false) => Sbig {
                neg: !self.mag.add(&other.mag).is_zero(),
                mag: self.mag.add(&other.mag),
            },
            (a_neg, _) => {
                // Same sign: subtract magnitudes.
                if self.mag >= other.mag {
                    let mag = self.mag.sub(&other.mag);
                    Sbig {
                        neg: a_neg && !mag.is_zero(),
                        mag,
                    }
                } else {
                    let mag = other.mag.sub(&self.mag);
                    Sbig {
                        neg: !a_neg && !mag.is_zero(),
                        mag,
                    }
                }
            }
        }
    }

    fn mul_ubig(&self, other: &Ubig) -> Sbig {
        let mag = self.mag.mul(other);
        Sbig {
            neg: self.neg && !mag.is_zero(),
            mag,
        }
    }

    /// Reduces into `[0, m)` treating the value as an integer mod `m`.
    fn rem_euclid(&self, m: &Ubig) -> Ubig {
        let r = self.mag.rem(m);
        if self.neg && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

impl Ubig {
    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod m)`, or `None`
    /// if `gcd(self, m) != 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_inverse(&self, m: &Ubig) -> Option<Ubig> {
        assert!(!m.is_zero(), "mod_inverse: zero modulus");
        if m.is_one() {
            return Some(Ubig::zero());
        }
        // Extended Euclid on (a, m) tracking only the coefficient of a.
        let mut r0 = self.rem(m);
        let mut r1 = m.clone();
        let mut s0 = Sbig::one();
        let mut s1 = Sbig::zero();
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            let s_next = s0.sub(&s1.mul_ubig(&q));
            r0 = std::mem::replace(&mut r1, r);
            s0 = std::mem::replace(&mut s1, s_next);
        }
        if !r0.is_one() {
            return None; // not coprime
        }
        Some(s0.rem_euclid(m))
    }

    /// Least common multiple.
    ///
    /// # Panics
    ///
    /// Panics if both operands are zero.
    pub fn lcm(&self, other: &Ubig) -> Ubig {
        let g = self.gcd(other);
        assert!(!g.is_zero(), "lcm(0, 0) is undefined");
        self.div_rem(&g).0.mul(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(u(12).gcd(&u(18)), u(6));
        assert_eq!(u(17).gcd(&u(13)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
        assert_eq!(u(0).gcd(&u(0)), u(0));
    }

    #[test]
    fn gcd_large() {
        let a = Ubig::from_hex("1000000000000000000000000").unwrap(); // 2^96
        let b = Ubig::from_hex("40000000000").unwrap(); // 2^42
        assert_eq!(a.gcd(&b), b);
    }

    #[test]
    fn mod_inverse_small() {
        // 3 * 4 = 12 ≡ 1 (mod 11)
        assert_eq!(u(3).mod_inverse(&u(11)), Some(u(4)));
        // 2 has no inverse mod 4
        assert_eq!(u(2).mod_inverse(&u(4)), None);
        // anything mod 1 -> 0
        assert_eq!(u(42).mod_inverse(&Ubig::one()), Some(Ubig::zero()));
    }

    #[test]
    fn mod_inverse_verifies() {
        let m = Ubig::from_hex("ffffffffffffffc5").unwrap(); // prime
        for a in [2u64, 3, 65537, 0x1234_5678_9abc_def1] {
            let inv = u(a).mod_inverse(&m).expect("prime modulus");
            assert_eq!(u(a).mul(&inv).rem(&m), Ubig::one(), "a={a}");
        }
    }

    #[test]
    fn mod_inverse_of_e_rsa_style() {
        // phi = (p-1)(q-1) for p=61, q=53 -> phi=3120, e=17, d=2753.
        let phi = u(3120);
        let e = u(17);
        let d = e.mod_inverse(&phi).unwrap();
        assert_eq!(d, u(2753));
        assert_eq!(e.mul(&d).rem(&phi), Ubig::one());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(u(4).lcm(&u(6)), u(12));
        assert_eq!(u(7).lcm(&u(13)), u(91));
        assert_eq!(u(0).lcm(&u(5)), u(0));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn lcm_zero_zero_panics() {
        u(0).lcm(&u(0));
    }
}
