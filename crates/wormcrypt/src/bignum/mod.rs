//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`Ubig`] is a little-endian vector of `u64` limbs kept in canonical form
//! (no trailing zero limbs; zero is the empty vector). It provides exactly
//! the operations the RSA layer needs — comparison, ring arithmetic,
//! division with remainder, modular exponentiation via Montgomery
//! multiplication, gcd/modular inverse, and probabilistic primality — with
//! no `unsafe` and no external dependencies.
//!
//! ```
//! use wormcrypt::bignum::Ubig;
//!
//! let a = Ubig::from_u64(7).pow_mod(&Ubig::from_u64(5), &Ubig::from_u64(13));
//! assert_eq!(a, Ubig::from_u64(11)); // 7^5 = 16807 = 11 (mod 13)
//! ```

// Multi-precision arithmetic propagates carries/borrows across parallel
// limb arrays; explicit indexing is the established idiom and clearer than
// zipped iterator chains here.
#![allow(clippy::needless_range_loop)]

mod div;
mod gcd;
mod montgomery;
mod mul;
pub mod prime;

pub use montgomery::Montgomery;

use std::cmp::Ordering;
use std::fmt;

/// Number of bits per limb.
pub(crate) const LIMB_BITS: usize = 64;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zeros. All
/// arithmetic is heap-based and variable-time; this library targets a
/// *simulated* secure coprocessor, not side-channel-hardened production use.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs, canonical (no trailing zeros).
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The value zero.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = Ubig {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds a value from little-endian limbs (normalizing).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Parses a big-endian byte string (as produced by [`Ubig::to_bytes_be`]).
    ///
    /// Leading zero bytes are accepted and ignored.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0usize;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let nz = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[nz..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to a big-endian byte string left-padded to exactly `len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value of {} bytes does not fit in {} bytes",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// Returns `None` on any non-hex character or empty input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut idx = 0;
        // Odd-length strings have an implicit leading nibble.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            idx = 1;
        }
        while idx < chars.len() {
            let hi = hex_val(chars[idx])?;
            let lo = hex_val(chars[idx + 1])?;
            bytes.push(hi << 4 | lo);
            idx += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Renders as a minimal lowercase hex string (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Whether this value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Whether this value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize)
            }
        }
    }

    /// Value of bit `i` (LSB is bit 0); bits beyond the width are zero.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Returns the low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Strips trailing zero limbs to restore canonical form.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Ubig::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Ubig) -> Option<Ubig> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Ubig::from_limbs(out))
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Ubig) -> Ubig {
        self.checked_sub(other)
            // wormlint: allow(panic) -- documented contract (see `# Panics`): callers guarantee other <= self
            .expect("Ubig::sub underflow: subtrahend exceeds minuend")
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> Ubig {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return Ubig::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Ubig::from_limbs(out)
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> Ubig {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Ubig::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
        }
        Ubig::from_limbs(out)
    }

    /// `self mod other` (convenience over [`Ubig::div_rem`]).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn rem(&self, other: &Ubig) -> Ubig {
        self.div_rem(other).1
    }

    /// Generates a uniformly random value with exactly `bits` bits
    /// (the top bit is always set, unless `bits == 0`).
    pub fn random_bits<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Ubig {
        if bits == 0 {
            return Ubig::zero();
        }
        let limbs = bits.div_ceil(LIMB_BITS);
        let mut v = vec![0u64; limbs];
        for l in v.iter_mut() {
            *l = rng.next_u64();
        }
        // Mask off excess bits, then force the top bit.
        let top_bits = bits - (limbs - 1) * LIMB_BITS;
        if top_bits < LIMB_BITS {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        v[limbs - 1] |= 1u64 << (top_bits - 1);
        Ubig::from_limbs(v)
    }

    /// Generates a uniformly random value in `[0, bound)` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::RngCore + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
        assert!(!bound.is_zero(), "random_below: bound must be positive");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(LIMB_BITS);
        let top_bits = bits - (limbs - 1) * LIMB_BITS;
        let mask = if top_bits == LIMB_BITS {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut v = vec![0u64; limbs];
            for l in v.iter_mut() {
                *l = rng.next_u64();
            }
            v[limbs - 1] &= mask;
            let candidate = Ubig::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig(0x{})", self.to_hex())
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (the largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut rest = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        let divisor = Ubig::from_u64(CHUNK);
        while !rest.is_zero() {
            let (q, r) = rest.div_rem(&divisor);
            chunks.push(r.low_u64());
            rest = q;
        }
        let mut s = String::new();
        for (i, c) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{c}"));
            } else {
                s.push_str(&format!("{c:019}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_u64(v)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_u128(v)
    }
}

impl std::ops::Add<&Ubig> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        Ubig::add(self, rhs)
    }
}

impl std::ops::Sub<&Ubig> for &Ubig {
    type Output = Ubig;
    fn sub(self, rhs: &Ubig) -> Ubig {
        Ubig::sub(self, rhs)
    }
}

impl std::ops::Mul<&Ubig> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        Ubig::mul(self, rhs)
    }
}

impl std::ops::Rem<&Ubig> for &Ubig {
    type Output = Ubig;
    fn rem(self, rhs: &Ubig) -> Ubig {
        Ubig::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert!(Ubig::zero().is_even());
        assert!(Ubig::one().is_odd());
        assert_eq!(Ubig::default(), Ubig::zero());
    }

    #[test]
    fn roundtrip_bytes() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0xff],
            &[1, 0],
            &[0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe, 0x01],
        ];
        for &c in cases {
            let n = Ubig::from_bytes_be(c);
            let back = n.to_bytes_be();
            // Leading zeros are stripped, so compare against the minimal form.
            let minimal: Vec<u8> = {
                let nz = c.iter().position(|&b| b != 0).unwrap_or(c.len());
                c[nz..].to_vec()
            };
            assert_eq!(back, minimal);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(Ubig::from_bytes_be(&[0, 0, 0, 5]), Ubig::from_u64(5));
    }

    #[test]
    fn padded_serialization() {
        let n = Ubig::from_u64(0x0102);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_too_small() {
        Ubig::from_u64(0x010203).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        let n = Ubig::from_hex("deadbeefcafebabe0123456789abcdef0").unwrap();
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789abcdef0");
        assert_eq!(Ubig::from_hex("0").unwrap(), Ubig::zero());
        assert!(Ubig::from_hex("").is_none());
        assert!(Ubig::from_hex("xyz").is_none());
    }

    #[test]
    fn add_with_carries() {
        let a = Ubig::from_u64(u64::MAX);
        let b = Ubig::one();
        let s = a.add(&b);
        assert_eq!(s, Ubig::from_u128(1u128 << 64));
        assert_eq!(s.bit_len(), 65);
    }

    #[test]
    fn sub_basics() {
        let a = Ubig::from_u128(1u128 << 64);
        let b = Ubig::one();
        assert_eq!(a.sub(&b), Ubig::from_u64(u64::MAX));
        assert_eq!(a.checked_sub(&a), Some(Ubig::zero()));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        Ubig::one().sub(&Ubig::from_u64(2));
    }

    #[test]
    fn shifts() {
        let n = Ubig::from_u64(0b1011);
        assert_eq!(n.shl(0), n);
        assert_eq!(n.shl(1), Ubig::from_u64(0b10110));
        assert_eq!(n.shl(64), Ubig::from_u128(0b1011u128 << 64));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(2), Ubig::from_u64(0b10));
        assert_eq!(n.shr(100), Ubig::zero());
        assert_eq!(n.shl(67).shr(3), Ubig::from_u128(0b1011u128 << 64));
    }

    #[test]
    fn bit_accessors() {
        let mut n = Ubig::zero();
        n.set_bit(0);
        n.set_bit(100);
        assert!(n.bit(0));
        assert!(n.bit(100));
        assert!(!n.bit(50));
        assert_eq!(n.bit_len(), 101);
    }

    #[test]
    fn ordering() {
        let a = Ubig::from_u64(5);
        let b = Ubig::from_u128(1u128 << 70);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(Ubig::zero().to_string(), "0");
        assert_eq!(Ubig::from_u64(12345).to_string(), "12345");
        // 2^64 = 18446744073709551616
        assert_eq!(
            Ubig::from_u128(1u128 << 64).to_string(),
            "18446744073709551616"
        );
        // 10^19 boundary padding: 10^19 + 5
        let n = Ubig::from_u128(10_000_000_000_000_000_005u128);
        assert_eq!(n.to_string(), "10000000000000000005");
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = rand::rngs::mock::StepRng::new(0xdead_beef, 0x9e37_79b9);
        for bits in [1usize, 8, 63, 64, 65, 128, 257] {
            let n = Ubig::random_bits(&mut rng, bits);
            assert_eq!(n.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x1234_5678_9abc_def1);
        let bound = Ubig::from_u64(1000);
        for _ in 0..50 {
            let v = Ubig::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }
}
