//! Montgomery multiplication context and modular exponentiation.
//!
//! [`Montgomery`] precomputes everything needed to run repeated modular
//! multiplications against a fixed odd modulus (the RSA hot path), using the
//! CIOS (coarsely integrated operand scanning) formulation. `Ubig::pow_mod`
//! dispatches to a 4-bit fixed-window exponentiation over this context and
//! falls back to binary square-and-reduce for even moduli.

use super::Ubig;

/// Precomputed context for Montgomery arithmetic modulo an odd `n`.
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus (odd, > 1).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n`, where `R = 2^(64 * k)` and `k = n.len()`.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for the odd modulus `n`.
    ///
    /// Returns `None` if `n` is even or `n <= 1` (Montgomery reduction
    /// requires `gcd(n, 2^64) = 1`).
    pub fn new(n: &Ubig) -> Option<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let k = n.limbs.len();
        // Newton–Hensel iteration for the inverse of n mod 2^64.
        let n0 = n.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n via plain division (done once per context).
        let r2 = Ubig::one().shl(2 * 64 * k).rem(n);
        let mut r2_limbs = r2.limbs;
        r2_limbs.resize(k, 0);

        Some(Montgomery {
            n: n.limbs.clone(),
            n0_inv,
            r2: r2_limbs,
        })
    }

    /// Modulus width in limbs.
    pub fn limbs(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a `Ubig`.
    pub fn modulus(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// Converts `x < n` into Montgomery form (`x * R mod n`).
    pub fn to_mont(&self, x: &Ubig) -> Vec<u64> {
        debug_assert!(
            *x < self.modulus(),
            "to_mont operand must be reduced modulo n"
        );
        let mut xl = x.limbs.clone();
        xl.resize(self.n.len(), 0);
        self.mont_mul(&xl, &self.r2)
    }

    /// Converts out of Montgomery form (`x̄ * R^{-1} mod n`).
    pub fn from_mont(&self, x: &[u64]) -> Ubig {
        let one = {
            let mut v = vec![0u64; self.n.len()];
            v[0] = 1;
            v
        };
        Ubig::from_limbs(self.mont_mul(x, &one))
    }

    /// The Montgomery representation of 1 (`R mod n`).
    pub fn one_mont(&self) -> Vec<u64> {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        self.mont_mul(&one, &self.r2)
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    ///
    /// Both inputs must be `k = n.len()` limbs.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        // t has k+2 limbs: accumulator for the interleaved product/reduction.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            // t += a[i] * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + a[i] as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: u128 = {
                let s = t[0] as u128 + m as u128 * self.n[0] as u128;
                debug_assert_eq!(s as u64, 0);
                s >> 64
            };
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction: t may be in [0, 2n).
        let needs_sub = t[k] != 0 || !limbs_lt(&t[..k], &self.n);
        let mut out = t[..k].to_vec();
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        }
        out
    }
}

/// Lexicographic (numeric) `a < b` over equal-length little-endian limbs.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

impl Ubig {
    /// Computes `self^exp mod modulus`.
    ///
    /// Uses 4-bit fixed-window Montgomery exponentiation for odd moduli and
    /// binary square-and-reduce otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn pow_mod(&self, exp: &Ubig, modulus: &Ubig) -> Ubig {
        assert!(!modulus.is_zero(), "pow_mod: zero modulus");
        if modulus.is_one() {
            return Ubig::zero();
        }
        if exp.is_zero() {
            return Ubig::one();
        }
        let base = self.rem(modulus);
        if base.is_zero() {
            return Ubig::zero();
        }
        if modulus.is_odd() {
            // wormlint: allow(panic) -- Montgomery::new succeeds for any odd modulus
            let ctx = Montgomery::new(modulus).expect("odd modulus");
            // Short exponents (RSA verification's e = 65537) don't earn
            // back a 14-multiply window table; plain square-and-multiply
            // does strictly fewer multiplications below ~64 bits.
            if exp.bit_len() < 64 {
                return pow_mod_mont_binary(&ctx, &base, exp);
            }
            return pow_mod_mont(&ctx, &base, exp);
        }
        // Even modulus fallback (not used by RSA; kept for completeness).
        let mut result = Ubig::one();
        let mut b = base;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&b).rem(modulus);
            }
            if i + 1 < exp.bit_len() {
                b = b.mul(&b).rem(modulus);
            }
        }
        result
    }
}

/// Left-to-right binary exponentiation in Montgomery space, for short
/// exponents where a window table costs more than it saves. The caller
/// guarantees `exp != 0` and `base != 0 mod n`.
fn pow_mod_mont_binary(ctx: &Montgomery, base: &Ubig, exp: &Ubig) -> Ubig {
    let base_m = ctx.to_mont(base);
    let mut acc = base_m.clone();
    // The top bit is consumed by seeding `acc = base`.
    for i in (0..exp.bit_len().saturating_sub(1)).rev() {
        acc = ctx.mont_mul(&acc, &acc);
        if exp.bit(i) {
            acc = ctx.mont_mul(&acc, &base_m);
        }
    }
    ctx.from_mont(&acc)
}

/// 4-bit fixed-window exponentiation in Montgomery space.
fn pow_mod_mont(ctx: &Montgomery, base: &Ubig, exp: &Ubig) -> Ubig {
    const WINDOW: usize = 4;
    let base_m = ctx.to_mont(base);
    // Precompute base^0..base^15 in Montgomery form.
    let mut table = Vec::with_capacity(1 << WINDOW);
    table.push(ctx.one_mont());
    table.push(base_m.clone());
    for i in 2..(1 << WINDOW) {
        table.push(ctx.mont_mul(&table[i - 1], &base_m));
    }

    let bits = exp.bit_len();
    let mut acc = ctx.one_mont();
    let mut started = false;
    // Consume the exponent MSB-first in 4-bit chunks.
    let nwindows = bits.div_ceil(WINDOW);
    for w in (0..nwindows).rev() {
        if started {
            for _ in 0..WINDOW {
                acc = ctx.mont_mul(&acc, &acc);
            }
        }
        let mut digit = 0usize;
        for b in 0..WINDOW {
            let idx = w * WINDOW + b;
            if idx < bits && exp.bit(idx) {
                digit |= 1 << b;
            }
        }
        if digit != 0 {
            acc = ctx.mont_mul(&acc, &table[digit]);
            started = true;
        } else if started {
            // Nothing to multiply; squarings above already account for it.
        } else {
            // Leading zero window; skip squarings until the first set digit.
        }
    }
    if !started {
        // exp == 0 is handled by the caller; reaching here means all windows
        // were zero, which cannot happen for a nonzero exponent.
        unreachable!("nonzero exponent produced no windows");
    }
    ctx.from_mont(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }

    #[test]
    fn mont_roundtrip() {
        let n = Ubig::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = Montgomery::new(&n).unwrap();
        let x = Ubig::from_hex("123456789abcdef").unwrap();
        let xm = ctx.to_mont(&x);
        assert_eq!(ctx.from_mont(&xm), x);
    }

    #[test]
    fn mont_rejects_even_or_trivial() {
        assert!(Montgomery::new(&u(10)).is_none());
        assert!(Montgomery::new(&Ubig::one()).is_none());
        assert!(Montgomery::new(&Ubig::zero()).is_none());
    }

    #[test]
    fn mont_mul_matches_plain() {
        let n = Ubig::from_hex("d3c21bcecceda1000003").unwrap(); // odd
        let ctx = Montgomery::new(&n).unwrap();
        let a = Ubig::from_hex("1234567890abcdef12345").unwrap().rem(&n);
        let b = Ubig::from_hex("fedcba098765432112345").unwrap().rem(&n);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(prod, a.mul(&b).rem(&n));
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(u(7).pow_mod(&u(5), &u(13)), u(11));
        assert_eq!(u(2).pow_mod(&u(10), &u(1000)), u(24));
        assert_eq!(u(5).pow_mod(&Ubig::zero(), &u(7)), Ubig::one());
        assert_eq!(u(0).pow_mod(&u(5), &u(7)), Ubig::zero());
        assert_eq!(u(5).pow_mod(&u(5), &Ubig::one()), Ubig::zero());
    }

    #[test]
    fn pow_mod_even_modulus() {
        // 3^7 mod 20 = 2187 mod 20 = 7
        assert_eq!(u(3).pow_mod(&u(7), &u(20)), u(7));
        // 7^128 mod 2^64: square-and-reduce path over an even modulus.
        let m = Ubig::one().shl(64);
        let got = u(7).pow_mod(&u(128), &m);
        let mut expect = 1u64;
        for _ in 0..128 {
            expect = expect.wrapping_mul(7);
        }
        assert_eq!(got, Ubig::from_u64(expect));
    }

    #[test]
    fn fermat_little_theorem() {
        // p prime, a^(p-1) = 1 mod p.
        let p = Ubig::from_hex("ffffffffffffffc5").unwrap(); // largest 64-bit prime
        for a in [2u64, 3, 65537, 0xdeadbeef] {
            assert_eq!(u(a).pow_mod(&p.sub(&Ubig::one()), &p), Ubig::one(), "a={a}");
        }
    }

    #[test]
    fn pow_mod_large_operands() {
        // Cross-check the windowed Montgomery path against naive
        // square-and-multiply with explicit reduction.
        let n = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap();
        let n = if n.is_even() { n.add(&Ubig::one()) } else { n };
        let b = Ubig::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let e = Ubig::from_hex("10001").unwrap();
        let fast = b.pow_mod(&e, &n);
        // Naive reference.
        let mut acc = Ubig::one();
        for i in (0..e.bit_len()).rev() {
            acc = acc.mul(&acc).rem(&n);
            if e.bit(i) {
                acc = acc.mul(&b).rem(&n);
            }
        }
        assert_eq!(fast, acc);
    }
}
