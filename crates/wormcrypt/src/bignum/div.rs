//! Division with remainder — Knuth's Algorithm D (TAOCP vol. 2, 4.3.1).

use super::{Ubig, LIMB_BITS};

impl Ubig {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        assert!(!divisor.is_zero(), "division by zero Ubig");
        if self < divisor {
            return (Ubig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = div_rem_limb(&self.limbs, divisor.limbs[0]);
            return (Ubig::from_limbs(q), Ubig::from_u64(r));
        }
        let (q, r) = knuth_d(&self.limbs, &divisor.limbs);
        (Ubig::from_limbs(q), Ubig::from_limbs(r))
    }
}

/// Divides a multi-limb value by a single limb.
fn div_rem_limb(u: &[u64], d: u64) -> (Vec<u64>, u64) {
    let mut q = vec![0u64; u.len()];
    let mut rem: u128 = 0;
    for i in (0..u.len()).rev() {
        let cur = (rem << 64) | u[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (q, rem as u64)
}

/// Knuth Algorithm D for `v.len() >= 2` and `u >= v`.
fn knuth_d(u_in: &[u64], v_in: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = v_in.len();
    let m = u_in.len() - n;

    // D1: normalize so the top limb of v has its high bit set.
    let shift = v_in[n - 1].leading_zeros() as usize;
    let v = shl_limbs(v_in, shift, false);
    let mut u = shl_limbs(u_in, shift, true); // one extra high limb
    debug_assert_eq!(v.len(), n);
    debug_assert_eq!(u.len(), u_in.len() + 1);

    let mut q = vec![0u64; m + 1];
    let b: u128 = 1u128 << 64;

    // D2..D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate q̂.
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v[n - 1] as u128;
        let mut rhat = top % v[n - 1] as u128;
        while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = t as u64; // wrapping two's-complement store
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = t as u64;
        let went_negative = t < 0;

        q[j] = qhat as u64;

        // D6: add back if we overshot (probability ~ 2/2^64).
        if went_negative {
            q[j] -= 1;
            let mut carry: u128 = 0;
            for i in 0..n {
                let s = u[j + i] as u128 + v[i] as u128 + carry;
                u[j + i] = s as u64;
                carry = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(carry as u64);
        }
    }

    // D8: denormalize the remainder.
    let rem = shr_limbs(&u[..n], shift);
    (q, rem)
}

/// Shifts limbs left by `shift < 64` bits; `grow` forces an extra top limb.
fn shl_limbs(x: &[u64], shift: usize, grow: bool) -> Vec<u64> {
    let mut out = Vec::with_capacity(x.len() + 1);
    if shift == 0 {
        out.extend_from_slice(x);
        if grow {
            out.push(0);
        }
        return out;
    }
    let mut carry = 0u64;
    for &l in x {
        out.push((l << shift) | carry);
        carry = l >> (LIMB_BITS - shift);
    }
    if grow || carry != 0 {
        out.push(carry);
    }
    out
}

/// Shifts limbs right by `shift < 64` bits.
fn shr_limbs(x: &[u64], shift: usize) -> Vec<u64> {
    if shift == 0 {
        return x.to_vec();
    }
    let mut out = Vec::with_capacity(x.len());
    for i in 0..x.len() {
        let hi = x.get(i + 1).copied().unwrap_or(0);
        out.push((x[i] >> shift) | (hi << (LIMB_BITS - shift)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divide_by_one_and_self() {
        let n = Ubig::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        let (q, r) = n.div_rem(&Ubig::one());
        assert_eq!(q, n);
        assert!(r.is_zero());
        let (q, r) = n.div_rem(&n);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    fn smaller_dividend() {
        let (q, r) = Ubig::from_u64(5).div_rem(&Ubig::from_u64(7));
        assert!(q.is_zero());
        assert_eq!(r, Ubig::from_u64(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = Ubig::from_u64(5).div_rem(&Ubig::zero());
    }

    #[test]
    fn single_limb_divisor() {
        let n = Ubig::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let (q, r) = n.div_rem(&Ubig::from_u64(0x1_0000));
        // Division by 2^16 is a shift.
        assert_eq!(q, n.shr(16));
        assert_eq!(r, Ubig::from_u64(0x7788));
    }

    #[test]
    fn knuth_known_case() {
        // 2^192 / (2^96 + 1) — exercises multi-limb path with add-back-adjacent
        // qhat refinement.
        let num = Ubig::one().shl(192);
        let den = Ubig::one().shl(96).add(&Ubig::one());
        let (q, r) = num.div_rem(&den);
        // 2^192 = (2^96+1)(2^96 - 1) + 1
        assert_eq!(q, Ubig::one().shl(96).sub(&Ubig::one()));
        assert_eq!(r, Ubig::one());
        assert_eq!(q.mul(&den).add(&r), num);
    }

    #[test]
    fn reconstruction_identity() {
        // a = q*d + r with r < d for a pseudorandom batch.
        let mut x = 0xfeed_face_dead_beefu64;
        let mut next = |bits: usize| {
            let mut limbs = Vec::new();
            for _ in 0..bits.div_ceil(64) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                limbs.push(x);
            }
            Ubig::from_limbs(limbs)
        };
        for (abits, dbits) in [(512usize, 256usize), (320, 64), (256, 256), (1024, 128)] {
            let a = next(abits);
            let mut d = next(dbits);
            if d.is_zero() {
                d = Ubig::one();
            }
            let (q, r) = a.div_rem(&d);
            assert!(r < d);
            assert_eq!(q.mul(&d).add(&r), a, "a={a:?} d={d:?}");
        }
    }

    #[test]
    fn add_back_branch() {
        // A crafted case that historically triggers Knuth's rare add-back
        // step: u = B^3 - 1, v = B^2 - 1 in base B = 2^64 gives qhat
        // over-estimates.
        let b3 = Ubig::one().shl(192).sub(&Ubig::one());
        let b2 = Ubig::one().shl(128).sub(&Ubig::one());
        let (q, r) = b3.div_rem(&b2);
        assert_eq!(q.mul(&b2).add(&r), b3);
        assert!(r < b2);
    }
}
