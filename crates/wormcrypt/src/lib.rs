//! # wormcrypt — cryptographic substrate for the Strong WORM reproduction
//!
//! The Strong WORM architecture (Sion, ICDCS 2008) is built on a small set
//! of cryptographic primitives executed partly on the untrusted host and
//! partly inside a secure coprocessor. This crate implements all of them
//! from scratch — the offline build environment has no crypto crates, and
//! the reproduction treats them as substrates to be built, not assumed:
//!
//! * [`bignum::Ubig`] — arbitrary-precision arithmetic with Montgomery
//!   modular exponentiation and Miller–Rabin primality.
//! * [`RsaPrivateKey`] / [`RsaPublicKey`] — PKCS#1 v1.5 signatures at the
//!   512/1024/2048-bit widths the paper's deferred-strength scheme uses.
//! * [`Sha1`] and [`Sha256`] — FIPS 180-4 hashes ([`Sha1`] matches the
//!   IBM 4764 benchmark rows in Table 2; [`Sha256`] is the default hash).
//! * [`Hmac`] — RFC 2104, the paper's fastest burst-witnessing construct.
//! * [`ChainHash`] — the chained record hash signed by `datasig` (Table 1).
//! * [`MultisetHash`] — incremental (add/remove) multiset hashing, the
//!   alternative Table 1 cites \[Bellare–Micciancio, Clarke et al.\].
//! * [`MerkleTree`] — the O(log n)-per-update baseline the paper's window
//!   scheme replaces (ablation A1).
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use wormcrypt::{HashAlg, RsaPrivateKey};
//!
//! # fn main() -> Result<(), wormcrypt::CryptoError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let key = RsaPrivateKey::generate(&mut rng, 512);
//! let sig = key.sign(b"regulated record", HashAlg::Sha256)?;
//! assert!(key.public().verify(b"regulated record", &sig, HashAlg::Sha256));
//! # Ok(())
//! # }
//! ```
//!
//! This library is a research artifact: the implementations are correct and
//! tested against published vectors, but they are variable-time and must
//! not be used to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bignum;
mod chain;
mod digest;
mod error;
mod hmac;
mod incremental;
mod merkle;
mod rsa;
mod sha1;
mod sha256;

pub use chain::{ChainHash, ChainRecordWriter};
pub use digest::Digest;
pub use error::CryptoError;
pub use hmac::{ct_eq, Hmac};
pub use incremental::MultisetHash;
pub use merkle::MerkleTree;
pub use rsa::{HashAlg, RsaPrivateKey, RsaPublicKey};
pub use sha1::Sha1;
pub use sha256::Sha256;
