//! SHA-256 (FIPS 180-4) — the default hash for all integrity constructs in
//! this reproduction.

use crate::digest::Digest;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// ```
/// use wormcrypt::{Digest, Sha256};
/// let d = Sha256::digest(b"abc");
/// assert_eq!(d.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha256 {
    const BLOCK_LEN: usize = 64;
    const OUT_LEN: usize = 32;
    const NAME: &'static str = "sha-256";

    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress_blocks(&block);
                self.buf_len = 0;
            }
        }
        let whole = data.len() - data.len() % 64;
        if whole > 0 {
            // One bulk call over every complete block: the hardware path
            // (when present) amortizes its dispatch over the whole run.
            self.compress_blocks(&data[..whole]);
            data = &data[whole..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress_blocks(&block);
        let mut out = Vec::with_capacity(32);
        for w in self.state {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Sha256 {
    /// One-shot digest returned as a fixed array (avoids the `Vec` when the
    /// caller wants to embed the digest in a struct).
    pub fn digest_array(data: &[u8]) -> [u8; 32] {
        let v = Self::digest(data);
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    /// Compresses a run of whole 64-byte blocks, preferring the
    /// hardware SHA extensions (via the vendored safe `shani` shim —
    /// this crate itself stays `forbid(unsafe_code)`) and falling back
    /// to the portable scalar rounds when the CPU lacks them.
    fn compress_blocks(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        if shani::sha256_compress(&mut self.state, blocks) {
            return;
        }
        for block in blocks.chunks_exact(64) {
            // wormlint: allow(panic) -- chunks_exact(64) yields exactly 64 bytes
            let b: &[u8; 64] = block.try_into().expect("64-byte chunk");
            self.compress(b);
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 256) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 4095] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn digest_array_matches_vec() {
        assert_eq!(
            Sha256::digest_array(b"xyz").to_vec(),
            Sha256::digest(b"xyz")
        );
    }
}
