//! Common interface for the hash functions in this crate.

/// A streaming cryptographic hash function.
///
/// Implemented by [`Sha1`](crate::Sha1) and [`Sha256`](crate::Sha256); used
/// generically by [`Hmac`](crate::Hmac), the chained record hash, and the
/// Merkle tree.
pub trait Digest: Clone {
    /// Internal block length in bytes (64 for the SHA family here).
    const BLOCK_LEN: usize;
    /// Output length in bytes.
    const OUT_LEN: usize;
    /// Human-readable algorithm name (e.g. `"sha-256"`).
    const NAME: &'static str;

    /// Creates a fresh hasher.
    fn new() -> Self;

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: digest of a single byte string.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
