//! SHA-1 (FIPS 180-4). The paper's reference hardware (IBM 4764) reports
//! SHA-1 rates, so the reproduction includes it; new integrity constructs
//! should prefer [`Sha256`](crate::Sha256).

use crate::digest::Digest;

/// Streaming SHA-1 hasher.
///
/// ```
/// use wormcrypt::{Digest, Sha1};
/// let d = Sha1::digest(b"abc");
/// assert_eq!(hex(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha1 {
    const BLOCK_LEN: usize = 64;
    const OUT_LEN: usize = 20;
    const NAME: &'static str = "sha-1";

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length padding must not count toward total_len; compensate by
        // compressing the final block manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = Vec::with_capacity(20);
        for w in self.state {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            // wormlint: allow(panic) -- chunks_exact(4) yields exactly 4 bytes
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split={split}");
        }
    }
}
