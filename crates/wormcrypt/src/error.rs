//! Error type for the crypto substrate.

use std::fmt;

/// Errors produced by the `wormcrypt` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The RSA modulus is too small to hold the PKCS#1 v1.5 encoding.
    ModulusTooSmall {
        /// Minimum modulus length in bytes for this digest.
        need: usize,
        /// Actual modulus length in bytes.
        have: usize,
    },
    /// A serialized structure failed to parse.
    Malformed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::ModulusTooSmall { need, have } => write!(
                f,
                "modulus of {have} bytes too small for encoding needing {need} bytes"
            ),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = CryptoError::ModulusTooSmall { need: 62, have: 32 };
        let s = e.to_string();
        assert!(s.contains("62") && s.contains("32"));
        let e = CryptoError::Malformed("bad header");
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(CryptoError::Malformed("x"));
    }
}
