//! HMAC (RFC 2104) over any [`Digest`] in this crate.
//!
//! The paper (§4.3) proposes HMACs as the fastest short-term witnessing
//! construct during burst periods; the SCPU later upgrades HMACed records to
//! full signatures.

use crate::digest::Digest;

/// Keyed message authentication code.
///
/// ```
/// use wormcrypt::{Hmac, Sha256};
/// let tag = Hmac::<Sha256>::mac(b"key", b"message");
/// assert!(Hmac::<Sha256>::verify(b"key", b"message", &tag));
/// assert!(!Hmac::<Sha256>::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Clone, Debug)]
pub struct Hmac<D: Digest> {
    inner: D,
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates a streaming HMAC instance with the given key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let kd = D::digest(key);
            key_block[..kd.len()].copy_from_slice(&kd);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::new();
        inner.update(&ipad);
        Hmac {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the instance and returns the authentication tag.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], message: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time tag verification.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, message);
        ct_eq(&expected, tag)
    }
}

/// Constant-time byte-slice equality (length leak only).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sha1, Sha256};

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = Hmac::<Sha256>::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let tag = Hmac::<Sha256>::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn long_key_is_hashed() {
        let key = [0xaau8; 131];
        let tag = Hmac::<Sha256>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test case 1 for HMAC-SHA1.
    #[test]
    fn rfc2202_sha1() {
        let tag = Hmac::<Sha1>::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Hmac::<Sha256>::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(b"key", b"hello world"));
    }

    #[test]
    fn verify_rejects_wrong_everything() {
        let tag = Hmac::<Sha256>::mac(b"key", b"msg");
        assert!(Hmac::<Sha256>::verify(b"key", b"msg", &tag));
        assert!(!Hmac::<Sha256>::verify(b"KEY", b"msg", &tag));
        assert!(!Hmac::<Sha256>::verify(b"key", b"msg2", &tag));
        assert!(!Hmac::<Sha256>::verify(b"key", b"msg", &tag[..31]));
        assert!(!Hmac::<Sha256>::verify(b"key", b"msg", &[]));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
