//! RSA signatures (PKCS#1 v1.5) over the in-crate bignum.
//!
//! The Strong WORM design signs with three strength tiers: 512-bit
//! *short-lived* keys for burst witnessing, and 1024/2048-bit *permanent*
//! keys (`s` for metadata/data signatures, `d` for deletion proofs). The
//! relative signing costs across these widths — which drive the paper's
//! deferred-strength optimization — emerge naturally from the O(k³)
//! modular exponentiation.

use crate::bignum::Ubig;
use crate::digest::Digest;
use crate::error::CryptoError;
use crate::{Sha1, Sha256};

/// Hash algorithm used inside the PKCS#1 v1.5 encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// SHA-1 (paper-era default; kept for the Table 2 reproduction).
    Sha1,
    /// SHA-256 (default everywhere else).
    Sha256,
}

impl HashAlg {
    /// DER-encoded `DigestInfo` prefix (algorithm identifier).
    fn digest_info_prefix(self) -> &'static [u8] {
        match self {
            HashAlg::Sha1 => &[
                0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
                0x14,
            ],
            HashAlg::Sha256 => &[
                0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
                0x01, 0x05, 0x00, 0x04, 0x20,
            ],
        }
    }

    /// Digest of `msg` under this algorithm.
    pub fn hash(self, msg: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Sha1 => Sha1::digest(msg),
            HashAlg::Sha256 => Sha256::digest(msg),
        }
    }
}

/// RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: Ubig,
    e: Ubig,
}

/// RSA private key with CRT parameters.
#[derive(Clone, Debug)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: Ubig,
    p: Ubig,
    q: Ubig,
    dp: Ubig,
    dq: Ubig,
    qinv: Ubig,
}

impl RsaPublicKey {
    /// Modulus width in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Modulus width in bytes (signature length).
    pub fn modulus_bytes(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The modulus `n`.
    pub fn n(&self) -> &Ubig {
        &self.n
    }

    /// The public exponent `e`.
    pub fn e(&self) -> &Ubig {
        &self.e
    }

    /// Short stable identifier: first 8 bytes of `SHA-256(n || e)`.
    pub fn fingerprint(&self) -> [u8; 8] {
        let mut h = Sha256::new();
        h.update(&self.n.to_bytes_be());
        h.update(&self.e.to_bytes_be());
        let d = h.finalize();
        let mut out = [0u8; 8];
        out.copy_from_slice(&d[..8]);
        out
    }

    /// Verifies a PKCS#1 v1.5 signature over `msg`.
    ///
    /// Returns `false` for any malformed, truncated, or mismatching
    /// signature — verification never panics on attacker-controlled input.
    pub fn verify(&self, msg: &[u8], sig: &[u8], alg: HashAlg) -> bool {
        if sig.len() != self.modulus_bytes() {
            return false;
        }
        let s = Ubig::from_bytes_be(sig);
        if s >= self.n {
            return false;
        }
        let em = s.pow_mod(&self.e, &self.n);
        let expected = match emsa_pkcs1_v15(msg, self.modulus_bytes(), alg) {
            Ok(e) => e,
            Err(_) => return false,
        };
        em.to_bytes_be_padded(self.modulus_bytes()) == expected
    }

    /// Serializes as `len(n) || n || len(e) || e` (u32-BE length prefixes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the [`RsaPublicKey::to_bytes`] format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (n, rest) = read_len_prefixed(bytes)?;
        let (e, rest) = read_len_prefixed(rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Malformed("trailing bytes in public key"));
        }
        let key = RsaPublicKey {
            n: Ubig::from_bytes_be(n),
            e: Ubig::from_bytes_be(e),
        };
        if key.n.is_zero() || key.e.is_zero() {
            return Err(CryptoError::Malformed("zero modulus or exponent"));
        }
        Ok(key)
    }
}

fn read_len_prefixed(bytes: &[u8]) -> Result<(&[u8], &[u8]), CryptoError> {
    if bytes.len() < 4 {
        return Err(CryptoError::Malformed("short length prefix"));
    }
    // wormlint: allow(panic) -- bytes.len() >= 4 checked above
    let len = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 4 + len {
        return Err(CryptoError::Malformed("length prefix exceeds buffer"));
    }
    Ok((&bytes[4..4 + len], &bytes[4 + len..]))
}

impl RsaPrivateKey {
    /// Generates a fresh key pair with a modulus of exactly `bits` bits and
    /// public exponent 65537.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` or `bits` is odd.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 64, "modulus below 64 bits cannot encode a digest");
        assert!(bits.is_multiple_of(2), "modulus width must be even");
        let e = Ubig::from_u64(65537);
        loop {
            let p = Ubig::gen_prime(rng, bits / 2);
            let q = loop {
                let q = Ubig::gen_prime(rng, bits / 2);
                if q != p {
                    break q;
                }
            };
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = Ubig::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            if !e.gcd(&phi).is_one() {
                continue;
            }
            // wormlint: allow(panic) -- the inverse exists: gcd(e, phi) == 1 checked above
            let d = e.mod_inverse(&phi).expect("gcd(e, phi) == 1");
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            // wormlint: allow(panic) -- p and q are distinct primes, so q is invertible mod p
            let qinv = q.mod_inverse(&p).expect("p, q distinct primes");
            return RsaPrivateKey {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `msg` with PKCS#1 v1.5.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::ModulusTooSmall`] if the modulus cannot hold
    /// the `DigestInfo` encoding for `alg`.
    pub fn sign(&self, msg: &[u8], alg: HashAlg) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_bytes();
        let em = emsa_pkcs1_v15(msg, k, alg)?;
        let m = Ubig::from_bytes_be(&em);
        let s = self.raw_decrypt(&m);
        Ok(s.to_bytes_be_padded(k))
    }

    /// RSA private operation via the Chinese Remainder Theorem.
    fn raw_decrypt(&self, m: &Ubig) -> Ubig {
        let m1 = m.pow_mod(&self.dp, &self.p);
        let m2 = m.pow_mod(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p, handling m1 < m2.
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub(&m2_mod_p)
        } else {
            m1.add(&self.p).sub(&m2_mod_p)
        };
        let h = self.qinv.mul(&diff).rem(&self.p);
        m2.add(&self.q.mul(&h))
    }

    /// The private exponent (used by self-consistency tests).
    pub fn d(&self) -> &Ubig {
        &self.d
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 0xFF.. 0x00 DigestInfo H(m)`.
fn emsa_pkcs1_v15(msg: &[u8], k: usize, alg: HashAlg) -> Result<Vec<u8>, CryptoError> {
    let h = alg.hash(msg);
    let prefix = alg.digest_info_prefix();
    let t_len = prefix.len() + h.len();
    if k < t_len + 11 {
        return Err(CryptoError::ModulusTooSmall {
            need: t_len + 11,
            have: k,
        });
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&h);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// 512-bit key shared across tests (keygen is the slow part).
    fn test_key() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(42);
            RsaPrivateKey::generate(&mut rng, 512)
        })
    }

    #[test]
    fn keygen_properties() {
        let key = test_key();
        assert_eq!(key.public().modulus_bits(), 512);
        assert_eq!(key.public().modulus_bytes(), 64);
        // n = p * q
        assert_eq!(key.p.mul(&key.q), *key.public().n());
        // e * d ≡ 1 mod φ
        let phi = key.p.sub(&Ubig::one()).mul(&key.q.sub(&Ubig::one()));
        assert_eq!(key.public().e().mul(key.d()).rem(&phi), Ubig::one());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        for alg in [HashAlg::Sha1, HashAlg::Sha256] {
            let sig = key.sign(b"compliance record #1", alg).unwrap();
            assert_eq!(sig.len(), 64);
            assert!(key.public().verify(b"compliance record #1", &sig, alg));
        }
    }

    #[test]
    fn verify_rejects_tampering() {
        let key = test_key();
        let sig = key.sign(b"original", HashAlg::Sha256).unwrap();
        assert!(!key.public().verify(b"tampered", &sig, HashAlg::Sha256));
        // Flip one bit of the signature.
        let mut bad = sig.clone();
        bad[10] ^= 1;
        assert!(!key.public().verify(b"original", &bad, HashAlg::Sha256));
        // Wrong length.
        assert!(!key
            .public()
            .verify(b"original", &sig[..63], HashAlg::Sha256));
        assert!(!key.public().verify(b"original", &[], HashAlg::Sha256));
        // Wrong hash algorithm.
        assert!(!key.public().verify(b"original", &sig, HashAlg::Sha1));
    }

    #[test]
    fn verify_rejects_oversized_signature_value() {
        let key = test_key();
        // s = n (>= n must be rejected before exponentiation).
        let s = key.public().n().to_bytes_be_padded(64);
        assert!(!key.public().verify(b"m", &s, HashAlg::Sha256));
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let key = test_key();
        let m = Ubig::from_hex("123456789abcdef0aa55").unwrap();
        let crt = key.raw_decrypt(&m);
        let plain = m.pow_mod(key.d(), key.public().n());
        assert_eq!(crt, plain);
    }

    #[test]
    fn signatures_from_different_keys_do_not_cross_verify() {
        let key1 = test_key();
        let mut rng = StdRng::seed_from_u64(43);
        let key2 = RsaPrivateKey::generate(&mut rng, 512);
        let sig = key1.sign(b"msg", HashAlg::Sha256).unwrap();
        assert!(!key2.public().verify(b"msg", &sig, HashAlg::Sha256));
        assert_ne!(key1.public().fingerprint(), key2.public().fingerprint());
    }

    #[test]
    fn modulus_too_small_for_digest() {
        let mut rng = StdRng::seed_from_u64(44);
        // 256-bit modulus (32 bytes) cannot hold SHA-256 DigestInfo (51) + 11.
        let key = RsaPrivateKey::generate(&mut rng, 256);
        match key.sign(b"m", HashAlg::Sha256) {
            Err(CryptoError::ModulusTooSmall { need, have }) => {
                assert_eq!(have, 32);
                assert!(need > have);
            }
            other => panic!("expected ModulusTooSmall, got {other:?}"),
        }
        // SHA-1 fits (35 + 11 = 46 > 32 — actually also too small).
        assert!(key.sign(b"m", HashAlg::Sha1).is_err());
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let key = test_key();
        let bytes = key.public().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, key.public());
        // Corrupt length prefix.
        let mut bad = bytes.clone();
        bad[0] = 0xff;
        assert!(RsaPublicKey::from_bytes(&bad).is_err());
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
    }
}
