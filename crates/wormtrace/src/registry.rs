//! The metrics registry: named instruments behind a read-mostly lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::metrics::{Counter, Gauge, OpStats, OpTimer};
use crate::snapshot::StatsSnapshot;
use crate::span::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::sync;
use crate::trace::{EventRing, TraceEvent, TraceSink, DEFAULT_RING_CAPACITY};

/// Default read-plane event sampling rate: 1-in-this-many reads emit a
/// ring event (witness, daemon, and net events are always emitted).
/// Counters and histograms are exact regardless — sampling only thins
/// the flight-recorder ring, keeping the mutex-guarded push off most of
/// the hot read path. Error events bypass sampling at every call site,
/// so failure evidence is never thinned.
///
/// Per-registry override: [`Registry::set_read_event_sample`] (e.g. `1`
/// to ring every read while debugging, or a larger stride to shrink
/// ring pressure on a hot store).
pub const READ_EVENT_SAMPLE: u64 = 64;

/// A process-wide (or server-wide) collection of named instruments.
///
/// Registration takes a write lock; lookup takes a read lock. The
/// intended pattern is for each subsystem to resolve `Arc` handles to
/// its instruments **once** at construction and record through the
/// handles thereafter, so steady-state recording is pure atomics.
#[derive(Debug)]
pub struct Registry {
    ops: RwLock<BTreeMap<String, Arc<OpStats>>>,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    ring: EventRing,
    flight: FlightRecorder,
    sink: RwLock<Option<Arc<dyn TraceSink>>>,
    has_sink: AtomicBool,
    enabled: AtomicBool,
    read_sample: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for dyn TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl Registry {
    /// Registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry with an explicit event-ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self::with_capacities(capacity, DEFAULT_FLIGHT_CAPACITY)
    }

    /// Registry with explicit event-ring and flight-recorder capacities.
    pub fn with_capacities(ring_capacity: usize, flight_capacity: usize) -> Self {
        Registry {
            ops: RwLock::new(BTreeMap::new()),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            ring: EventRing::new(ring_capacity),
            flight: FlightRecorder::new(flight_capacity),
            sink: RwLock::new(None),
            has_sink: AtomicBool::new(false),
            enabled: AtomicBool::new(true),
            read_sample: AtomicU64::new(READ_EVENT_SAMPLE),
        }
    }

    /// Current read-plane sampling stride: 1-in-this-many successful
    /// reads emit a ring event (defaults to [`READ_EVENT_SAMPLE`]).
    pub fn read_event_sample(&self) -> u64 {
        // ordering: tuning knob; a stale stride samples a few events at
        // the old rate, nothing is guarded by it.
        self.read_sample.load(Ordering::Relaxed)
    }

    /// Sets the read-plane sampling stride (clamped to at least 1).
    pub fn set_read_event_sample(&self, stride: u64) {
        // ordering: see `read_event_sample()` — the knob publishes nothing.
        self.read_sample.store(stride.max(1), Ordering::Relaxed);
    }

    /// Whether instruments driven through [`Registry::timer`] and
    /// [`Registry::emit`] are live.
    pub fn enabled(&self) -> bool {
        // ordering: advisory on/off flag; a stale read just records (or
        // skips) a few more events, no data is guarded by it.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. Disabling makes [`Registry::timer`]
    /// return inert timers and [`Registry::emit`] a no-op; direct
    /// counter/gauge handles keep working (they are too cheap to gate).
    pub fn set_enabled(&self, enabled: bool) {
        // ordering: see `enabled()` — the flag publishes nothing.
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// A latency timer: live when the registry is enabled, inert (and
    /// free) when it is not. The only `Instant` an instrumented hot
    /// path takes is the pair inside this timer.
    pub fn timer(&self) -> OpTimer {
        if self.enabled() {
            OpTimer::started()
        } else {
            OpTimer::inert()
        }
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(found) = sync::read(map).get(name) {
            return Arc::clone(found);
        }
        let mut write = sync::write(map);
        Arc::clone(write.entry(name.to_string()).or_default())
    }

    /// Get-or-register the [`OpStats`] called `name`.
    pub fn op(&self, name: &str) -> Arc<OpStats> {
        Self::get_or_insert(&self.ops, name)
    }

    /// Get-or-register the [`Counter`] called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// Get-or-register the [`Gauge`] called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// Emits a structured event to the ring and, if one is attached,
    /// the external sink. No-op while disabled.
    pub fn emit(&self, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        // ordering: cheap maybe-stale hint that skips the sink lock on
        // the common no-sink path; the lock acquire below is the real
        // synchronization point, so a stale hint only costs one event.
        if self.has_sink.load(Ordering::Relaxed) {
            // lock-order: Registry.sink is a trace leaf; emitters may hold any plane lock above it
            if let Some(sink) = sync::read(&self.sink).as_ref() {
                sink.on_event(&event);
            }
        }
        self.ring.push(event);
    }

    /// Attaches (or replaces) the external event sink.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        *sync::write(&self.sink) = Some(sink);
        // ordering: hint only — emitters that miss the flip skip this
        // event's sink call; the sink itself is published by the lock.
        self.has_sink.store(true, Ordering::Relaxed);
    }

    /// Detaches the external event sink, if any.
    pub fn clear_sink(&self) {
        // ordering: hint only (see `set_sink`); an emitter racing the
        // clear may still deliver one event through the lock, which is
        // indistinguishable from the event preceding the clear.
        self.has_sink.store(false, Ordering::Relaxed);
        *sync::write(&self.sink) = None;
    }

    /// The flight-recorder ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The span-tree flight recorder: captured slow/error request
    /// traces (see [`crate::span`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// A point-in-time, name-sorted copy of every registered
    /// instrument. Sorted order comes for free from the `BTreeMap`s and
    /// makes the snapshot's canonical encoding deterministic.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ops: sync::read(&self.ops)
                .iter()
                .map(|(name, op)| (name.clone(), op.snapshot()))
                .collect(),
            // lock-order: Registry.ops -> counters; snapshot reads the instrument maps in declaration order
            counters: sync::read(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            // lock-order: Registry.counters -> gauges; snapshot reads the instrument maps in declaration order
            gauges: sync::read(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            events_dropped: self.ring.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Plane;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.op("x");
        let b = r.op("x");
        a.record(10, true);
        b.record(20, false);
        let snap = r.snapshot();
        let (name, op) = &snap.ops[0];
        assert_eq!(name, "x");
        assert_eq!(op.ok, 1);
        assert_eq!(op.err, 1);
        assert_eq!(op.latency.count(), 2);
    }

    #[test]
    fn disabled_registry_yields_inert_timers_and_drops_events() {
        let r = Registry::new();
        r.set_enabled(false);
        assert!(r.op("x").finish(r.timer(), true).is_none());
        r.emit(TraceEvent {
            op: "x",
            plane: Plane::Read,
            sn: None,
            duration_ns: 1,
            ok: true,
        });
        assert!(r.ring().is_empty());
        r.set_enabled(true);
        assert!(r.op("x").finish(r.timer(), true).is_some());
    }

    #[test]
    fn sink_sees_emitted_events() {
        struct CountingSink(AtomicU64);
        impl TraceSink for CountingSink {
            fn on_event(&self, _event: &TraceEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let r = Registry::new();
        let sink = Arc::new(CountingSink(AtomicU64::new(0)));
        r.set_sink(sink.clone());
        let event = TraceEvent {
            op: "x",
            plane: Plane::Net,
            sn: Some(3),
            duration_ns: 7,
            ok: true,
        };
        r.emit(event.clone());
        r.clear_sink();
        r.emit(event);
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
        assert_eq!(r.ring().len(), 2);
    }

    #[test]
    fn read_sample_defaults_and_clamps() {
        let r = Registry::new();
        assert_eq!(r.read_event_sample(), READ_EVENT_SAMPLE);
        r.set_read_event_sample(4);
        assert_eq!(r.read_event_sample(), 4);
        // Stride 0 would divide by zero at every call site; clamp to 1.
        r.set_read_event_sample(0);
        assert_eq!(r.read_event_sample(), 1);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.op("zeta");
        r.op("alpha");
        r.counter("c2").add(2);
        r.counter("c1").add(1);
        r.gauge("g").set(9);
        let snap = r.snapshot();
        assert_eq!(snap.ops[0].0, "alpha");
        assert_eq!(snap.ops[1].0, "zeta");
        assert_eq!(snap.counters, vec![("c1".into(), 1), ("c2".into(), 2)]);
        assert_eq!(snap.gauge("g"), Some(9));
    }
}
