//! Poison-tolerant accessors for this crate's std locks.
//!
//! Observability must not take the server down: if some thread panics
//! while holding a metrics lock, the panic already records the failure
//! — propagating the poison into every later `snapshot()` or `emit()`
//! would turn one broken request into a dead stats plane. Every
//! structure guarded here (ring deques, registry maps, span lists) is
//! valid after any prefix of its critical section — the worst a
//! recovered guard can observe is a lost single update — so entering
//! through the poison is strictly better than panicking again.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, entering through a poisoned guard rather than panicking.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, entering through a poisoned guard rather than
/// panicking.
pub(crate) fn read<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, entering through a poisoned guard rather than
/// panicking.
pub(crate) fn write<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn poisoned_locks_still_open() {
        let m = Arc::new(Mutex::new(1u32));
        let r = Arc::new(RwLock::new(2u32));
        let (mc, rc) = (Arc::clone(&m), Arc::clone(&r));
        let _ = std::thread::spawn(move || {
            let _g1 = mc.lock().unwrap();
            let _g2 = rc.write().unwrap();
            panic!("poison both");
        })
        .join();
        assert!(m.is_poisoned() && r.is_poisoned());
        assert_eq!(*lock(&m), 1);
        assert_eq!(*read(&r), 2);
        *write(&r) += 1;
        assert_eq!(*read(&r), 3);
    }
}
