//! Point-in-time, order-canonical statistics snapshots.

use crate::metrics::OpSnapshot;

/// A copy of every instrument in a [`crate::Registry`], name-sorted.
///
/// The sorted order is part of the type's contract: it makes the
/// canonical wire encoding (in `strongworm::codec`) deterministic, so
/// two equal snapshots always encode to identical bytes. All entry
/// lists are sorted by name, strictly ascending (no duplicates).
///
/// Snapshots merge ([`StatsSnapshot::merge`]): ops and counters add,
/// histograms merge bucket-wise, gauges keep the maximum (a merged
/// gauge answers "how high did the level get anywhere"). Merging is
/// associative and commutative and never loses counts, so per-node
/// snapshots aggregate exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-operation stats, sorted by op name.
    pub ops: Vec<(String, OpSnapshot)>,
    /// Plain counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last observed level), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Events evicted from the flight-recorder ring unobserved.
    pub events_dropped: u64,
}

fn merge_sorted<T: Clone>(
    ours: &mut Vec<(String, T)>,
    theirs: &[(String, T)],
    mut combine: impl FnMut(&mut T, &T),
) {
    let mut merged: Vec<(String, T)> = Vec::with_capacity(ours.len() + theirs.len());
    let mut a = std::mem::take(ours).into_iter();
    let mut b = theirs.iter();
    // One-element lookahead per side, consumed by `take()` and refilled
    // from its iterator — the ownership never needs a fallible unwrap.
    let mut next_a = a.next();
    let mut next_b = b.next();
    loop {
        match (next_a.take(), next_b.take()) {
            (Some(x), Some(y)) => match x.0.cmp(&y.0) {
                std::cmp::Ordering::Less => {
                    merged.push(x);
                    next_a = a.next();
                    next_b = Some(y);
                }
                std::cmp::Ordering::Greater => {
                    merged.push((y.0.clone(), y.1.clone()));
                    next_a = Some(x);
                    next_b = b.next();
                }
                std::cmp::Ordering::Equal => {
                    let (n, mut v) = x;
                    combine(&mut v, &y.1);
                    merged.push((n, v));
                    next_a = a.next();
                    next_b = b.next();
                }
            },
            (Some(x), None) => {
                merged.push(x);
                next_a = a.next();
            }
            (None, Some(y)) => {
                merged.push((y.0.clone(), y.1.clone()));
                next_b = b.next();
            }
            (None, None) => break,
        }
    }
    *ours = merged;
}

impl StatsSnapshot {
    /// The op snapshot named `name`, if present.
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.ops[i].1)
    }

    /// The counter named `name` (0 when absent — a counter never
    /// incremented is indistinguishable from one never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map_or(0, |i| self.counters[i].1)
    }

    /// Median latency estimate for op `name` in ns, if recorded (an
    /// upper-bound log2-bucket estimate; see
    /// [`crate::HistogramSnapshot::quantile_ns`]).
    pub fn p50_ns(&self, name: &str) -> Option<u64> {
        self.op(name).map(OpSnapshot::p50_ns)
    }

    /// 99th-percentile latency estimate for op `name` in ns, if
    /// recorded.
    pub fn p99_ns(&self, name: &str) -> Option<u64> {
        self.op(name).map(OpSnapshot::p99_ns)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Folds `other` into `self` (see the type docs for semantics).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        merge_sorted(&mut self.ops, &other.ops, |a, b| a.merge(b));
        merge_sorted(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(*b);
        });
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| *a = (*a).max(*b));
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, u64)]) -> StatsSnapshot {
        StatsSnapshot {
            counters: entries.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn merge_interleaves_names() {
        let mut a = snap(&[("a", 1), ("c", 3)]);
        let b = snap(&[("b", 2), ("c", 4)]);
        a.merge(&b);
        assert_eq!(
            a.counters,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 7)]
        );
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.counter("missing"), 0);
    }

    #[test]
    fn gauges_merge_as_max() {
        let mut a = StatsSnapshot {
            gauges: vec![("q".into(), 5)],
            ..StatsSnapshot::default()
        };
        a.merge(&StatsSnapshot {
            gauges: vec![("q".into(), 3)],
            events_dropped: 2,
            ..StatsSnapshot::default()
        });
        assert_eq!(a.gauge("q"), Some(5));
        assert_eq!(a.events_dropped, 2);
    }

    #[test]
    fn quantile_helpers_mirror_histogram_estimates() {
        let mut op = OpSnapshot::default();
        for ns in [100u64, 100, 100, 100_000] {
            op.latency.buckets[crate::bucket_index(ns)] += 1;
            op.latency.sum_ns += ns;
        }
        op.ok = 4;
        let snap = StatsSnapshot {
            ops: vec![("server.read".into(), op.clone())],
            ..StatsSnapshot::default()
        };
        assert_eq!(snap.p50_ns("server.read"), Some(op.p50_ns()));
        assert_eq!(snap.p99_ns("server.read"), Some(op.p99_ns()));
        assert_eq!(op.p50_ns(), op.latency.quantile_ns(0.50));
        assert!(op.p99_ns() >= op.p50_ns());
        assert_eq!(snap.p50_ns("missing"), None);
    }
}
