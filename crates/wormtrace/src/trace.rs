//! Structured trace events: a bounded ring plus a pluggable sink.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::sync;

/// Which half of the architecture an event happened on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plane {
    /// The concurrent, SCPU-free read plane.
    Read,
    /// The serialized witness plane (update path).
    Witness,
    /// Inside the secure coprocessor (virtual time).
    Scpu,
    /// The background retention daemon.
    Daemon,
    /// The network serving layer.
    Net,
    /// The record store (block-device I/O).
    Store,
}

impl Plane {
    /// Stable display label.
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::Read => "read",
            Plane::Witness => "witness",
            Plane::Scpu => "scpu",
            Plane::Daemon => "daemon",
            Plane::Net => "net",
            Plane::Store => "store",
        }
    }
}

/// One completed, instrumented operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Registry op name (e.g. `"server.read"`).
    pub op: &'static str,
    /// The plane the operation ran on.
    pub plane: Plane,
    /// Serial number involved, when the operation has one.
    pub sn: Option<u64>,
    /// Duration in nanoseconds (wall, or virtual for SCPU commands).
    pub duration_ns: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Receiver for trace events, for wiring external exporters (logging,
/// OTLP bridges, test probes). Implementations must be cheap and must
/// not block: they run inline on the instrumented path.
pub trait TraceSink: Send + Sync {
    /// Called once per emitted event.
    fn on_event(&self, event: &TraceEvent);
}

/// Default ring capacity: enough recent history for a postmortem
/// without unbounded memory.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A bounded ring of the most recent [`TraceEvent`]s.
///
/// When full, the oldest event is overwritten and counted as dropped —
/// the ring is a flight recorder, not a durable log.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventRing {
    /// Ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting (and counting) the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        // lock-order: EventRing.inner is the terminal trace leaf; no lock is acquired while the ring is held
        let mut inner = sync::lock(&self.inner);
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// The most recent events, oldest first (up to `n`).
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let inner = sync::lock(&self.inner);
        let skip = inner.events.len().saturating_sub(n);
        inner.events.iter().skip(skip).cloned().collect()
    }

    /// How many events have been evicted unobserved.
    pub fn dropped(&self) -> u64 {
        // lock-order: EventRing.inner is the terminal trace leaf; no lock is acquired while the ring is held
        sync::lock(&self.inner).dropped
    }

    /// Current number of resident events.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            op: "test.op",
            plane: Plane::Read,
            sn: Some(i),
            duration_ns: i,
            ok: true,
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].sn, Some(3));
        assert_eq!(recent[1].sn, Some(4));
        assert!(!ring.is_empty());
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.recent(10)[0].sn, Some(2));
    }
}
