//! Atomic counters, gauges, and log2 latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket 0 holds exact-zero samples; bucket `i` (for `1 <= i < 31`)
/// holds `[2^(i-1), 2^i)` nanoseconds; the last bucket is open-ended.
/// 32 buckets span sub-nanosecond to ~2.1 s in distinct buckets, which
/// covers every latency this stack produces (including virtual-time
/// SCPU costs), with a catch-all above.
pub const NUM_BUCKETS: usize = 32;

/// The log2 bucket a nanosecond value falls into.
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive lower and exclusive upper bound of bucket `i` in
/// nanoseconds; the last bucket has no upper bound.
pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
    match i {
        0 => (0, Some(1)),
        _ if i < NUM_BUCKETS - 1 => (1 << (i - 1), Some(1 << i)),
        _ => (1 << (NUM_BUCKETS - 2), None),
    }
}

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`, returning the value *before* the addition (useful for
    /// cheap deterministic sampling).
    pub fn add(&self, n: u64) -> u64 {
        // ordering: pure statistic — fetch_add is atomic at every
        // ordering, and the count orders nothing else.
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Increments by one, returning the value before the increment.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: statistic read; see `add`
    }
}

/// A last-value instrument for levels (queue depth, backoff, spill
/// count). Unlike [`Counter`], it can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        // ordering: a gauge is an approximate level indicator; no
        // reader makes a control decision that needs happens-before.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed); // ordering: see `set`
    }

    /// Lowers the level by one, saturating at zero (a racy decrement
    /// below zero indicates a bookkeeping bug, not a panic).
    pub fn dec(&self) {
        let floor = |v: u64| Some(v.saturating_sub(1));
        let cell = &self.0;
        // ordering: see `set`; the CAS loop itself guarantees the
        // saturating decrement is lossless regardless of ordering.
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, floor);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: see `set`
    }
}

/// Fixed-bucket log2 latency histogram over relaxed atomics.
///
/// Recording is two relaxed RMWs (bucket + sum); there is no lock and
/// no allocation. Snapshots taken concurrently with recording are
/// *per-field* consistent (each bucket is an atomic read), which is the
/// standard contract for lock-free histograms — totals observed after
/// all recorders quiesce are exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        // ordering: the documented lock-free histogram contract — each
        // cell is independently atomic, snapshots are per-field
        // consistent, and exactness holds once recorders quiesce.
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed); // ordering: see above
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // ordering: per-field-consistent reads; see `record`.
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed), // ordering: see `record`
        }
    }
}

/// A plain-data copy of a [`Histogram`], mergeable and serializable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded nanoseconds (saturating on merge).
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples across all buckets (saturating).
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative and never loses counts: every bucket and the sum add
    /// (saturating at `u64::MAX`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Upper-bound estimate of the `q`-quantile (0.0..=1.0) in
    /// nanoseconds: the exclusive upper bound of the bucket where the
    /// cumulative count reaches `q * count`. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b);
            if cum >= target {
                return match bucket_bounds(i) {
                    (_, Some(hi)) => hi,
                    (lo, None) => lo.saturating_mul(2),
                };
            }
        }
        // Unreachable with a consistent snapshot; be defensive anyway.
        bucket_bounds(NUM_BUCKETS - 1).0
    }
}

/// A started (or inert) latency measurement. Obtained from
/// [`crate::Registry::timer`]; an inert timer records nothing, which is
/// how a disabled registry removes itself from the hot path.
#[derive(Clone, Copy, Debug)]
pub struct OpTimer(pub(crate) Option<Instant>);

impl OpTimer {
    /// A timer that will record when finished.
    pub fn started() -> Self {
        OpTimer(Some(Instant::now()))
    }

    /// A timer that records nothing.
    pub fn inert() -> Self {
        OpTimer(None)
    }
}

/// The per-operation instrument: outcome counters plus a latency
/// histogram, always updated together.
///
/// Invariant (asserted by the concurrency tests): after recorders
/// quiesce, `ok + err` equals the histogram's total count — recording
/// never updates one without the other.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Successful completions.
    pub ok: Counter,
    /// Failed completions.
    pub err: Counter,
    /// Completion latency (wall ns, or virtual ns for SCPU commands).
    pub latency: Histogram,
}

impl OpStats {
    /// Empty instrument.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation, returning the outcome counter's
    /// value before the increment (for deterministic sampling).
    pub fn record(&self, ns: u64, ok: bool) -> u64 {
        self.latency.record(ns);
        if ok {
            self.ok.inc()
        } else {
            self.err.inc()
        }
    }

    /// Finishes `timer`: on a live timer records the elapsed time and
    /// returns `(elapsed_ns, prior_outcome_count)`; on an inert timer
    /// records nothing.
    pub fn finish(&self, timer: OpTimer, ok: bool) -> Option<(u64, u64)> {
        let started = timer.0?;
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Some((ns, self.record(ns, ok)))
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            ok: self.ok.get(),
            err: self.err.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Plain-data copy of an [`OpStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Successful completions.
    pub ok: u64,
    /// Failed completions.
    pub err: u64,
    /// Latency histogram.
    pub latency: HistogramSnapshot,
}

impl OpSnapshot {
    /// Total completions.
    pub fn total(&self) -> u64 {
        self.ok.saturating_add(self.err)
    }

    /// Median latency estimate in ns ([`HistogramSnapshot::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.latency.quantile_ns(0.50)
    }

    /// 99th-percentile latency estimate in ns.
    pub fn p99_ns(&self) -> u64 {
        self.latency.quantile_ns(0.99)
    }

    /// Folds `other` into `self` (counter adds, histogram merge).
    pub fn merge(&mut self, other: &OpSnapshot) {
        self.ok = self.ok.saturating_add(other.ok);
        self.err = self.err.saturating_add(other.err);
        self.latency.merge(&other.latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Every value falls inside its bucket's bounds.
        for ns in [0u64, 1, 2, 7, 1023, 1 << 20, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(ns));
            assert!(ns >= lo, "{ns} below bucket lower bound {lo}");
            if let Some(hi) = hi {
                assert!(ns < hi, "{ns} at/above bucket upper bound {hi}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new();
        for ns in [0u64, 5, 5, 1000, 123_456] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum_ns, 124_466);
        assert_eq!(s.mean_ns(), 124_466 / 5);
        assert!(s.quantile_ns(0.5) >= 5);
        assert!(s.quantile_ns(1.0) >= 123_456);
    }

    #[test]
    fn op_stats_invariant() {
        let op = OpStats::new();
        for i in 0..10u64 {
            op.record(i * 100, i % 3 != 0);
        }
        let s = op.snapshot();
        assert_eq!(s.ok + s.err, s.latency.count());
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn inert_timer_records_nothing() {
        let op = OpStats::new();
        assert!(op.finish(OpTimer::inert(), true).is_none());
        assert_eq!(op.snapshot().total(), 0);
        let got = op.finish(OpTimer::started(), false).unwrap();
        assert_eq!(got.1, 0);
        assert_eq!(op.snapshot().err, 1);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
    }
}
