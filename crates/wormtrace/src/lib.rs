//! # wormtrace — observability for the Strong WORM stack
//!
//! The paper's argument is quantitative: reads are served "at full
//! throughput, with main CPU cycles only" while every regulated update
//! pays an SCPU round-trip (§4.1). This crate makes that split visible
//! at runtime without distorting it:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics.
//! * [`Histogram`] — fixed log2 buckets of atomics; recording is two
//!   relaxed RMWs, and [`HistogramSnapshot`]s merge associatively and
//!   commutatively without losing counts (so per-shard or per-node
//!   histograms aggregate exactly).
//! * [`OpStats`] — the unit every instrumented operation records into:
//!   an ok counter, an err counter, and a latency histogram, always
//!   updated together, so `ok + err == histogram count` is an invariant
//!   tests can assert under arbitrary concurrency.
//! * [`Registry`] — get-or-register named metrics behind a read-mostly
//!   lock. Subsystems resolve their handles **once** at construction;
//!   the hot path never touches the registry lock.
//! * [`EventRing`] + [`TraceSink`] — a bounded ring of structured
//!   [`TraceEvent`]s (op, plane, SN, duration, outcome) with an
//!   optional pluggable sink for external exporters.
//! * [`StatsSnapshot`] — a point-in-time, order-canonical copy of the
//!   whole registry, cheap to ship over a wire (the canonical byte
//!   codec lives with the other codecs in `strongworm::codec`).
//! * [`span`] — request-scoped causal span trees (trace id / span id /
//!   parent id) attached to the handling thread, plus the
//!   [`FlightRecorder`]: a bounded ring retaining the complete span
//!   tree of any request that errors or exceeds a configurable latency
//!   threshold.
//!
//! ## Hot-path budget
//!
//! The read path is the product; instrumentation must not tax it. An
//! instrumented read costs one `Instant` pair (start/stop), three
//! relaxed atomic RMWs, and — for a 1-in-[`READ_EVENT_SAMPLE`] sample —
//! one short mutex-guarded ring push. When a [`Registry`] is disabled
//! ([`Registry::set_enabled`]), [`Registry::timer`] returns an inert
//! timer and the whole record path collapses to one relaxed load, which
//! is what the `worm-bench` `observability` binary uses to measure the
//! overhead delta.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod metrics;
mod registry;
mod snapshot;
pub mod span;
mod sync;
mod trace;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, OpSnapshot, OpStats,
    OpTimer, NUM_BUCKETS,
};
pub use registry::{Registry, READ_EVENT_SAMPLE};
pub use snapshot::StatsSnapshot;
pub use span::{
    ActiveTrace, CapturedTrace, FlightRecorder, SpanRecord, TraceContext, TraceTrigger,
    DEFAULT_FLIGHT_CAPACITY, MAX_SPANS_PER_TRACE,
};
pub use trace::{EventRing, Plane, TraceEvent, TraceSink, DEFAULT_RING_CAPACITY};
