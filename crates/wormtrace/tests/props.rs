//! Property tests for snapshot merging: merge must behave like
//! multiset union of the recorded samples — associative, commutative,
//! and never losing a count — or per-node snapshots would not
//! aggregate exactly.

use proptest::prelude::*;
use wormtrace::{
    bucket_index, HistogramSnapshot, OpSnapshot, Registry, StatsSnapshot, NUM_BUCKETS,
};

/// Bucket counts bounded well below `u64::MAX` so three-way merges
/// never saturate (saturation is a separate, deliberate behavior).
fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(0u64..(1 << 40), NUM_BUCKETS),
        0u64..(1 << 40),
    )
        .prop_map(|(v, sum_ns)| {
            let mut buckets = [0u64; NUM_BUCKETS];
            buckets.copy_from_slice(&v);
            HistogramSnapshot { buckets, sum_ns }
        })
}

fn arb_op() -> impl Strategy<Value = OpSnapshot> {
    (0u64..(1 << 40), 0u64..(1 << 40), arb_hist()).prop_map(|(ok, err, latency)| OpSnapshot {
        ok,
        err,
        latency,
    })
}

/// Short sorted unique name lists, overlapping across instances often
/// (a tiny alphabet) so merges exercise the equal-name path.
fn arb_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-d]{1,2}", 0..4).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    (
        arb_names(),
        arb_names(),
        proptest::collection::vec(arb_op(), 4),
        proptest::collection::vec(0u64..(1 << 40), 4),
        0u64..(1 << 40),
    )
        .prop_map(
            |(op_names, counter_names, ops, vals, events_dropped)| StatsSnapshot {
                ops: op_names
                    .iter()
                    .zip(ops.iter())
                    .map(|(n, o)| (n.clone(), o.clone()))
                    .collect(),
                counters: counter_names
                    .iter()
                    .zip(vals.iter())
                    .map(|(n, &v)| (n.clone(), v))
                    .collect(),
                gauges: counter_names
                    .iter()
                    .zip(vals.iter().rev())
                    .map(|(n, &v)| (n.clone(), v))
                    .collect(),
                events_dropped,
            },
        )
}

fn merged_h(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

fn merged_s(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_commutes(a in arb_hist(), b in arb_hist()) {
        prop_assert_eq!(merged_h(&a, &b), merged_h(&b, &a));
    }

    #[test]
    fn histogram_merge_is_associative(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        prop_assert_eq!(
            merged_h(&merged_h(&a, &b), &c),
            merged_h(&a, &merged_h(&b, &c))
        );
    }

    #[test]
    fn histogram_merge_never_loses_counts(a in arb_hist(), b in arb_hist()) {
        let m = merged_h(&a, &b);
        prop_assert_eq!(m.count(), a.count() + b.count());
        prop_assert_eq!(m.sum_ns, a.sum_ns + b.sum_ns);
        for i in 0..NUM_BUCKETS {
            prop_assert_eq!(m.buckets[i], a.buckets[i] + b.buckets[i]);
        }
    }

    #[test]
    fn histogram_merge_identity(a in arb_hist()) {
        prop_assert_eq!(merged_h(&a, &HistogramSnapshot::default()), a.clone());
        prop_assert_eq!(merged_h(&HistogramSnapshot::default(), &a), a);
    }

    #[test]
    fn recording_matches_multiset_merge(
        // Bounded so the running sum can't overflow: the live histogram
        // wraps (relaxed fetch_add) while snapshot merge saturates, and
        // the two only agree while sums stay in range.
        xs in proptest::collection::vec(0u64..(1 << 40), 0..64),
        ys in proptest::collection::vec(0u64..(1 << 40), 0..64),
    ) {
        // Recording xs and ys into one histogram equals recording them
        // into two and merging — merge IS multiset union.
        let (one, left, right) = (
            wormtrace::Histogram::new(),
            wormtrace::Histogram::new(),
            wormtrace::Histogram::new(),
        );
        for &x in &xs {
            one.record(x);
            left.record(x);
        }
        for &y in &ys {
            one.record(y);
            right.record(y);
        }
        // Samples land in the bucket their value belongs to.
        for &x in &xs {
            prop_assert!(left.snapshot().buckets[bucket_index(x)] > 0);
        }
        let merged = merged_h(&left.snapshot(), &right.snapshot());
        prop_assert_eq!(merged, one.snapshot());
    }

    #[test]
    fn stats_merge_commutes_and_associates(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        prop_assert_eq!(merged_s(&a, &b), merged_s(&b, &a));
        prop_assert_eq!(
            merged_s(&merged_s(&a, &b), &c),
            merged_s(&a, &merged_s(&b, &c))
        );
    }

    #[test]
    fn stats_merge_never_loses_instruments(a in arb_stats(), b in arb_stats()) {
        let m = merged_s(&a, &b);
        // Every name from either side survives, with the right combine.
        for (name, op) in a.ops.iter().chain(b.ops.iter()) {
            prop_assert!(m.op(name).is_some());
            prop_assert!(m.op(name).unwrap().total() >= op.total());
        }
        for (name, v) in a.counters.iter().chain(b.counters.iter()) {
            prop_assert!(m.counter(name) >= *v);
        }
        for (name, v) in a.gauges.iter().chain(b.gauges.iter()) {
            prop_assert!(m.gauge(name).unwrap() >= *v, "gauge merge keeps the max");
        }
        // Shared counter names add exactly.
        for (name, v) in &a.counters {
            prop_assert_eq!(m.counter(name), v + b.counter(name));
        }
        prop_assert_eq!(m.events_dropped, a.events_dropped + b.events_dropped);
        // Merged lists stay sorted strictly ascending (the canonical-
        // codec precondition).
        for w in m.ops.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for w in m.counters.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn registry_snapshot_reflects_recordings(
        oks in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let reg = Registry::new();
        let op = reg.op("p.op");
        for (i, &ok) in oks.iter().enumerate() {
            op.record(i as u64, ok);
        }
        let snap = reg.snapshot();
        let got = snap.op("p.op").expect("registered op present");
        let want_ok = oks.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(got.ok, want_ok);
        prop_assert_eq!(got.err, oks.len() as u64 - want_ok);
        prop_assert_eq!(got.latency.count(), got.ok + got.err);
    }
}
