//! Fuzz-style property tests of the persisted-structure codecs and the
//! wire layer: everything read back from untrusted storage must decode
//! defensively — errors, never panics — and any byte-level mutation of a
//! valid encoding must either fail to decode or decode to a different
//! value (no silent aliasing).

use bytes::Bytes;
use proptest::prelude::*;
use scpu::Timestamp;
use strongworm::attr::RecordAttributes;
use strongworm::authority::{HoldCredential, ReleaseCredential};
use strongworm::codec;
use strongworm::policy::Regulation;
use strongworm::proofs::{
    BaseCert, DeletionEvidence, DeletionProof, HeadCert, ReadOutcome, WindowProof,
};
use strongworm::vrd::Vrd;
use strongworm::witness::{Signature, Witness};
use strongworm::SerialNumber;
use strongworm::{CompositeBinding, CompositeHead};
use wormstore::{RecordDescriptor, RecordId, Shredder};
use wormtrace::{HistogramSnapshot, OpSnapshot, StatsSnapshot, NUM_BUCKETS};

fn arb_sig() -> impl Strategy<Value = Signature> {
    (
        any::<[u8; 8]>(),
        proptest::collection::vec(any::<u8>(), 0..96),
    )
        .prop_map(|(key_id, bytes)| Signature { key_id, bytes })
}

fn arb_witness() -> impl Strategy<Value = Witness> {
    prop_oneof![
        arb_sig().prop_map(Witness::Strong),
        (arb_sig(), any::<u64>()).prop_map(|(sig, t)| Witness::Weak {
            sig,
            expires_at: Timestamp::from_millis(t),
        }),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(|tag| Witness::Mac { tag }),
    ]
}

fn arb_shredder() -> impl Strategy<Value = Shredder> {
    prop_oneof![
        Just(Shredder::ZeroFill),
        any::<u8>().prop_map(|passes| Shredder::MultiPass { passes }),
        Just(Shredder::RandomPass),
    ]
}

fn arb_attr() -> impl Strategy<Value = RecordAttributes> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..7,
        arb_shredder(),
        any::<u32>(),
        proptest::option::of((
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..40),
        )),
    )
        .prop_map(|(c, r, reg, shredder, flags, hold)| RecordAttributes {
            created_at: Timestamp::from_millis(c),
            retention_until: Timestamp::from_millis(r),
            regulation: Regulation::from_code(reg).unwrap_or(Regulation::Custom),
            shredder,
            flags,
            litigation_hold: hold.map(|(id, until, credential)| strongworm::attr::LitigationHold {
                litigation_id: id,
                hold_until: Timestamp::from_millis(until),
                credential,
            }),
        })
}

fn arb_vrd() -> impl Strategy<Value = Vrd> {
    (
        any::<u64>(),
        arb_attr(),
        proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 0..6),
        arb_witness(),
        arb_witness(),
    )
        .prop_map(|(sn, attr, rdl, metasig, datasig)| Vrd {
            sn: SerialNumber(sn),
            attr,
            rdl: rdl
                .into_iter()
                .map(|(id, offset, len)| RecordDescriptor {
                    id: RecordId(id),
                    offset,
                    len: len as u64,
                })
                .collect(),
            metasig,
            datasig,
        })
}

fn arb_head() -> impl Strategy<Value = HeadCert> {
    (any::<u64>(), any::<u64>(), arb_sig()).prop_map(|(sn, t, sig)| HeadCert {
        sn_current: SerialNumber(sn),
        issued_at: Timestamp::from_millis(t),
        sig,
    })
}

fn arb_composite() -> impl Strategy<Value = CompositeHead> {
    (
        proptest::collection::vec(arb_head(), 0..5),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..48),
        any::<u64>(),
        arb_sig(),
    )
        .prop_map(|(heads, shard_count, root, t, sig)| CompositeHead {
            heads,
            binding: CompositeBinding {
                shard_count,
                root,
                issued_at: Timestamp::from_millis(t),
                sig,
            },
        })
}

fn arb_evidence() -> impl Strategy<Value = DeletionEvidence> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_sig()).prop_map(|(sn, t, sig)| {
            DeletionEvidence::Proof(DeletionProof {
                sn: SerialNumber(sn),
                deleted_at: Timestamp::from_millis(t),
                sig,
            })
        }),
        (any::<u64>(), any::<u64>(), arb_sig()).prop_map(|(sn, t, sig)| {
            DeletionEvidence::BelowBase(BaseCert {
                sn_base: SerialNumber(sn),
                expires_at: Timestamp::from_millis(t),
                sig,
            })
        }),
        (
            any::<u64>(),
            any::<u64>(),
            0u64..1_000_000,
            arb_sig(),
            arb_sig()
        )
            .prop_map(|(id, lo, span, lo_sig, hi_sig)| {
                DeletionEvidence::InWindow(WindowProof {
                    window_id: id,
                    lo: SerialNumber(lo),
                    hi: SerialNumber(lo.saturating_add(span)),
                    lo_sig,
                    hi_sig,
                })
            }),
    ]
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(any::<u64>(), NUM_BUCKETS),
        any::<u64>(),
    )
        .prop_map(|(v, sum_ns)| {
            let mut buckets = [0u64; NUM_BUCKETS];
            buckets.copy_from_slice(&v);
            HistogramSnapshot { buckets, sum_ns }
        })
}

/// Sorted, deduplicated name lists — the canonical form the codec
/// demands of a snapshot's instrument sections.
fn arb_instrument_names(max: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z.]{1,12}", 0..max).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    (
        arb_instrument_names(4),
        arb_instrument_names(4),
        arb_instrument_names(4),
        proptest::collection::vec((any::<u64>(), any::<u64>(), arb_histogram()), 4),
        proptest::collection::vec(any::<u64>(), 4),
        any::<u64>(),
    )
        .prop_map(
            |(op_names, counter_names, gauge_names, ops, vals, events_dropped)| StatsSnapshot {
                ops: op_names
                    .into_iter()
                    .zip(ops)
                    .map(|(n, (ok, err, latency))| (n, OpSnapshot { ok, err, latency }))
                    .collect(),
                counters: counter_names.into_iter().zip(vals.clone()).collect(),
                gauges: gauge_names.into_iter().zip(vals).collect(),
                events_dropped,
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = ReadOutcome> {
    prop_oneof![
        (
            arb_vrd(),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
            arb_head(),
        )
            .prop_map(|(vrd, records, head)| ReadOutcome::Data {
                vrd,
                records: records.into_iter().map(Bytes::from).collect(),
                head,
            }),
        (arb_evidence(), arb_head())
            .prop_map(|(evidence, head)| ReadOutcome::Deleted { evidence, head }),
        arb_head().prop_map(|head| ReadOutcome::NeverExisted { head }),
    ]
}

fn arb_audit_event() -> impl Strategy<Value = wormaudit::AuditEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<prop::sample::Index>(),
        proptest::option::of(any::<u64>()),
        proptest::collection::vec(97u8..123, 0..16),
        any::<[u8; 32]>(),
    )
        .prop_map(
            |(seq, at_ms, class, sn, detail, prev_hash)| wormaudit::AuditEvent {
                seq,
                at_ms,
                class: wormaudit::ALL_CLASSES[class.index(wormaudit::ALL_CLASSES.len())],
                sn,
                detail: String::from_utf8(detail).unwrap_or_default(),
                prev_hash,
            },
        )
}

/// Arbitrary (not chain-consistent) pages — transport-level tests.
fn arb_audit_page() -> impl Strategy<Value = wormaudit::AuditPage> {
    (
        proptest::collection::vec(arb_audit_event(), 0..5),
        proptest::collection::vec(
            (
                any::<u64>(),
                any::<[u8; 32]>(),
                any::<u64>(),
                any::<[u8; 8]>(),
                proptest::collection::vec(any::<u8>(), 0..72),
            ),
            0..3,
        ),
    )
        .prop_map(|(events, anchors)| wormaudit::AuditPage {
            events,
            anchors: anchors
                .into_iter()
                .map(
                    |(seq, chain_hash, issued_at_ms, key_id, sig)| wormaudit::AuditAnchor {
                        seq,
                        chain_hash,
                        issued_at_ms,
                        key_id,
                        sig,
                    },
                )
                .collect(),
        })
}

/// Dense, correctly linked (anchorless) chains — integrity-level tests.
fn arb_audit_chain() -> impl Strategy<Value = wormaudit::AuditPage> {
    proptest::collection::vec(arb_audit_event(), 2..7).prop_map(|mut events| {
        let mut prev_hash = [0u8; 32];
        for (seq, e) in events.iter_mut().enumerate() {
            e.seq = seq as u64;
            e.prev_hash = prev_hash;
            prev_hash = wormaudit::codec::event_hash(e);
        }
        wormaudit::AuditPage {
            events,
            anchors: Vec::new(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode_vrd(&bytes);
        let _ = codec::decode_deletion_proof(&bytes);
        let _ = codec::decode_window_proof(&bytes);
        let _ = codec::decode_head_cert(&bytes);
        let _ = codec::decode_base_cert(&bytes);
        let _ = codec::decode_read_outcome(&bytes);
        let _ = codec::decode_hold_credential(&bytes);
        let _ = codec::decode_release_credential(&bytes);
        let _ = codec::decode_device_keys(&bytes);
        let _ = codec::decode_weak_key_cert(&bytes);
        let _ = codec::decode_composite_head(&bytes);
        let _ = RecordAttributes::decode(&bytes);
    }

    #[test]
    fn composite_head_roundtrip_holds(composite in arb_composite()) {
        let enc = codec::encode_composite_head(&composite);
        prop_assert_eq!(codec::decode_composite_head(&enc).unwrap(), composite);
    }

    #[test]
    fn composite_head_truncations_always_error(composite in arb_composite(), cut in any::<prop::sample::Index>()) {
        let enc = codec::encode_composite_head(&composite);
        let i = cut.index(enc.len());
        prop_assert!(codec::decode_composite_head(&enc[..i]).is_err());
    }

    #[test]
    fn composite_head_mutations_never_alias(composite in arb_composite(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let enc = codec::encode_composite_head(&composite);
        let mut mutated = enc.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= flip;
        match codec::decode_composite_head(&mutated) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, composite, "mutation at byte {} aliased", i),
        }
    }

    #[test]
    fn composite_root_is_deterministic_and_content_bound(
        heads in proptest::collection::vec(arb_head(), 0..5),
        extra in arb_head(),
    ) {
        let root = codec::composite_root(&heads);
        prop_assert_eq!(root.len(), 32);
        prop_assert_eq!(&codec::composite_root(&heads), &root);
        let mut extended = heads.clone();
        extended.push(extra);
        prop_assert_ne!(codec::composite_root(&extended), root,
            "appending a head must change the root");
    }

    #[test]
    fn read_outcome_roundtrip_holds(outcome in arb_outcome()) {
        let enc = codec::encode_read_outcome(&outcome);
        prop_assert_eq!(codec::decode_read_outcome(&enc).unwrap(), outcome);
    }

    #[test]
    fn read_outcome_mutations_never_alias(outcome in arb_outcome(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let enc = codec::encode_read_outcome(&outcome);
        let mut mutated = enc.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= flip;
        match codec::decode_read_outcome(&mutated) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, outcome, "mutation at byte {} aliased", i),
        }
    }

    #[test]
    fn credential_roundtrips_hold(
        sn in any::<u64>(),
        t in any::<u64>(),
        id in any::<u64>(),
        until in any::<u64>(),
        sig in arb_sig(),
    ) {
        let hold = HoldCredential {
            sn: SerialNumber(sn),
            issued_at: Timestamp::from_millis(t),
            litigation_id: id,
            hold_until: Timestamp::from_millis(until),
            sig: sig.clone(),
        };
        prop_assert_eq!(
            codec::decode_hold_credential(&codec::encode_hold_credential(&hold)).unwrap(),
            hold
        );
        let release = ReleaseCredential {
            sn: SerialNumber(sn),
            issued_at: Timestamp::from_millis(t),
            litigation_id: id,
            sig,
        };
        prop_assert_eq!(
            codec::decode_release_credential(&codec::encode_release_credential(&release)).unwrap(),
            release
        );
    }

    #[test]
    fn vrd_roundtrip_holds_for_arbitrary_values(vrd in arb_vrd()) {
        let enc = codec::encode_vrd(&vrd);
        prop_assert_eq!(codec::decode_vrd(&enc).unwrap(), vrd);
    }

    #[test]
    fn attr_roundtrip_holds(attr in arb_attr()) {
        prop_assert_eq!(RecordAttributes::decode(&attr.encode()).unwrap(), attr);
    }

    #[test]
    fn vrd_mutations_never_alias(vrd in arb_vrd(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let enc = codec::encode_vrd(&vrd);
        prop_assume!(!enc.is_empty());
        let mut mutated = enc.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= flip;
        match codec::decode_vrd(&mutated) {
            Err(_) => {} // rejected: fine
            Ok(other) => prop_assert_ne!(other, vrd, "mutation at byte {} aliased", i),
        }
    }

    #[test]
    fn truncated_vrd_never_decodes_to_original(vrd in arb_vrd(), cut in any::<prop::sample::Index>()) {
        let enc = codec::encode_vrd(&vrd);
        let keep = cut.index(enc.len()); // strictly shorter than enc
        match codec::decode_vrd(&enc[..keep]) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, vrd),
        }
    }

    #[test]
    fn proof_roundtrips_hold(
        sn in any::<u64>(),
        t in any::<u64>(),
        id in any::<u64>(),
        lo in any::<u64>(),
        span in 0u64..1_000_000,
        sig1 in arb_sig(),
        sig2 in arb_sig(),
    ) {
        let p = DeletionProof {
            sn: SerialNumber(sn),
            deleted_at: Timestamp::from_millis(t),
            sig: sig1.clone(),
        };
        prop_assert_eq!(codec::decode_deletion_proof(&codec::encode_deletion_proof(&p)).unwrap(), p);

        let w = WindowProof {
            window_id: id,
            lo: SerialNumber(lo),
            hi: SerialNumber(lo.saturating_add(span)),
            lo_sig: sig1.clone(),
            hi_sig: sig2.clone(),
        };
        prop_assert_eq!(codec::decode_window_proof(&codec::encode_window_proof(&w)).unwrap(), w);

        let h = HeadCert {
            sn_current: SerialNumber(sn),
            issued_at: Timestamp::from_millis(t),
            sig: sig2.clone(),
        };
        prop_assert_eq!(codec::decode_head_cert(&codec::encode_head_cert(&h)).unwrap(), h);

        let b = BaseCert {
            sn_base: SerialNumber(sn),
            expires_at: Timestamp::from_millis(t),
            sig: sig1,
        };
        prop_assert_eq!(codec::decode_base_cert(&codec::encode_base_cert(&b)).unwrap(), b);
    }

    #[test]
    fn stats_snapshot_roundtrip_holds(stats in arb_stats()) {
        let enc = codec::encode_stats_snapshot(&stats);
        prop_assert_eq!(codec::decode_stats_snapshot(&enc).unwrap(), stats);
    }

    #[test]
    fn stats_snapshot_truncation_always_rejected(stats in arb_stats(), cut in any::<prop::sample::Index>()) {
        let enc = codec::encode_stats_snapshot(&stats);
        let keep = cut.index(enc.len()); // strictly shorter than enc
        prop_assert!(
            codec::decode_stats_snapshot(&enc[..keep]).is_err(),
            "every field is mandatory, so any prefix must fail"
        );
    }

    #[test]
    fn stats_snapshot_oversized_frame_rejected(stats in arb_stats(), extra in 1usize..16) {
        // Trailing bytes past the canonical encoding are an error, not
        // ignored padding — expect_end guards frame-splicing tricks.
        let mut enc = codec::encode_stats_snapshot(&stats);
        enc.extend(vec![0u8; extra]);
        prop_assert!(codec::decode_stats_snapshot(&enc).is_err());
    }

    #[test]
    fn stats_snapshot_mutations_never_alias(stats in arb_stats(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let enc = codec::encode_stats_snapshot(&stats);
        let mut mutated = enc.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= flip;
        match codec::decode_stats_snapshot(&mutated) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, stats, "mutation at byte {} aliased", i),
        }
    }

    #[test]
    fn stats_snapshot_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode_stats_snapshot(&bytes);
    }

    #[test]
    fn cross_type_decoding_always_fails(
        sn in any::<u64>(),
        t in any::<u64>(),
        sig in arb_sig(),
    ) {
        // Domain tags keep each structure in its own universe.
        let p = DeletionProof {
            sn: SerialNumber(sn),
            deleted_at: Timestamp::from_millis(t),
            sig,
        };
        let enc = codec::encode_deletion_proof(&p);
        prop_assert!(codec::decode_head_cert(&enc).is_err());
        prop_assert!(codec::decode_base_cert(&enc).is_err());
        prop_assert!(codec::decode_window_proof(&enc).is_err());
        prop_assert!(codec::decode_vrd(&enc).is_err());
        prop_assert!(codec::decode_stats_snapshot(&enc).is_err());
        prop_assert!(wormaudit::codec::decode_audit_page(&enc).is_err());
    }

    /// The `wormaudit.events.v1` page codec obeys the same discipline
    /// as every persisted structure here: exact roundtrip, every strict
    /// prefix rejected (deeper chain-level properties live in
    /// wormaudit's own `chain_property` suite).
    #[test]
    fn audit_pages_roundtrip_and_reject_prefixes(page in arb_audit_page()) {
        let enc = wormaudit::codec::encode_audit_page(&page);
        prop_assert_eq!(wormaudit::codec::decode_audit_page(&enc).unwrap(), page);
        for cut in 0..enc.len() {
            prop_assert!(wormaudit::codec::decode_audit_page(&enc[..cut]).is_err());
        }
    }

    /// Flipping a chain-carrying field (a `prev_hash` byte) survives
    /// decoding — it is a well-formed page — but must surface as a
    /// replay divergence: the codec's job is canonical transport, the
    /// chain's job is integrity, and neither may mask the other.
    #[test]
    fn audit_chain_field_mutations_fail_verification(
        chain in arb_audit_chain(),
        event_sel in any::<prop::sample::Index>(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        prop_assert!(wormaudit::verify_chain(&chain, &[]).is_clean());
        let mut tampered = chain.clone();
        let i = event_sel.index(tampered.events.len());
        tampered.events[i].prev_hash[byte_sel.index(32)] ^= 1 << bit;
        let enc = wormaudit::codec::encode_audit_page(&tampered);
        let decoded = wormaudit::codec::decode_audit_page(&enc).unwrap();
        prop_assert_eq!(&decoded, &tampered);
        // A flip in any event's prev_hash either breaks its own stored
        // link or (through the hash-over-encoding) its successor's.
        let report = wormaudit::verify_chain(&decoded, &[]);
        prop_assert!(
            report.divergence.is_some(),
            "chain-field flip at event {} went unnoticed", i
        );
    }
}

#[test]
fn stats_snapshot_count_bomb_rejected() {
    // A forged section count far beyond the decode cap must be rejected
    // up front — not drive an unbounded allocation loop.
    let enc = codec::encode_stats_snapshot(&StatsSnapshot::default());
    let ops_count_at = 4 + "wormtrace.stats.v1".len();
    let mut bomb = enc;
    bomb[ops_count_at..ops_count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(codec::decode_stats_snapshot(&bomb).is_err());
}

#[test]
fn audit_page_count_bomb_rejected() {
    // Same discipline for the audit page: a forged event count must be
    // bounded before any allocation sized from it.
    let enc = wormaudit::codec::encode_audit_page(&wormaudit::AuditPage::default());
    let events_count_at = 4 + wormaudit::codec::PAGE_TAG.len();
    let mut bomb = enc;
    bomb[events_count_at..events_count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(wormaudit::codec::decode_audit_page(&bomb).is_err());
}
