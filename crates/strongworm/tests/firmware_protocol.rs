//! Protocol-level tests of the WORM firmware, driving the secure device
//! directly (no host server in between). These pin down the command
//! interface's rejection behaviour — the firmware must be safe against a
//! *hostile* host issuing malformed or out-of-order commands.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::{Applet, Clock, Device, DeviceConfig, VirtualClock};
use strongworm::firmware::{
    FirmwareConfig, OutboxItem, WormFirmware, WormRequest, WormResponse, WriteData,
};
use strongworm::{RegulatoryAuthority, RetentionPolicy, SerialNumber, WitnessMode};
use wormstore::Shredder;

type Fw = Device<WormFirmware>;

fn fw_config() -> FirmwareConfig {
    FirmwareConfig {
        strong_bits: 512,
        weak_bits: 512,
        weak_lifetime: Duration::from_secs(7200),
        head_refresh_interval: Duration::from_secs(120),
        base_cert_lifetime: Duration::from_secs(86400),
        min_compaction_run: 3,
        data_hash: strongworm::DataHashScheme::Chained,
        sn_origin: 0,
    }
}

fn device() -> (Fw, Arc<VirtualClock>, RegulatoryAuthority) {
    let clock = VirtualClock::starting_at_millis(5_000);
    let dev = Device::new(
        WormFirmware::new(fw_config()),
        DeviceConfig {
            cost_model: scpu::CostModel::free(),
            secure_memory_bytes: 1 << 20,
            serial: 1,
            rng_seed: 9,
        },
        clock.clone(),
    );
    let reg = RegulatoryAuthority::generate(&mut StdRng::seed_from_u64(55), 512);
    (dev, clock, reg)
}

fn booted() -> (Fw, Arc<VirtualClock>, RegulatoryAuthority) {
    let (mut dev, clock, reg) = device();
    dev.execute(WormRequest::Init {
        regulator: reg.public().clone(),
    })
    .unwrap()
    .unwrap();
    (dev, clock, reg)
}

fn policy(secs: u64) -> RetentionPolicy {
    RetentionPolicy::custom(Duration::from_secs(secs), Shredder::ZeroFill)
}

fn write(dev: &mut Fw, secs: u64) -> SerialNumber {
    match dev
        .execute(WormRequest::Write {
            policy: policy(secs),
            flags: 0,
            data: WriteData::Full(vec![b"payload".to_vec()]),
            witness: WitnessMode::Strong,
        })
        .unwrap()
        .unwrap()
    {
        WormResponse::Written(r) => r.sn,
        other => panic!("unexpected {other:?}"),
    }
}

fn drain(dev: &mut Fw) -> Vec<OutboxItem> {
    match dev.execute(WormRequest::DrainOutbox).unwrap().unwrap() {
        WormResponse::Outbox(items) => items,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn commands_before_init_are_rejected() {
    let (mut dev, _clock, _reg) = device();
    for req in [
        WormRequest::GetKeys,
        WormRequest::RefreshHead,
        WormRequest::RefreshBase,
        WormRequest::CompactWindow {
            lo: SerialNumber(1),
            hi: SerialNumber(5),
        },
        WormRequest::Write {
            policy: policy(10),
            flags: 0,
            data: WriteData::Full(vec![]),
            witness: WitnessMode::Strong,
        },
        WormRequest::SignAuditAnchor {
            seq: 0,
            chain_hash: vec![0u8; 32],
        },
    ] {
        let resp = dev.execute(req).unwrap();
        assert!(
            matches!(&resp, Err(e) if e.0.contains("not initialized")),
            "got {resp:?}"
        );
    }
}

#[test]
fn double_init_is_rejected() {
    let (mut dev, _clock, reg) = booted();
    let resp = dev
        .execute(WormRequest::Init {
            regulator: reg.public().clone(),
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("already initialized")));
}

#[test]
fn audit_anchor_requires_a_sha256_hash() {
    let (mut dev, _clock, _reg) = booted();
    for bad in [vec![], vec![0u8; 31], vec![0u8; 33]] {
        let resp = dev
            .execute(WormRequest::SignAuditAnchor {
                seq: 3,
                chain_hash: bad,
            })
            .unwrap();
        assert!(
            matches!(&resp, Err(e) if e.0.contains("SHA-256")),
            "got {resp:?}"
        );
    }
}

#[test]
fn audit_anchor_signs_and_stamps_trusted_time() {
    let (mut dev, clock, _reg) = booted();
    let keys = match dev.execute(WormRequest::GetKeys).unwrap().unwrap() {
        WormResponse::Keys(k) => k,
        other => panic!("unexpected {other:?}"),
    };
    let chain_hash = vec![7u8; 32];
    let anchor = match dev
        .execute(WormRequest::SignAuditAnchor {
            seq: 41,
            chain_hash: chain_hash.clone(),
        })
        .unwrap()
        .unwrap()
    {
        WormResponse::AuditAnchor(a) => a,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(anchor.seq, 41);
    assert_eq!(anchor.chain_hash.to_vec(), chain_hash);
    assert_eq!(anchor.issued_at_ms, clock.now().as_millis());
    assert!(anchor.verify(&keys.sign), "anchor must verify under s");
    // The signature is domain-separated: it is not a head certificate
    // or any other statement over the same bytes.
    let mut forged = anchor.clone();
    forged.seq += 1;
    assert!(!forged.verify(&keys.sign));
    let mut redated = anchor;
    redated.issued_at_ms += 1;
    assert!(!redated.verify(&keys.sign));
}

#[test]
fn serial_numbers_are_consecutive_from_one() {
    let (mut dev, _clock, _reg) = booted();
    for expected in 1..=5u64 {
        assert_eq!(write(&mut dev, 1000), SerialNumber(expected));
    }
}

#[test]
fn attributes_are_stamped_with_trusted_time() {
    let (mut dev, clock, _reg) = booted();
    clock.advance(Duration::from_secs(100));
    match dev
        .execute(WormRequest::Write {
            policy: policy(500),
            flags: 7,
            data: WriteData::Full(vec![b"x".to_vec()]),
            witness: WitnessMode::Strong,
        })
        .unwrap()
        .unwrap()
    {
        WormResponse::Written(r) => {
            assert_eq!(r.attr.created_at, clock.now());
            assert_eq!(
                r.attr.retention_until,
                clock.now().after(Duration::from_secs(500))
            );
            assert_eq!(r.attr.flags, 7);
            assert!(r.vexp_seal.is_none());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn host_hash_must_be_32_bytes() {
    let (mut dev, _clock, _reg) = booted();
    let resp = dev
        .execute(WormRequest::Write {
            policy: policy(10),
            flags: 0,
            data: WriteData::HostHash {
                chain_hash: vec![1, 2, 3],
                total_len: 3,
            },
            witness: WitnessMode::Strong,
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("32 bytes")));
}

#[test]
fn compact_window_rejects_active_and_malformed_ranges() {
    let (mut dev, clock, _reg) = booted();
    write(&mut dev, 10); // sn1, expires fast
    write(&mut dev, 10); // sn2
    write(&mut dev, 10); // sn3
    let survivor = write(&mut dev, 1_000_000); // sn4 long-lived
    write(&mut dev, 10); // sn5
    clock.advance(Duration::from_secs(20));
    dev.tick().unwrap();

    // Inverted bounds.
    let resp = dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(3),
            hi: SerialNumber(1),
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("inverted")));

    // Too short a run.
    let resp = dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(1),
            hi: SerialNumber(2),
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("minimum")));

    // Range containing the still-active sn4: the firmware must refuse to
    // certify it as deleted (this is the command a malicious host would
    // use to bury a live record inside a window).
    let resp = dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(3),
            hi: SerialNumber(5),
        })
        .unwrap();
    assert!(
        matches!(&resp, Err(e) if e.0.contains("not expired")),
        "got {resp:?}"
    );
    let _ = survivor;

    // The genuinely expired prefix works.
    let resp = dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(1),
            hi: SerialNumber(3),
        })
        .unwrap()
        .unwrap();
    match resp {
        WormResponse::Window(w) => {
            assert_eq!(w.lo, SerialNumber(1));
            assert_eq!(w.hi, SerialNumber(3));
            assert_ne!(w.lo_sig.bytes, w.hi_sig.bytes);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn window_ids_are_unique_per_compaction() {
    let (mut dev, clock, _reg) = booted();
    for _ in 0..3 {
        write(&mut dev, 10);
    }
    write(&mut dev, 1_000_000);
    for _ in 0..3 {
        write(&mut dev, 10);
    }
    write(&mut dev, 1_000_000);
    clock.advance(Duration::from_secs(20));
    dev.tick().unwrap();

    let w1 = match dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(1),
            hi: SerialNumber(3),
        })
        .unwrap()
        .unwrap()
    {
        WormResponse::Window(w) => w,
        other => panic!("unexpected {other:?}"),
    };
    let w2 = match dev
        .execute(WormRequest::CompactWindow {
            lo: SerialNumber(5),
            hi: SerialNumber(7),
        })
        .unwrap()
        .unwrap()
    {
        WormResponse::Window(w) => w,
        other => panic!("unexpected {other:?}"),
    };
    assert_ne!(w1.window_id, w2.window_id);
}

#[test]
fn deletion_orders_carry_the_records_shredder() {
    let (mut dev, clock, _reg) = booted();
    dev.execute(WormRequest::Write {
        policy: RetentionPolicy::custom(Duration::from_secs(10), Shredder::MultiPass { passes: 3 }),
        flags: 0,
        data: WriteData::Full(vec![b"x".to_vec()]),
        witness: WitnessMode::Strong,
    })
    .unwrap()
    .unwrap();
    clock.advance(Duration::from_secs(11));
    dev.tick().unwrap();
    let items = drain(&mut dev);
    let deleted = items
        .iter()
        .find_map(|i| match i {
            OutboxItem::Deleted { proof, shredder } => Some((proof.sn, *shredder)),
            _ => None,
        })
        .expect("deletion order present");
    assert_eq!(deleted.0, SerialNumber(1));
    assert_eq!(deleted.1, Shredder::MultiPass { passes: 3 });
}

#[test]
fn forged_vexp_seal_is_rejected_at_the_device() {
    let (mut dev, _clock, _reg) = booted();
    let sn = write(&mut dev, 1000);
    // A seal the firmware never issued.
    let resp = dev
        .execute(WormRequest::SyncVexp {
            sn,
            expires_at: scpu::Timestamp::from_millis(1), // "expire immediately"
            shredder: Shredder::ZeroFill,
            seal: vec![0u8; 32],
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("seal")));
}

#[test]
fn valid_seal_with_tampered_fields_is_rejected() {
    // Force a spill, then try to replay its seal with an earlier expiry.
    let clock = VirtualClock::starting_at_millis(5_000);
    let mut dev = Device::new(
        WormFirmware::new(fw_config()),
        DeviceConfig {
            cost_model: scpu::CostModel::free(),
            secure_memory_bytes: 64, // tiny: immediate spill
            serial: 1,
            rng_seed: 9,
        },
        clock.clone(),
    );
    let reg = RegulatoryAuthority::generate(&mut StdRng::seed_from_u64(55), 512);
    dev.execute(WormRequest::Init {
        regulator: reg.public().clone(),
    })
    .unwrap()
    .unwrap();

    let (sn, retention_until, seal) = loop {
        match dev
            .execute(WormRequest::Write {
                policy: policy(1000),
                flags: 0,
                data: WriteData::Full(vec![b"x".to_vec()]),
                witness: WitnessMode::Strong,
            })
            .unwrap()
            .unwrap()
        {
            WormResponse::Written(r) => {
                if let Some(seal) = r.vexp_seal {
                    break (r.sn, r.attr.retention_until, seal);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    };

    // Earlier expiry with the legitimate seal: rejected (early deletion
    // attempt).
    let resp = dev
        .execute(WormRequest::SyncVexp {
            sn,
            expires_at: retention_until.before(Duration::from_secs(500)),
            shredder: Shredder::ZeroFill,
            seal: seal.clone(),
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("seal")));

    // Different shredder with the legitimate seal: rejected.
    let resp = dev
        .execute(WormRequest::SyncVexp {
            sn,
            expires_at: retention_until,
            shredder: Shredder::RandomPass,
            seal,
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("seal")));
}

#[test]
fn audit_without_pending_entry_is_rejected() {
    let (mut dev, _clock, _reg) = booted();
    let sn = write(&mut dev, 1000); // Full-data write: no audit pending
    let resp = dev
        .execute(WormRequest::AuditData {
            sn,
            data: vec![b"payload".to_vec()],
        })
        .unwrap();
    assert!(matches!(&resp, Err(e) if e.0.contains("no pending audit")));
}

#[test]
fn head_heartbeat_fires_without_updates() {
    let (mut dev, clock, _reg) = booted();
    // §4.2.1: "the SCPU will update the signature timestamps on disk every
    // few minutes (even in the absence of data updates)".
    clock.advance(Duration::from_secs(121));
    dev.tick().unwrap();
    let items = drain(&mut dev);
    assert!(
        items.iter().any(|i| matches!(i, OutboxItem::NewHead(_))),
        "heartbeat head expected, got {items:?}"
    );
}

#[test]
fn retention_monitor_sleeps_until_next_expiry() {
    let (mut dev, clock, _reg) = booted();
    write(&mut dev, 100);
    write(&mut dev, 50);
    // The alarm must point at the *earlier* expiry (RM sleeps until then).
    let alarm = dev.applet_for_test().next_alarm().expect("alarm armed");
    assert_eq!(alarm, clock.now().after(Duration::from_secs(50)));
}

#[test]
fn zeroize_wipes_everything() {
    let (mut dev, _clock, _reg) = booted();
    write(&mut dev, 100);
    dev.trigger_tamper(scpu::TamperCause::Temperature);
    assert!(dev.execute(WormRequest::GetKeys).is_err());
    assert_eq!(dev.applet_for_test().vexp_len(), 0);
    assert_eq!(dev.applet_for_test().pending_strengthen(), 0);
}
