//! Client-side verification.
//!
//! Clients "only need to trust the SCPU" (§4.1): given the SCPU's public
//! key certificates and a roughly synchronized clock (footnote 1), a
//! [`Verifier`] checks every host response. Upon reading a regulated
//! block, the client is assured that (i) the block was not tampered with
//! if the read succeeds, or — if it fails — that (ii) it was deleted
//! according to policy, or (iii) it never existed in this store.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use scpu::{Clock, Timestamp};
use wormcrypt::{Digest, RsaPublicKey, Sha256};

use crate::authority::KeyCertificate;
use crate::codec::composite_root;
use crate::config::DataHashScheme;
use crate::error::VerifyError;
use crate::firmware::{DeviceKeys, WeakKeyCert};
use crate::proofs::{CompositeHead, DeletionEvidence, HeadCert, ReadOutcome};
use crate::sn::SerialNumber;
use crate::vrd::{data_hash, Vrd};
use crate::witness::{
    base_payload, composite_payload, data_payload, deletion_payload, head_payload, meta_payload,
    weak_cert_payload, weak_wrap, window_payload, KeyRole, Signature, WindowSide, Witness,
};

/// Bound on the verified-signature memo before it resets. 32 bytes per
/// entry; the cap keeps a long-lived verifier's footprint fixed while
/// comfortably covering a hot working set of records.
const SIG_MEMO_CAP: usize = 8192;

/// A bounded memo of signature checks that have already *succeeded*.
///
/// RSA verification dominates client-side read cost; real read traffic
/// re-presents the same signed statements constantly (the head
/// certificate repeats verbatim between heartbeats, and hot records are
/// re-read with identical VRDs). Memoizing success is sound because the
/// memo key is a SHA-256 over the signing key's fingerprint, the exact
/// payload, and the exact signature bytes: a hit means a byte-identical
/// check passed before, and producing a *different* (payload, sig) pair
/// with the same key would be a SHA-256 collision. Nothing
/// time-dependent is memoized — freshness and expiry checks still run
/// on every read, only the signature arithmetic is skipped. Failures
/// are never cached (a host that alternates good and bad bytes gets the
/// bad ones rejected every time).
#[derive(Debug, Default)]
struct SigMemo {
    seen: RwLock<HashSet<[u8; 32]>>,
}

impl SigMemo {
    fn key(key_id: [u8; 8], payload: &[u8], sig: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&key_id);
        // Length prefix keeps (payload, sig) framing unambiguous.
        h.update(&(payload.len() as u64).to_be_bytes());
        h.update(payload);
        h.update(sig);
        let mut out = [0u8; 32];
        out.copy_from_slice(&h.finalize());
        out
    }

    fn contains(&self, k: &[u8; 32]) -> bool {
        // A poisoned lock degrades to cache-miss, never to acceptance.
        self.seen.read().is_ok_and(|s| s.contains(k))
    }

    fn insert(&self, k: [u8; 32]) {
        if let Ok(mut s) = self.seen.write() {
            if s.len() >= SIG_MEMO_CAP {
                s.clear();
            }
            s.insert(k);
        }
    }
}

/// Bound on the data-chain memo before it resets. Entries hold a clone
/// of the verified record bytes (`bytes::Bytes` handles, so hot records
/// decoded from a shared buffer are not duplicated); at 4 KiB records
/// the cap bounds the memo near a few MiB.
const CHAIN_MEMO_CAP: usize = 1024;

/// A bounded memo of data-chain hashes over records that already
/// verified.
///
/// Hashing the record payload dominates warm-path read verification
/// (the signature memo above removes the RSA cost, leaving the SHA-256
/// over every data byte). `data_hash` is a pure function of the scheme
/// and the record bytes, so when a serial number is re-read the memo
/// compares the received bytes against the copy that verified last
/// time: byte equality implies hash equality, and a memcmp over the
/// records is an order of magnitude cheaper than re-hashing them. Any
/// difference — scheme, record count, or a single byte — falls back to
/// a full recompute, so a host that alternates good and tampered bytes
/// still gets the tampered ones hashed (and rejected) every time.
#[derive(Debug, Default)]
struct ChainMemo {
    seen: RwLock<HashMap<SerialNumber, ChainEntry>>,
}

#[derive(Debug)]
struct ChainEntry {
    scheme: DataHashScheme,
    records: Vec<bytes::Bytes>,
    chain: Vec<u8>,
}

impl ChainMemo {
    /// Returns the memoized chain for `sn` when `records` are
    /// byte-identical to the ones that verified before.
    fn lookup(
        &self,
        sn: SerialNumber,
        scheme: DataHashScheme,
        records: &[bytes::Bytes],
    ) -> Option<Vec<u8>> {
        // A poisoned lock degrades to cache-miss, never to acceptance.
        let seen = self.seen.read().ok()?;
        let e = seen.get(&sn)?;
        if e.scheme == scheme && e.records == records {
            Some(e.chain.clone())
        } else {
            None
        }
    }

    fn insert(
        &self,
        sn: SerialNumber,
        scheme: DataHashScheme,
        records: &[bytes::Bytes],
        chain: Vec<u8>,
    ) {
        if let Ok(mut s) = self.seen.write() {
            if s.len() >= CHAIN_MEMO_CAP && !s.contains_key(&sn) {
                s.clear();
            }
            s.insert(
                sn,
                ChainEntry {
                    scheme,
                    records: records.to_vec(),
                    chain,
                },
            );
        }
    }
}

/// What a verified read means.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadVerdict {
    /// The record is live and exactly as committed.
    Intact {
        /// The verified serial number.
        sn: SerialNumber,
    },
    /// The record was rightfully deleted (per-record proof, window, or
    /// below-base evidence).
    ConfirmedDeleted {
        /// Deletion time, when a per-record proof carried one.
        deleted_at: Option<Timestamp>,
    },
    /// No record with this serial number was ever written.
    ConfirmedNeverExisted,
}

/// Uniform read-verification interface over single-SCPU and sharded
/// deployments, so transports (e.g. `wormnet`'s remote client) can be
/// generic over [`Verifier`] and [`CompositeVerifier`].
pub trait VerifyRead {
    /// Verifies a complete read outcome for `requested`.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed.
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError>;
}

/// A WORM client's verifier.
///
/// Holds the SCPU public keys (`s`, `d`), the published weak-key
/// certificates, the freshness tolerance, and a roughly synchronized
/// clock.
#[derive(Debug)]
pub struct Verifier {
    data_hash: DataHashScheme,
    sign_key: RsaPublicKey,
    del_key: RsaPublicKey,
    /// Fingerprints of `sign_key` / `del_key`, computed once — the memo
    /// fast path compares these on every check and recomputing the
    /// key-bytes hash per read is measurable.
    sign_fp: [u8; 8],
    del_fp: [u8; 8],
    weak_certs: Vec<WeakKeyCert>,
    tolerance: Duration,
    clock: Arc<dyn Clock>,
    /// Memo of signature checks that already succeeded (see [`SigMemo`]).
    memo: SigMemo,
    /// Memo of data-chain hashes over verified records (see [`ChainMemo`]).
    chain_memo: ChainMemo,
}

impl Verifier {
    /// Builds a verifier directly from the device's published keys.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the weak-key certificate does not
    /// chain to the signing key.
    pub fn new(
        keys: &DeviceKeys,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        let mut v = Verifier {
            data_hash: keys.data_hash,
            sign_fp: keys.sign.fingerprint(),
            del_fp: keys.delete.fingerprint(),
            sign_key: keys.sign.clone(),
            del_key: keys.delete.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
            memo: SigMemo::default(),
            chain_memo: ChainMemo::default(),
        };
        v.add_weak_cert(keys.weak_cert.clone())?;
        Ok(v)
    }

    /// Builds a verifier from CA-issued certificates — the full trust
    /// chain of §4.2.1 ("public key certificates — signed by a regulatory
    /// or general purpose certificate authority").
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if either certificate fails against
    /// the CA key or carries the wrong role.
    pub fn from_certificates(
        ca: &RsaPublicKey,
        sign_cert: &KeyCertificate,
        del_cert: &KeyCertificate,
        weak_cert: WeakKeyCert,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        if sign_cert.role != KeyRole::Sign || !sign_cert.verify(ca) {
            return Err(VerifyError::BadSignature("sign key certificate"));
        }
        if del_cert.role != KeyRole::Delete || !del_cert.verify(ca) {
            return Err(VerifyError::BadSignature("delete key certificate"));
        }
        let mut v = Verifier {
            data_hash: DataHashScheme::Chained,
            sign_fp: sign_cert.key.fingerprint(),
            del_fp: del_cert.key.fingerprint(),
            sign_key: sign_cert.key.clone(),
            del_key: del_cert.key.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
            memo: SigMemo::default(),
            chain_memo: ChainMemo::default(),
        };
        v.add_weak_cert(weak_cert)?;
        Ok(v)
    }

    /// Sets the data-hash scheme (for verifiers built via
    /// [`Verifier::from_certificates`], which defaults to
    /// [`DataHashScheme::Chained`]).
    pub fn set_data_hash_scheme(&mut self, scheme: DataHashScheme) {
        self.data_hash = scheme;
    }

    /// Registers a (rotated) weak-key certificate after verifying its
    /// chain to the signing key.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the certificate does not verify.
    pub fn add_weak_cert(&mut self, cert: WeakKeyCert) -> Result<(), VerifyError> {
        let payload = weak_cert_payload(&cert.key, cert.max_sig_expiry);
        if !cert.sig.verify(&self.sign_key, &payload) {
            return Err(VerifyError::BadSignature("weak key certificate"));
        }
        self.weak_certs.push(cert);
        Ok(())
    }

    /// Verifies a complete read outcome for `requested`.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed; every variant
    /// corresponds to a concrete attack the paper's Theorems 1 and 2 rule
    /// out.
    pub fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        self.check_head(outcome.head())?;
        match outcome {
            ReadOutcome::Data { vrd, records, .. } => {
                if vrd.sn != requested {
                    return Err(VerifyError::WrongSerialNumber);
                }
                // Note: `vrd.sn` may legitimately exceed `head.sn_current`
                // for records written since the last heartbeat; the head
                // only bounds *denials* (Theorem 2), never data responses.
                self.verify_vrd(vrd, records)?;
                Ok(ReadVerdict::Intact { sn: vrd.sn })
            }
            ReadOutcome::Deleted { evidence, .. } => self.verify_deletion(requested, evidence),
            ReadOutcome::NeverExisted { head } => {
                if requested <= head.sn_current {
                    return Err(VerifyError::HiddenRecord);
                }
                Ok(ReadVerdict::ConfirmedNeverExisted)
            }
        }
    }

    /// Verifies a VRD's witnesses against (re-hashed) record data.
    ///
    /// # Errors
    ///
    /// See [`Verifier::verify_read`].
    pub fn verify_vrd(&self, vrd: &Vrd, records: &[bytes::Bytes]) -> Result<(), VerifyError> {
        let meta = meta_payload(vrd.sn, &vrd.attr.encode());
        self.verify_witness(&meta, &vrd.metasig, "metasig")?;

        let memo_hit = self.chain_memo.lookup(vrd.sn, self.data_hash, records);
        let chain = match &memo_hit {
            Some(chain) => chain.clone(),
            None => data_hash(self.data_hash, records.iter().map(|b| b.as_ref())),
        };
        let datap = data_payload(vrd.sn, &chain);
        self.verify_witness(&datap, &vrd.datasig, "datasig")
            .map_err(|e| match e {
                // A structurally valid signature that does not cover the
                // recomputed hash means the data (or the hash) was altered.
                VerifyError::BadSignature("datasig") => VerifyError::DataHashMismatch,
                other => other,
            })?;
        if memo_hit.is_none() {
            self.chain_memo
                .insert(vrd.sn, self.data_hash, records, chain);
        }
        Ok(())
    }

    /// Verifies a single witness over `payload`.
    fn verify_witness(
        &self,
        payload: &[u8],
        witness: &Witness,
        field: &'static str,
    ) -> Result<(), VerifyError> {
        match witness {
            Witness::Strong(sig) => {
                if self.verify_memoized(&self.sign_key, self.sign_fp, payload, sig) {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Weak { sig, expires_at } => {
                let now = self.clock.now();
                if *expires_at < now {
                    return Err(VerifyError::WeakWitnessExpired { field });
                }
                let wrapped = weak_wrap(payload, *expires_at);
                let ok = self.weak_certs.iter().any(|cert| {
                    *expires_at <= cert.max_sig_expiry
                        && self.verify_memoized(&cert.key, cert.key.fingerprint(), &wrapped, sig)
                });
                if ok {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Mac { .. } => Err(VerifyError::UnverifiableMac { field }),
        }
    }

    /// Checks `sig` over `payload` under `key`, short-circuiting
    /// through the verifier's memo of byte-identical checks that
    /// already succeeded. Failures are computed (and re-computed)
    /// honestly every time.
    fn verify_memoized(
        &self,
        key: &RsaPublicKey,
        key_fp: [u8; 8],
        payload: &[u8],
        sig: &Signature,
    ) -> bool {
        debug_assert_eq!(key_fp, key.fingerprint());
        if sig.key_id != key_fp {
            return false;
        }
        let k = SigMemo::key(sig.key_id, payload, &sig.bytes);
        if self.memo.contains(&k) {
            return true;
        }
        let ok = sig.verify(key, payload);
        if ok {
            self.memo.insert(k);
        }
        ok
    }

    /// Verifies deletion evidence for `requested`.
    fn verify_deletion(
        &self,
        requested: SerialNumber,
        evidence: &DeletionEvidence,
    ) -> Result<ReadVerdict, VerifyError> {
        match evidence {
            DeletionEvidence::Proof(p) => {
                if p.sn != requested {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                let payload = deletion_payload(p.sn, p.deleted_at);
                if !self.verify_memoized(&self.del_key, self.del_fp, &payload, &p.sig) {
                    return Err(VerifyError::BadSignature("deletion proof"));
                }
                Ok(ReadVerdict::ConfirmedDeleted {
                    deleted_at: Some(p.deleted_at),
                })
            }
            DeletionEvidence::BelowBase(base) => {
                if base.expires_at <= self.clock.now() {
                    return Err(VerifyError::ExpiredCertificate("base"));
                }
                let payload = base_payload(base.sn_base, base.expires_at);
                if !self.verify_memoized(&self.sign_key, self.sign_fp, &payload, &base.sig) {
                    return Err(VerifyError::BadSignature("base certificate"));
                }
                if requested >= base.sn_base {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
            DeletionEvidence::InWindow(w) => {
                if !w.contains(requested) {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                // Both bounds must verify under the *same* window id —
                // this is what stops bound-splicing across windows
                // (§4.2.1).
                let lo_payload = window_payload(w.window_id, w.lo, WindowSide::Lower);
                let hi_payload = window_payload(w.window_id, w.hi, WindowSide::Upper);
                if !self.verify_memoized(&self.sign_key, self.sign_fp, &lo_payload, &w.lo_sig)
                    || !self.verify_memoized(&self.sign_key, self.sign_fp, &hi_payload, &w.hi_sig)
                {
                    return Err(VerifyError::BadSignature("window bound"));
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
        }
    }

    /// Checks a head certificate's signature and freshness (§4.2.1,
    /// mechanism (ii)).
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] / [`VerifyError::StaleHead`].
    pub fn check_head(&self, head: &HeadCert) -> Result<(), VerifyError> {
        let payload = head_payload(head.sn_current, head.issued_at);
        if !self.verify_memoized(&self.sign_key, self.sign_fp, &payload, &head.sig) {
            return Err(VerifyError::BadSignature("head certificate"));
        }
        let age = self.clock.now().since(head.issued_at);
        if age > self.tolerance {
            return Err(VerifyError::StaleHead {
                age_ms: age.as_millis() as u64,
            });
        }
        Ok(())
    }
}

impl VerifyRead for Verifier {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        Verifier::verify_read(self, requested, outcome)
    }
}

impl<T: VerifyRead + ?Sized> VerifyRead for std::sync::Arc<T> {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        (**self).verify_read(requested, outcome)
    }
}

impl<T: VerifyRead + ?Sized> VerifyRead for &T {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        (**self).verify_read(requested, outcome)
    }
}

/// Verifier for a sharded witness plane.
///
/// Holds one [`Verifier`] per shard lane (each shard's SCPU has its own
/// key pair); lane 0's verifier doubles as the coordinator that signed
/// the composite binding. Every read is routed to the lane its serial
/// number belongs to *before* any signature is checked, so evidence
/// signed by shard A can never satisfy a query that shard B owns —
/// Theorems 1 and 2 then hold per lane exactly as in the single-SCPU
/// case, and the composite binding extends Theorem 2 across lanes by
/// making the shard count itself a signed statement.
#[derive(Debug)]
pub struct CompositeVerifier {
    shards: Vec<Verifier>,
}

impl CompositeVerifier {
    /// Builds a composite verifier from per-shard verifiers, indexed by
    /// lane (element 0 = coordinator shard).
    pub fn new(shards: Vec<Verifier>) -> Self {
        CompositeVerifier { shards }
    }

    /// Number of shard lanes this verifier covers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The verifier owning shard lane `lane`, if any.
    pub fn shard(&self, lane: u32) -> Option<&Verifier> {
        self.shards.get(usize::try_from(lane).ok()?)
    }

    fn coordinator(&self) -> Result<&Verifier, VerifyError> {
        self.shards
            .first()
            .ok_or(VerifyError::ShardNotBound { lane: 0 })
    }

    /// Verifies a composite freshness head end-to-end: the coordinator
    /// signature over `(shard_count, root, t)`, the binding's freshness,
    /// that the presented per-shard heads hash to the signed root, and
    /// each constituent head under its own shard's key.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed;
    /// [`VerifyError::CompositeRootMismatch`] means the host mixed or
    /// altered shard heads after the coordinator signed.
    pub fn verify_composite(&self, composite: &CompositeHead) -> Result<(), VerifyError> {
        let coordinator = self.coordinator()?;
        let binding = &composite.binding;
        if usize::try_from(binding.shard_count).ok() != Some(self.shards.len()) {
            return Err(VerifyError::BadSignature("composite shard count"));
        }
        let payload = composite_payload(binding.shard_count, &binding.root, binding.issued_at);
        if !coordinator.verify_memoized(
            &coordinator.sign_key,
            coordinator.sign_fp,
            &payload,
            &binding.sig,
        ) {
            return Err(VerifyError::BadSignature("composite binding"));
        }
        let age = coordinator.clock.now().since(binding.issued_at);
        if age > coordinator.tolerance {
            return Err(VerifyError::StaleHead {
                age_ms: age.as_millis() as u64,
            });
        }
        if composite.heads.len() != self.shards.len() {
            return Err(VerifyError::CompositeRootMismatch);
        }
        if composite_root(&composite.heads) != binding.root {
            return Err(VerifyError::CompositeRootMismatch);
        }
        for (lane, (head, shard)) in composite.heads.iter().zip(&self.shards).enumerate() {
            shard.check_head(head)?;
            let origin = SerialNumber::lane_origin(u32::try_from(lane).unwrap_or(u32::MAX));
            if head.sn_current.get() < origin {
                // A shard head below its own lane origin is structurally
                // impossible for honest firmware.
                return Err(VerifyError::BadSignature("shard head lane"));
            }
        }
        Ok(())
    }
}

impl VerifyRead for CompositeVerifier {
    /// Routes `requested` to its owning shard lane first, then verifies
    /// the outcome exclusively under that shard's keys.
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        let lane = requested.lane();
        let shard = self
            .shard(lane)
            .ok_or(VerifyError::ShardNotBound { lane })?;
        shard.verify_read(requested, outcome)
    }
}
