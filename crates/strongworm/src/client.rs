//! Client-side verification.
//!
//! Clients "only need to trust the SCPU" (§4.1): given the SCPU's public
//! key certificates and a roughly synchronized clock (footnote 1), a
//! [`Verifier`] checks every host response. Upon reading a regulated
//! block, the client is assured that (i) the block was not tampered with
//! if the read succeeds, or — if it fails — that (ii) it was deleted
//! according to policy, or (iii) it never existed in this store.

use std::sync::Arc;
use std::time::Duration;

use scpu::{Clock, Timestamp};
use wormcrypt::RsaPublicKey;

use crate::authority::KeyCertificate;
use crate::config::DataHashScheme;
use crate::error::VerifyError;
use crate::firmware::{DeviceKeys, WeakKeyCert};
use crate::proofs::{DeletionEvidence, HeadCert, ReadOutcome};
use crate::sn::SerialNumber;
use crate::vrd::{data_hash, Vrd};
use crate::witness::{
    base_payload, data_payload, deletion_payload, head_payload, meta_payload, weak_cert_payload,
    weak_wrap, window_payload, KeyRole, WindowSide, Witness,
};

/// What a verified read means.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadVerdict {
    /// The record is live and exactly as committed.
    Intact {
        /// The verified serial number.
        sn: SerialNumber,
    },
    /// The record was rightfully deleted (per-record proof, window, or
    /// below-base evidence).
    ConfirmedDeleted {
        /// Deletion time, when a per-record proof carried one.
        deleted_at: Option<Timestamp>,
    },
    /// No record with this serial number was ever written.
    ConfirmedNeverExisted,
}

/// A WORM client's verifier.
///
/// Holds the SCPU public keys (`s`, `d`), the published weak-key
/// certificates, the freshness tolerance, and a roughly synchronized
/// clock.
#[derive(Debug)]
pub struct Verifier {
    data_hash: DataHashScheme,
    sign_key: RsaPublicKey,
    del_key: RsaPublicKey,
    weak_certs: Vec<WeakKeyCert>,
    tolerance: Duration,
    clock: Arc<dyn Clock>,
}

impl Verifier {
    /// Builds a verifier directly from the device's published keys.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the weak-key certificate does not
    /// chain to the signing key.
    pub fn new(
        keys: &DeviceKeys,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        let mut v = Verifier {
            data_hash: keys.data_hash,
            sign_key: keys.sign.clone(),
            del_key: keys.delete.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
        };
        v.add_weak_cert(keys.weak_cert.clone())?;
        Ok(v)
    }

    /// Builds a verifier from CA-issued certificates — the full trust
    /// chain of §4.2.1 ("public key certificates — signed by a regulatory
    /// or general purpose certificate authority").
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if either certificate fails against
    /// the CA key or carries the wrong role.
    pub fn from_certificates(
        ca: &RsaPublicKey,
        sign_cert: &KeyCertificate,
        del_cert: &KeyCertificate,
        weak_cert: WeakKeyCert,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        if sign_cert.role != KeyRole::Sign || !sign_cert.verify(ca) {
            return Err(VerifyError::BadSignature("sign key certificate"));
        }
        if del_cert.role != KeyRole::Delete || !del_cert.verify(ca) {
            return Err(VerifyError::BadSignature("delete key certificate"));
        }
        let mut v = Verifier {
            data_hash: DataHashScheme::Chained,
            sign_key: sign_cert.key.clone(),
            del_key: del_cert.key.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
        };
        v.add_weak_cert(weak_cert)?;
        Ok(v)
    }

    /// Sets the data-hash scheme (for verifiers built via
    /// [`Verifier::from_certificates`], which defaults to
    /// [`DataHashScheme::Chained`]).
    pub fn set_data_hash_scheme(&mut self, scheme: DataHashScheme) {
        self.data_hash = scheme;
    }

    /// Registers a (rotated) weak-key certificate after verifying its
    /// chain to the signing key.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the certificate does not verify.
    pub fn add_weak_cert(&mut self, cert: WeakKeyCert) -> Result<(), VerifyError> {
        let payload = weak_cert_payload(&cert.key, cert.max_sig_expiry);
        if !cert.sig.verify(&self.sign_key, &payload) {
            return Err(VerifyError::BadSignature("weak key certificate"));
        }
        self.weak_certs.push(cert);
        Ok(())
    }

    /// Verifies a complete read outcome for `requested`.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed; every variant
    /// corresponds to a concrete attack the paper's Theorems 1 and 2 rule
    /// out.
    pub fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        self.check_head(outcome.head())?;
        match outcome {
            ReadOutcome::Data { vrd, records, .. } => {
                if vrd.sn != requested {
                    return Err(VerifyError::WrongSerialNumber);
                }
                // Note: `vrd.sn` may legitimately exceed `head.sn_current`
                // for records written since the last heartbeat; the head
                // only bounds *denials* (Theorem 2), never data responses.
                self.verify_vrd(vrd, records)?;
                Ok(ReadVerdict::Intact { sn: vrd.sn })
            }
            ReadOutcome::Deleted { evidence, .. } => self.verify_deletion(requested, evidence),
            ReadOutcome::NeverExisted { head } => {
                if requested <= head.sn_current {
                    return Err(VerifyError::HiddenRecord);
                }
                Ok(ReadVerdict::ConfirmedNeverExisted)
            }
        }
    }

    /// Verifies a VRD's witnesses against (re-hashed) record data.
    ///
    /// # Errors
    ///
    /// See [`Verifier::verify_read`].
    pub fn verify_vrd(&self, vrd: &Vrd, records: &[bytes::Bytes]) -> Result<(), VerifyError> {
        let meta = meta_payload(vrd.sn, &vrd.attr.encode());
        self.verify_witness(&meta, &vrd.metasig, "metasig")?;

        let chain = data_hash(self.data_hash, records.iter().map(|b| b.as_ref()));
        let datap = data_payload(vrd.sn, &chain);
        self.verify_witness(&datap, &vrd.datasig, "datasig")
            .map_err(|e| match e {
                // A structurally valid signature that does not cover the
                // recomputed hash means the data (or the hash) was altered.
                VerifyError::BadSignature("datasig") => VerifyError::DataHashMismatch,
                other => other,
            })
    }

    /// Verifies a single witness over `payload`.
    fn verify_witness(
        &self,
        payload: &[u8],
        witness: &Witness,
        field: &'static str,
    ) -> Result<(), VerifyError> {
        match witness {
            Witness::Strong(sig) => {
                if sig.verify(&self.sign_key, payload) {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Weak { sig, expires_at } => {
                let now = self.clock.now();
                if *expires_at < now {
                    return Err(VerifyError::WeakWitnessExpired { field });
                }
                let wrapped = weak_wrap(payload, *expires_at);
                let ok = self.weak_certs.iter().any(|cert| {
                    *expires_at <= cert.max_sig_expiry && sig.verify(&cert.key, &wrapped)
                });
                if ok {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Mac { .. } => Err(VerifyError::UnverifiableMac { field }),
        }
    }

    /// Verifies deletion evidence for `requested`.
    fn verify_deletion(
        &self,
        requested: SerialNumber,
        evidence: &DeletionEvidence,
    ) -> Result<ReadVerdict, VerifyError> {
        match evidence {
            DeletionEvidence::Proof(p) => {
                if p.sn != requested {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                let payload = deletion_payload(p.sn, p.deleted_at);
                if !p.sig.verify(&self.del_key, &payload) {
                    return Err(VerifyError::BadSignature("deletion proof"));
                }
                Ok(ReadVerdict::ConfirmedDeleted {
                    deleted_at: Some(p.deleted_at),
                })
            }
            DeletionEvidence::BelowBase(base) => {
                if base.expires_at <= self.clock.now() {
                    return Err(VerifyError::ExpiredCertificate("base"));
                }
                let payload = base_payload(base.sn_base, base.expires_at);
                if !base.sig.verify(&self.sign_key, &payload) {
                    return Err(VerifyError::BadSignature("base certificate"));
                }
                if requested >= base.sn_base {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
            DeletionEvidence::InWindow(w) => {
                if !w.contains(requested) {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                // Both bounds must verify under the *same* window id —
                // this is what stops bound-splicing across windows
                // (§4.2.1).
                let lo_payload = window_payload(w.window_id, w.lo, WindowSide::Lower);
                let hi_payload = window_payload(w.window_id, w.hi, WindowSide::Upper);
                if !w.lo_sig.verify(&self.sign_key, &lo_payload)
                    || !w.hi_sig.verify(&self.sign_key, &hi_payload)
                {
                    return Err(VerifyError::BadSignature("window bound"));
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
        }
    }

    /// Checks a head certificate's signature and freshness (§4.2.1,
    /// mechanism (ii)).
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] / [`VerifyError::StaleHead`].
    pub fn check_head(&self, head: &HeadCert) -> Result<(), VerifyError> {
        let payload = head_payload(head.sn_current, head.issued_at);
        if !head.sig.verify(&self.sign_key, &payload) {
            return Err(VerifyError::BadSignature("head certificate"));
        }
        let age = self.clock.now().since(head.issued_at);
        if age > self.tolerance {
            return Err(VerifyError::StaleHead {
                age_ms: age.as_millis() as u64,
            });
        }
        Ok(())
    }
}
