//! Client-side verification.
//!
//! Clients "only need to trust the SCPU" (§4.1): given the SCPU's public
//! key certificates and a roughly synchronized clock (footnote 1), a
//! [`Verifier`] checks every host response. Upon reading a regulated
//! block, the client is assured that (i) the block was not tampered with
//! if the read succeeds, or — if it fails — that (ii) it was deleted
//! according to policy, or (iii) it never existed in this store.

use std::sync::Arc;
use std::time::Duration;

use scpu::{Clock, Timestamp};
use wormcrypt::RsaPublicKey;

use crate::authority::KeyCertificate;
use crate::codec::composite_root;
use crate::config::DataHashScheme;
use crate::error::VerifyError;
use crate::firmware::{DeviceKeys, WeakKeyCert};
use crate::proofs::{CompositeHead, DeletionEvidence, HeadCert, ReadOutcome};
use crate::sn::SerialNumber;
use crate::vrd::{data_hash, Vrd};
use crate::witness::{
    base_payload, composite_payload, data_payload, deletion_payload, head_payload, meta_payload,
    weak_cert_payload, weak_wrap, window_payload, KeyRole, WindowSide, Witness,
};

/// What a verified read means.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadVerdict {
    /// The record is live and exactly as committed.
    Intact {
        /// The verified serial number.
        sn: SerialNumber,
    },
    /// The record was rightfully deleted (per-record proof, window, or
    /// below-base evidence).
    ConfirmedDeleted {
        /// Deletion time, when a per-record proof carried one.
        deleted_at: Option<Timestamp>,
    },
    /// No record with this serial number was ever written.
    ConfirmedNeverExisted,
}

/// Uniform read-verification interface over single-SCPU and sharded
/// deployments, so transports (e.g. `wormnet`'s remote client) can be
/// generic over [`Verifier`] and [`CompositeVerifier`].
pub trait VerifyRead {
    /// Verifies a complete read outcome for `requested`.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed.
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError>;
}

/// A WORM client's verifier.
///
/// Holds the SCPU public keys (`s`, `d`), the published weak-key
/// certificates, the freshness tolerance, and a roughly synchronized
/// clock.
#[derive(Debug)]
pub struct Verifier {
    data_hash: DataHashScheme,
    sign_key: RsaPublicKey,
    del_key: RsaPublicKey,
    weak_certs: Vec<WeakKeyCert>,
    tolerance: Duration,
    clock: Arc<dyn Clock>,
}

impl Verifier {
    /// Builds a verifier directly from the device's published keys.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the weak-key certificate does not
    /// chain to the signing key.
    pub fn new(
        keys: &DeviceKeys,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        let mut v = Verifier {
            data_hash: keys.data_hash,
            sign_key: keys.sign.clone(),
            del_key: keys.delete.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
        };
        v.add_weak_cert(keys.weak_cert.clone())?;
        Ok(v)
    }

    /// Builds a verifier from CA-issued certificates — the full trust
    /// chain of §4.2.1 ("public key certificates — signed by a regulatory
    /// or general purpose certificate authority").
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if either certificate fails against
    /// the CA key or carries the wrong role.
    pub fn from_certificates(
        ca: &RsaPublicKey,
        sign_cert: &KeyCertificate,
        del_cert: &KeyCertificate,
        weak_cert: WeakKeyCert,
        tolerance: Duration,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, VerifyError> {
        if sign_cert.role != KeyRole::Sign || !sign_cert.verify(ca) {
            return Err(VerifyError::BadSignature("sign key certificate"));
        }
        if del_cert.role != KeyRole::Delete || !del_cert.verify(ca) {
            return Err(VerifyError::BadSignature("delete key certificate"));
        }
        let mut v = Verifier {
            data_hash: DataHashScheme::Chained,
            sign_key: sign_cert.key.clone(),
            del_key: del_cert.key.clone(),
            weak_certs: Vec::new(),
            tolerance,
            clock,
        };
        v.add_weak_cert(weak_cert)?;
        Ok(v)
    }

    /// Sets the data-hash scheme (for verifiers built via
    /// [`Verifier::from_certificates`], which defaults to
    /// [`DataHashScheme::Chained`]).
    pub fn set_data_hash_scheme(&mut self, scheme: DataHashScheme) {
        self.data_hash = scheme;
    }

    /// Registers a (rotated) weak-key certificate after verifying its
    /// chain to the signing key.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] if the certificate does not verify.
    pub fn add_weak_cert(&mut self, cert: WeakKeyCert) -> Result<(), VerifyError> {
        let payload = weak_cert_payload(&cert.key, cert.max_sig_expiry);
        if !cert.sig.verify(&self.sign_key, &payload) {
            return Err(VerifyError::BadSignature("weak key certificate"));
        }
        self.weak_certs.push(cert);
        Ok(())
    }

    /// Verifies a complete read outcome for `requested`.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed; every variant
    /// corresponds to a concrete attack the paper's Theorems 1 and 2 rule
    /// out.
    pub fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        self.check_head(outcome.head())?;
        match outcome {
            ReadOutcome::Data { vrd, records, .. } => {
                if vrd.sn != requested {
                    return Err(VerifyError::WrongSerialNumber);
                }
                // Note: `vrd.sn` may legitimately exceed `head.sn_current`
                // for records written since the last heartbeat; the head
                // only bounds *denials* (Theorem 2), never data responses.
                self.verify_vrd(vrd, records)?;
                Ok(ReadVerdict::Intact { sn: vrd.sn })
            }
            ReadOutcome::Deleted { evidence, .. } => self.verify_deletion(requested, evidence),
            ReadOutcome::NeverExisted { head } => {
                if requested <= head.sn_current {
                    return Err(VerifyError::HiddenRecord);
                }
                Ok(ReadVerdict::ConfirmedNeverExisted)
            }
        }
    }

    /// Verifies a VRD's witnesses against (re-hashed) record data.
    ///
    /// # Errors
    ///
    /// See [`Verifier::verify_read`].
    pub fn verify_vrd(&self, vrd: &Vrd, records: &[bytes::Bytes]) -> Result<(), VerifyError> {
        let meta = meta_payload(vrd.sn, &vrd.attr.encode());
        self.verify_witness(&meta, &vrd.metasig, "metasig")?;

        let chain = data_hash(self.data_hash, records.iter().map(|b| b.as_ref()));
        let datap = data_payload(vrd.sn, &chain);
        self.verify_witness(&datap, &vrd.datasig, "datasig")
            .map_err(|e| match e {
                // A structurally valid signature that does not cover the
                // recomputed hash means the data (or the hash) was altered.
                VerifyError::BadSignature("datasig") => VerifyError::DataHashMismatch,
                other => other,
            })
    }

    /// Verifies a single witness over `payload`.
    fn verify_witness(
        &self,
        payload: &[u8],
        witness: &Witness,
        field: &'static str,
    ) -> Result<(), VerifyError> {
        match witness {
            Witness::Strong(sig) => {
                if sig.verify(&self.sign_key, payload) {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Weak { sig, expires_at } => {
                let now = self.clock.now();
                if *expires_at < now {
                    return Err(VerifyError::WeakWitnessExpired { field });
                }
                let wrapped = weak_wrap(payload, *expires_at);
                let ok = self.weak_certs.iter().any(|cert| {
                    *expires_at <= cert.max_sig_expiry && sig.verify(&cert.key, &wrapped)
                });
                if ok {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature(field))
                }
            }
            Witness::Mac { .. } => Err(VerifyError::UnverifiableMac { field }),
        }
    }

    /// Verifies deletion evidence for `requested`.
    fn verify_deletion(
        &self,
        requested: SerialNumber,
        evidence: &DeletionEvidence,
    ) -> Result<ReadVerdict, VerifyError> {
        match evidence {
            DeletionEvidence::Proof(p) => {
                if p.sn != requested {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                let payload = deletion_payload(p.sn, p.deleted_at);
                if !p.sig.verify(&self.del_key, &payload) {
                    return Err(VerifyError::BadSignature("deletion proof"));
                }
                Ok(ReadVerdict::ConfirmedDeleted {
                    deleted_at: Some(p.deleted_at),
                })
            }
            DeletionEvidence::BelowBase(base) => {
                if base.expires_at <= self.clock.now() {
                    return Err(VerifyError::ExpiredCertificate("base"));
                }
                let payload = base_payload(base.sn_base, base.expires_at);
                if !base.sig.verify(&self.sign_key, &payload) {
                    return Err(VerifyError::BadSignature("base certificate"));
                }
                if requested >= base.sn_base {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
            DeletionEvidence::InWindow(w) => {
                if !w.contains(requested) {
                    return Err(VerifyError::EvidenceDoesNotCoverSn);
                }
                // Both bounds must verify under the *same* window id —
                // this is what stops bound-splicing across windows
                // (§4.2.1).
                let lo_payload = window_payload(w.window_id, w.lo, WindowSide::Lower);
                let hi_payload = window_payload(w.window_id, w.hi, WindowSide::Upper);
                if !w.lo_sig.verify(&self.sign_key, &lo_payload)
                    || !w.hi_sig.verify(&self.sign_key, &hi_payload)
                {
                    return Err(VerifyError::BadSignature("window bound"));
                }
                Ok(ReadVerdict::ConfirmedDeleted { deleted_at: None })
            }
        }
    }

    /// Checks a head certificate's signature and freshness (§4.2.1,
    /// mechanism (ii)).
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] / [`VerifyError::StaleHead`].
    pub fn check_head(&self, head: &HeadCert) -> Result<(), VerifyError> {
        let payload = head_payload(head.sn_current, head.issued_at);
        if !head.sig.verify(&self.sign_key, &payload) {
            return Err(VerifyError::BadSignature("head certificate"));
        }
        let age = self.clock.now().since(head.issued_at);
        if age > self.tolerance {
            return Err(VerifyError::StaleHead {
                age_ms: age.as_millis() as u64,
            });
        }
        Ok(())
    }
}

impl VerifyRead for Verifier {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        Verifier::verify_read(self, requested, outcome)
    }
}

impl<T: VerifyRead + ?Sized> VerifyRead for std::sync::Arc<T> {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        (**self).verify_read(requested, outcome)
    }
}

impl<T: VerifyRead + ?Sized> VerifyRead for &T {
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        (**self).verify_read(requested, outcome)
    }
}

/// Verifier for a sharded witness plane.
///
/// Holds one [`Verifier`] per shard lane (each shard's SCPU has its own
/// key pair); lane 0's verifier doubles as the coordinator that signed
/// the composite binding. Every read is routed to the lane its serial
/// number belongs to *before* any signature is checked, so evidence
/// signed by shard A can never satisfy a query that shard B owns —
/// Theorems 1 and 2 then hold per lane exactly as in the single-SCPU
/// case, and the composite binding extends Theorem 2 across lanes by
/// making the shard count itself a signed statement.
#[derive(Debug)]
pub struct CompositeVerifier {
    shards: Vec<Verifier>,
}

impl CompositeVerifier {
    /// Builds a composite verifier from per-shard verifiers, indexed by
    /// lane (element 0 = coordinator shard).
    pub fn new(shards: Vec<Verifier>) -> Self {
        CompositeVerifier { shards }
    }

    /// Number of shard lanes this verifier covers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The verifier owning shard lane `lane`, if any.
    pub fn shard(&self, lane: u32) -> Option<&Verifier> {
        self.shards.get(usize::try_from(lane).ok()?)
    }

    fn coordinator(&self) -> Result<&Verifier, VerifyError> {
        self.shards
            .first()
            .ok_or(VerifyError::ShardNotBound { lane: 0 })
    }

    /// Verifies a composite freshness head end-to-end: the coordinator
    /// signature over `(shard_count, root, t)`, the binding's freshness,
    /// that the presented per-shard heads hash to the signed root, and
    /// each constituent head under its own shard's key.
    ///
    /// # Errors
    ///
    /// A [`VerifyError`] naming the first check that failed;
    /// [`VerifyError::CompositeRootMismatch`] means the host mixed or
    /// altered shard heads after the coordinator signed.
    pub fn verify_composite(&self, composite: &CompositeHead) -> Result<(), VerifyError> {
        let coordinator = self.coordinator()?;
        let binding = &composite.binding;
        if usize::try_from(binding.shard_count).ok() != Some(self.shards.len()) {
            return Err(VerifyError::BadSignature("composite shard count"));
        }
        let payload = composite_payload(binding.shard_count, &binding.root, binding.issued_at);
        if !binding.sig.verify(&coordinator.sign_key, &payload) {
            return Err(VerifyError::BadSignature("composite binding"));
        }
        let age = coordinator.clock.now().since(binding.issued_at);
        if age > coordinator.tolerance {
            return Err(VerifyError::StaleHead {
                age_ms: age.as_millis() as u64,
            });
        }
        if composite.heads.len() != self.shards.len() {
            return Err(VerifyError::CompositeRootMismatch);
        }
        if composite_root(&composite.heads) != binding.root {
            return Err(VerifyError::CompositeRootMismatch);
        }
        for (lane, (head, shard)) in composite.heads.iter().zip(&self.shards).enumerate() {
            shard.check_head(head)?;
            let origin = SerialNumber::lane_origin(u32::try_from(lane).unwrap_or(u32::MAX));
            if head.sn_current.get() < origin {
                // A shard head below its own lane origin is structurally
                // impossible for honest firmware.
                return Err(VerifyError::BadSignature("shard head lane"));
            }
        }
        Ok(())
    }
}

impl VerifyRead for CompositeVerifier {
    /// Routes `requested` to its owning shard lane first, then verifies
    /// the outcome exclusively under that shard's keys.
    fn verify_read(
        &self,
        requested: SerialNumber,
        outcome: &ReadOutcome,
    ) -> Result<ReadVerdict, VerifyError> {
        let lane = requested.lane();
        let shard = self
            .shard(lane)
            .ok_or(VerifyError::ShardNotBound { lane })?;
        shard.verify_read(requested, outcome)
    }
}
