//! The Virtual Record Descriptor Table (VRDT).
//!
//! "The untrusted main CPU maintains (on disk) a table of VRDs indexed by
//! their corresponding serial numbers" (§4.2.1). Entries hold either the
//! VRD of an *active* record or the SCPU-signed deletion proof of an
//! *expired* one; contiguous runs of expired entries can be compacted into
//! signed deleted-window bound pairs, and everything below `SN_base` is
//! dropped entirely.
//!
//! Every mutation is journaled ([`wormstore::Journal`]) so a host crash
//! between the data write and the table update recovers to a consistent
//! prefix. The journal protects against *accidents*; malicious edits are
//! caught by clients verifying the SCPU signatures, not here.

use std::collections::BTreeMap;

use wormstore::Journal;

use crate::codec;
use crate::proofs::{BaseCert, DeletionProof, HeadCert, WindowProof};
use crate::sn::SerialNumber;
use crate::vrd::Vrd;
use crate::wire::WireError;

/// One VRDT row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VrdtEntry {
    /// A live record: full VRD.
    Active(Vrd),
    /// An expired record: its deletion proof `S_d(SN)`.
    Expired(DeletionProof),
}

/// Result of looking a serial number up in the table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup<'a> {
    /// Live record.
    Active(&'a Vrd),
    /// Expired, with its per-record deletion proof still resident.
    Expired(&'a DeletionProof),
    /// Expired and compacted into a signed deleted window.
    InWindow(&'a WindowProof),
    /// Below `SN_base`: rightfully deleted, no per-record state kept.
    BelowBase,
    /// No information (beyond the head, or a hole — the latter indicates
    /// host-side corruption and will fail client verification).
    Unknown,
}

/// Journal opcodes.
const OP_INSERT: u8 = 1;
const OP_EXPIRE: u8 = 2;
const OP_COMPACT: u8 = 3;
const OP_HEAD: u8 = 4;
const OP_BASE: u8 = 5;
const OP_REPLACE: u8 = 6;

/// What [`Vrdt::recover`] observed while replaying a journal. Published
/// as the `recovery.replayed` / `recovery.torn_tail` counters in the
/// server's trace registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid journal frames replayed into the table.
    pub replayed: u64,
    /// Whether the log ended in a torn or corrupt tail that replay
    /// discarded (the expected signature of a mid-append crash).
    pub torn_tail: bool,
}

/// The host-side table of virtual record descriptors.
///
/// Invariant: `windows` holds *disjoint* intervals (an honest server only
/// compacts maximal expired runs, which cannot overlap), kept sorted —
/// under disjointness, sorted-by-`lo` and sorted-by-`hi` coincide, which
/// is what the binary search in [`Vrdt::lookup`] relies on.
#[derive(Debug, Default)]
pub struct Vrdt {
    entries: BTreeMap<SerialNumber, VrdtEntry>,
    /// Deleted windows, kept sorted by `lo` and non-overlapping.
    windows: Vec<WindowProof>,
    head: Option<HeadCert>,
    base: Option<BaseCert>,
    journal: Journal,
    recovery: RecoveryStats,
}

impl Vrdt {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a table by replaying a journal (crash recovery). Torn or
    /// corrupt tail entries are ignored, yielding the last consistent
    /// state.
    ///
    /// # Errors
    ///
    /// [`WireError`] if a *valid-CRC* frame contains a malformed payload
    /// (indicates a software bug or deliberate tampering rather than a
    /// crash).
    pub fn recover(journal: Journal) -> Result<Self, WireError> {
        let mut t = Vrdt::new();
        let mut replay = journal.replay();
        let frames: Vec<Vec<u8>> = replay.by_ref().collect();
        t.recovery = RecoveryStats {
            replayed: frames.len() as u64,
            torn_tail: replay.consumed_bytes() < journal.len_bytes(),
        };
        for frame in frames {
            let (&op, payload) = frame.split_first().ok_or(WireError {
                expected: "journal opcode",
            })?;
            match op {
                OP_INSERT => {
                    let vrd = codec::decode_vrd(payload)?;
                    t.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
                }
                OP_REPLACE => {
                    let vrd = codec::decode_vrd(payload)?;
                    t.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
                }
                OP_EXPIRE => {
                    let p = codec::decode_deletion_proof(payload)?;
                    t.entries.insert(p.sn, VrdtEntry::Expired(p));
                }
                OP_COMPACT => {
                    let w = codec::decode_window_proof(payload)?;
                    t.apply_compact(&w);
                }
                OP_HEAD => {
                    t.head = Some(codec::decode_head_cert(payload)?);
                }
                OP_BASE => {
                    let b = codec::decode_base_cert(payload)?;
                    t.apply_base(&b);
                }
                _ => {
                    return Err(WireError {
                        expected: "known journal opcode",
                    })
                }
            }
        }
        t.journal = journal;
        Ok(t)
    }

    /// The underlying journal bytes (what a real host would persist).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// What the most recent [`Vrdt::recover`] observed (all-zero for a
    /// table that was never recovered).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    fn log(&mut self, op: u8, payload: &[u8]) {
        let mut frame = Vec::with_capacity(payload.len() + 1);
        frame.push(op);
        frame.extend_from_slice(payload);
        self.journal.append(&frame);
    }

    /// Inserts a freshly written VRD.
    pub fn insert(&mut self, vrd: Vrd) {
        self.log(OP_INSERT, &codec::encode_vrd(&vrd));
        self.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
    }

    /// Replaces an active VRD (litigation-hold updates, strengthened
    /// witnesses). No-op on the entry map if the SN is not active.
    pub fn replace(&mut self, vrd: Vrd) {
        self.log(OP_REPLACE, &codec::encode_vrd(&vrd));
        self.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
    }

    /// Replaces an entry with its deletion proof (record expired).
    pub fn expire(&mut self, proof: DeletionProof) {
        self.log(OP_EXPIRE, &codec::encode_deletion_proof(&proof));
        self.entries.insert(proof.sn, VrdtEntry::Expired(proof));
    }

    /// Installs a deleted-window proof, expelling the per-record deletion
    /// proofs it subsumes (§4.2.1 storage reduction).
    pub fn compact(&mut self, window: WindowProof) {
        self.log(OP_COMPACT, &codec::encode_window_proof(&window));
        self.apply_compact(&window);
    }

    fn apply_compact(&mut self, window: &WindowProof) {
        let range: Vec<SerialNumber> = self
            .entries
            .range(window.lo..=window.hi)
            .map(|(&sn, _)| sn)
            .collect();
        for sn in range {
            if matches!(self.entries.get(&sn), Some(VrdtEntry::Expired(_))) {
                self.entries.remove(&sn);
            }
        }
        let pos = self.windows.partition_point(|w| w.lo < window.lo);
        self.windows.insert(pos, window.clone());
    }

    /// Installs the freshest head certificate.
    pub fn set_head(&mut self, head: HeadCert) {
        self.log(OP_HEAD, &codec::encode_head_cert(&head));
        self.head = Some(head);
    }

    /// Installs a base certificate and expels all per-record state below
    /// the base (§4.2.1: proofs outside the active window "can be securely
    /// discarded").
    pub fn set_base(&mut self, base: BaseCert) {
        self.log(OP_BASE, &codec::encode_base_cert(&base));
        self.apply_base(&base);
    }

    fn apply_base(&mut self, base: &BaseCert) {
        let below: Vec<SerialNumber> = self
            .entries
            .range(..base.sn_base)
            .filter(|(_, e)| matches!(e, VrdtEntry::Expired(_)))
            .map(|(&sn, _)| sn)
            .collect();
        for sn in below {
            self.entries.remove(&sn);
        }
        self.windows.retain(|w| w.hi >= base.sn_base);
        self.base = Some(base.clone());
    }

    /// The latest head certificate.
    pub fn head(&self) -> Option<&HeadCert> {
        self.head.as_ref()
    }

    /// The latest base certificate.
    pub fn base(&self) -> Option<&BaseCert> {
        self.base.as_ref()
    }

    /// Looks up a serial number.
    pub fn lookup(&self, sn: SerialNumber) -> Lookup<'_> {
        if let Some(entry) = self.entries.get(&sn) {
            return match entry {
                VrdtEntry::Active(v) => Lookup::Active(v),
                VrdtEntry::Expired(p) => Lookup::Expired(p),
            };
        }
        // Binary search over the sorted, non-overlapping windows.
        let idx = self.windows.partition_point(|w| w.hi < sn);
        if let Some(w) = self.windows.get(idx) {
            if w.contains(sn) {
                return Lookup::InWindow(w);
            }
        }
        if let Some(base) = &self.base {
            if sn < base.sn_base {
                return Lookup::BelowBase;
            }
        }
        if let Some(head) = &self.head {
            if sn > head.sn_current {
                return Lookup::Unknown;
            }
        }
        Lookup::Unknown
    }

    /// Iterates over active VRDs in SN order.
    pub fn iter_active(&self) -> impl Iterator<Item = &Vrd> {
        self.entries.values().filter_map(|e| match e {
            VrdtEntry::Active(v) => Some(v),
            VrdtEntry::Expired(_) => None,
        })
    }

    /// Iterates over resident expired entries in SN order.
    pub fn iter_expired(&self) -> impl Iterator<Item = &DeletionProof> {
        self.entries.values().filter_map(|e| match e {
            VrdtEntry::Active(_) => None,
            VrdtEntry::Expired(p) => Some(p),
        })
    }

    /// Finds maximal contiguous runs of ≥ `min_len` resident expired
    /// entries — compaction candidates per §4.2.1 ("3 or more expired
    /// VRs").
    pub fn expired_runs(&self, min_len: usize) -> Vec<(SerialNumber, SerialNumber)> {
        let mut runs = Vec::new();
        let mut cur: Option<(SerialNumber, SerialNumber)> = None;
        for p in self.iter_expired() {
            match cur {
                Some((lo, hi)) if p.sn == hi.next() => cur = Some((lo, p.sn)),
                Some((lo, hi)) => {
                    if (hi.get() - lo.get() + 1) as usize >= min_len {
                        runs.push((lo, hi));
                    }
                    cur = Some((p.sn, p.sn));
                }
                None => cur = Some((p.sn, p.sn)),
            }
        }
        if let Some((lo, hi)) = cur {
            if (hi.get() - lo.get() + 1) as usize >= min_len {
                runs.push((lo, hi));
            }
        }
        runs
    }

    /// Number of resident entries (active + expired).
    pub fn resident_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of resident deleted-window proofs.
    pub fn resident_windows(&self) -> usize {
        self.windows.len()
    }

    /// Checks the completeness invariant: every SN from 1 to the head is
    /// active, expired-with-proof, inside a window, or below the base.
    ///
    /// # Errors
    ///
    /// Returns the first unaccounted serial number.
    pub fn check_complete(&self) -> Result<(), SerialNumber> {
        let head = match &self.head {
            Some(h) => h.sn_current,
            None => return Ok(()),
        };
        // Everything below the base is accounted for by definition
        // (Lookup::Deleted via the base certificate), so start the walk
        // there. With no base yet, start at the head's lane origin —
        // walking up from SN 1 would take ~2^56 steps on a non-zero lane.
        let mut sn = match &self.base {
            Some(b) => b.sn_base,
            None => SerialNumber(SerialNumber::lane_origin(head.lane()) + 1),
        };
        while sn <= head {
            if matches!(self.lookup(sn), Lookup::Unknown) {
                return Err(sn);
            }
            sn = sn.next();
        }
        Ok(())
    }

    /// Direct mutable access to entries — **adversarial test hook**
    /// modelling Mallory's superuser edit of on-disk structures.
    #[doc(hidden)]
    pub fn entries_mut_for_attack(&mut self) -> &mut BTreeMap<SerialNumber, VrdtEntry> {
        &mut self.entries
    }

    /// Direct mutable access to windows — adversarial test hook.
    #[doc(hidden)]
    pub fn windows_mut_for_attack(&mut self) -> &mut Vec<WindowProof> {
        &mut self.windows
    }

    /// Overwrites the head certificate without journaling — adversarial
    /// test hook (stale-head replay).
    #[doc(hidden)]
    pub fn set_head_for_attack(&mut self, head: HeadCert) {
        self.head = Some(head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::RecordAttributes;
    use crate::policy::Regulation;
    use crate::witness::{Signature, Witness};
    use scpu::Timestamp;
    use wormstore::Shredder;

    fn sig(b: u8) -> Signature {
        Signature {
            key_id: [b; 8],
            bytes: vec![b; 8],
        }
    }

    fn vrd(sn: u64) -> Vrd {
        Vrd {
            sn: SerialNumber(sn),
            attr: RecordAttributes {
                created_at: Timestamp::from_millis(0),
                retention_until: Timestamp::from_millis(1000),
                regulation: Regulation::Custom,
                shredder: Shredder::ZeroFill,
                litigation_hold: None,
                flags: 0,
            },
            rdl: vec![],
            metasig: Witness::Strong(sig(1)),
            datasig: Witness::Strong(sig(2)),
        }
    }

    fn del(sn: u64) -> DeletionProof {
        DeletionProof {
            sn: SerialNumber(sn),
            deleted_at: Timestamp::from_millis(50),
            sig: sig(3),
        }
    }

    fn head(sn: u64) -> HeadCert {
        HeadCert {
            sn_current: SerialNumber(sn),
            issued_at: Timestamp::from_millis(1),
            sig: sig(4),
        }
    }

    fn window(id: u64, lo: u64, hi: u64) -> WindowProof {
        WindowProof {
            window_id: id,
            lo: SerialNumber(lo),
            hi: SerialNumber(hi),
            lo_sig: sig(5),
            hi_sig: sig(6),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = Vrdt::new();
        t.insert(vrd(1));
        t.insert(vrd(2));
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(matches!(t.lookup(SerialNumber(3)), Lookup::Unknown));
        assert_eq!(t.resident_entries(), 2);
        assert_eq!(t.iter_active().count(), 2);
    }

    #[test]
    fn expire_replaces_entry() {
        let mut t = Vrdt::new();
        t.insert(vrd(1));
        t.expire(del(1));
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Expired(_)));
        assert_eq!(t.iter_active().count(), 0);
        assert_eq!(t.iter_expired().count(), 1);
    }

    #[test]
    fn compaction_expels_expired_entries() {
        let mut t = Vrdt::new();
        for i in 1..=6 {
            t.insert(vrd(i));
        }
        for i in 2..=4 {
            t.expire(del(i));
        }
        assert_eq!(t.resident_entries(), 6);
        t.compact(window(99, 2, 4));
        assert_eq!(t.resident_entries(), 3);
        assert_eq!(t.resident_windows(), 1);
        for i in 2..=4 {
            match t.lookup(SerialNumber(i)) {
                Lookup::InWindow(w) => assert_eq!(w.window_id, 99),
                other => panic!("sn {i}: {other:?}"),
            }
        }
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(matches!(t.lookup(SerialNumber(5)), Lookup::Active(_)));
    }

    #[test]
    fn compaction_never_expels_active_entries() {
        let mut t = Vrdt::new();
        for i in 1..=5 {
            t.insert(vrd(i));
        }
        t.expire(del(2));
        t.expire(del(4));
        // Window covering 2..=4 where 3 is still active: 3 survives.
        t.compact(window(7, 2, 4));
        assert!(matches!(t.lookup(SerialNumber(3)), Lookup::Active(_)));
    }

    #[test]
    fn base_expels_below() {
        let mut t = Vrdt::new();
        for i in 1..=5 {
            t.insert(vrd(i));
        }
        for i in 1..=3 {
            t.expire(del(i));
        }
        t.set_base(BaseCert {
            sn_base: SerialNumber(4),
            expires_at: Timestamp::from_millis(10_000),
            sig: sig(7),
        });
        assert_eq!(t.resident_entries(), 2);
        assert!(matches!(t.lookup(SerialNumber(2)), Lookup::BelowBase));
        assert!(matches!(t.lookup(SerialNumber(4)), Lookup::Active(_)));
    }

    #[test]
    fn multiple_windows_binary_search() {
        let mut t = Vrdt::new();
        for i in 1..=30 {
            t.insert(vrd(i));
        }
        for i in (5..=10).chain(15..=20) {
            t.expire(del(i));
        }
        t.compact(window(1, 5, 10));
        t.compact(window(2, 15, 20));
        assert!(matches!(t.lookup(SerialNumber(7)), Lookup::InWindow(w) if w.window_id == 1));
        assert!(matches!(t.lookup(SerialNumber(20)), Lookup::InWindow(w) if w.window_id == 2));
        assert!(matches!(t.lookup(SerialNumber(12)), Lookup::Active(_)));
    }

    #[test]
    fn expired_runs_detection() {
        let mut t = Vrdt::new();
        for i in 1..=12 {
            t.insert(vrd(i));
        }
        for i in [2u64, 3, 4, 6, 8, 9, 10, 11] {
            t.expire(del(i));
        }
        let runs = t.expired_runs(3);
        assert_eq!(
            runs,
            vec![
                (SerialNumber(2), SerialNumber(4)),
                (SerialNumber(8), SerialNumber(11))
            ]
        );
        // Higher threshold drops the short run.
        assert_eq!(t.expired_runs(4), vec![(SerialNumber(8), SerialNumber(11))]);
    }

    #[test]
    fn completeness_invariant() {
        let mut t = Vrdt::new();
        for i in 1..=4 {
            t.insert(vrd(i));
        }
        t.set_head(head(4));
        assert!(t.check_complete().is_ok());
        // Remove an entry behind the table's back: invariant broken.
        t.entries_mut_for_attack().remove(&SerialNumber(3));
        assert_eq!(t.check_complete(), Err(SerialNumber(3)));
    }

    #[test]
    fn journal_recovery_roundtrip() {
        let mut t = Vrdt::new();
        for i in 1..=8 {
            t.insert(vrd(i));
        }
        for i in 2..=5 {
            t.expire(del(i));
        }
        t.compact(window(3, 2, 5));
        t.set_head(head(8));
        t.set_base(BaseCert {
            sn_base: SerialNumber(1),
            expires_at: Timestamp::from_millis(500),
            sig: sig(8),
        });

        let recovered =
            Vrdt::recover(Journal::from_bytes(t.journal().as_bytes().to_vec())).unwrap();
        assert_eq!(recovered.resident_entries(), t.resident_entries());
        assert_eq!(recovered.resident_windows(), 1);
        assert_eq!(recovered.head().unwrap().sn_current, SerialNumber(8));
        for i in 1..=8 {
            let a = format!("{:?}", t.lookup(SerialNumber(i)));
            let b = format!("{:?}", recovered.lookup(SerialNumber(i)));
            assert_eq!(a, b, "sn {i}");
        }
    }

    #[test]
    fn torn_journal_recovers_prefix() {
        let mut t = Vrdt::new();
        t.insert(vrd(1));
        t.insert(vrd(2));
        let mut j = Journal::from_bytes(t.journal().as_bytes().to_vec());
        j.truncate_tail(7); // tear the second frame
        let recovered = Vrdt::recover(j).unwrap();
        assert_eq!(recovered.resident_entries(), 1);
        assert!(matches!(
            recovered.lookup(SerialNumber(1)),
            Lookup::Active(_)
        ));
    }

    #[test]
    fn recovery_rejects_garbage_opcode() {
        let mut j = Journal::new();
        j.append(&[200, 1, 2, 3]);
        assert!(Vrdt::recover(j).is_err());
    }
}
