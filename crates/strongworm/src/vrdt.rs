//! The Virtual Record Descriptor Table (VRDT).
//!
//! "The untrusted main CPU maintains (on disk) a table of VRDs indexed by
//! their corresponding serial numbers" (§4.2.1). Entries hold either the
//! VRD of an *active* record or the SCPU-signed deletion proof of an
//! *expired* one; contiguous runs of expired entries can be compacted into
//! signed deleted-window bound pairs, and everything below `SN_base` is
//! dropped entirely.
//!
//! Every mutation is journaled ([`wormstore::Journal`]) so a host crash
//! between the data write and the table update recovers to a consistent
//! prefix. When a durable [`DurableLog`] sink is attached, each frame is
//! committed to the device *before* the in-memory table mutates, so memory
//! never runs ahead of disk.
//!
//! Multi-frame units (a deletion's expire + shred-begin, a compaction's
//! relocations) are journaled as *staged* frames ([`OP_STAGE`]) followed
//! by a single commit marker ([`OP_COMMIT`]): the whole unit applies
//! atomically at the marker, and recovery rolls an uncommitted staged
//! suffix back by truncating it — crash-atomicity for transactions that
//! span several journal appends. In-flight media shreds persist their
//! per-pass progress ([`OP_SHRED_BEGIN`] / [`OP_SHRED_PASS`] /
//! [`OP_SHRED_DONE`]) so a crash mid-shred resumes at the right pass with
//! the pass *order* preserved.
//!
//! The journal protects against *accidents*; malicious edits are caught by
//! clients verifying the SCPU signatures, not here.

use std::collections::BTreeMap;

use wormstore::{DurableLog, Journal, RecordDescriptor, Shredder};

use crate::codec;
use crate::error::WormError;
use crate::proofs::{BaseCert, DeletionProof, HeadCert, WindowProof};
use crate::sn::SerialNumber;
use crate::vrd::Vrd;
use crate::wire::WireError;

/// One VRDT row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VrdtEntry {
    /// A live record: full VRD.
    Active(Vrd),
    /// An expired record: its deletion proof `S_d(SN)`.
    Expired(DeletionProof),
}

/// Result of looking a serial number up in the table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup<'a> {
    /// Live record.
    Active(&'a Vrd),
    /// Expired, with its per-record deletion proof still resident.
    Expired(&'a DeletionProof),
    /// Expired and compacted into a signed deleted window.
    InWindow(&'a WindowProof),
    /// Below `SN_base`: rightfully deleted, no per-record state kept.
    BelowBase,
    /// No information (beyond the head, or a hole — the latter indicates
    /// host-side corruption and will fail client verification).
    Unknown,
}

/// Journal opcodes.
const OP_INSERT: u8 = 1;
const OP_EXPIRE: u8 = 2;
const OP_COMPACT: u8 = 3;
const OP_HEAD: u8 = 4;
const OP_BASE: u8 = 5;
const OP_REPLACE: u8 = 6;
/// A staged frame: `[inner opcode][inner payload]`, accumulated but not
/// applied until the transaction's commit marker.
const OP_STAGE: u8 = 7;
/// Commit marker: payload is the staged-frame count (`u32`, big-endian);
/// applies every staged frame atomically.
const OP_COMMIT: u8 = 8;
/// An extent entered shredding: payload is an encoded [`ShredState`].
const OP_SHRED_BEGIN: u8 = 9;
/// One shred pass completed: payload is `(extent offset, pass)`.
const OP_SHRED_PASS: u8 = 10;
/// Every pass applied; the extent may be reclaimed: payload is the offset.
const OP_SHRED_DONE: u8 = 11;

/// Progress of an in-flight media shred, persisted so a crash mid-shred
/// resumes at the correct pass instead of restarting (or worse, never
/// finishing). Keyed by extent *offset*, not record id — relocation
/// preserves the id, so old and new extents of the same record would
/// collide on it, while offsets are unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShredState {
    /// The doomed extent.
    pub rd: RecordDescriptor,
    /// Overwrite discipline from the record's attributes.
    pub shredder: Shredder,
    /// Next 0-based pass to run; `>= shredder.pass_count()` means every
    /// overwrite is on the medium and only the `SHRED_DONE` marker is
    /// outstanding.
    pub next_pass: u32,
}

/// What [`Vrdt::recover`] observed while replaying a journal. Published
/// as the `recovery.*` counters in the server's trace registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid journal frames whose effect survived into the table
    /// (staged frames count once committed, plus their commit marker).
    pub replayed: u64,
    /// Whether the log ended in a torn or corrupt tail that replay
    /// discarded (the expected signature of a mid-append crash).
    pub torn_tail: bool,
    /// Staged frames of an uncommitted transaction that recovery rolled
    /// back (truncated off the journal).
    pub rolled_back: u64,
}

/// The host-side table of virtual record descriptors.
///
/// Invariant: `windows` holds *disjoint* intervals (an honest server only
/// compacts maximal expired runs, which cannot overlap), kept sorted —
/// under disjointness, sorted-by-`lo` and sorted-by-`hi` coincide, which
/// is what the binary search in [`Vrdt::lookup`] relies on.
#[derive(Default)]
pub struct Vrdt {
    entries: BTreeMap<SerialNumber, VrdtEntry>,
    /// Deleted windows, kept sorted by `lo` and non-overlapping.
    windows: Vec<WindowProof>,
    head: Option<HeadCert>,
    base: Option<BaseCert>,
    journal: Journal,
    /// Durable mirror of the journal; frames reach it before memory.
    sink: Option<Box<dyn DurableLog>>,
    /// Frames of the open transaction: `(inner opcode, inner payload)`.
    staged: Vec<(u8, Vec<u8>)>,
    /// Journal byte offset of the open transaction's first staged frame
    /// (rollback truncation point).
    txn_start: Option<usize>,
    /// In-flight shreds by extent offset.
    pending_shreds: BTreeMap<u64, ShredState>,
    recovery: RecoveryStats,
}

impl std::fmt::Debug for Vrdt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vrdt")
            .field("entries", &self.entries)
            .field("windows", &self.windows)
            .field("head", &self.head)
            .field("base", &self.base)
            .field("journal", &self.journal)
            .field("sink", &self.sink.as_ref().map(|_| "DurableLog"))
            .field("staged", &self.staged.len())
            .field("txn_start", &self.txn_start)
            .field("pending_shreds", &self.pending_shreds)
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl Vrdt {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a table by replaying a journal (crash recovery). Torn or
    /// corrupt tail entries are ignored, and an *uncommitted staged
    /// suffix* — a transaction that crashed before its commit marker — is
    /// rolled back by truncating it off the journal, yielding the last
    /// transactionally consistent state.
    ///
    /// # Errors
    ///
    /// [`WireError`] if a *valid-CRC* frame contains a malformed payload
    /// (indicates a software bug or deliberate tampering rather than a
    /// crash).
    pub fn recover(journal: Journal) -> Result<Self, WireError> {
        let mut t = Vrdt::new();
        let mut replay = journal.replay();
        let mut frames: Vec<(usize, Vec<u8>)> = Vec::new();
        loop {
            let at = replay.consumed_bytes();
            match replay.next() {
                Some(frame) => frames.push((at, frame)),
                None => break,
            }
        }
        let consumed = replay.consumed_bytes();
        let torn_tail = journal.recovered_torn_tail() || consumed < journal.len_bytes();
        let mut staged: Vec<(u8, Vec<u8>)> = Vec::new();
        let mut txn_start: Option<usize> = None;
        let mut applied = 0u64;
        for (at, frame) in frames {
            let (&op, payload) = frame.split_first().ok_or(WireError {
                expected: "journal opcode",
            })?;
            match op {
                OP_STAGE => {
                    let (&inner, inner_payload) = payload.split_first().ok_or(WireError {
                        expected: "staged opcode",
                    })?;
                    txn_start.get_or_insert(at);
                    staged.push((inner, inner_payload.to_vec()));
                }
                OP_COMMIT => {
                    let count: [u8; 4] = payload.try_into().map_err(|_| WireError {
                        expected: "commit count",
                    })?;
                    let n = u32::from_be_bytes(count);
                    if n as usize != staged.len() {
                        return Err(WireError {
                            expected: "commit count matching staged frames",
                        });
                    }
                    for (iop, ipay) in std::mem::take(&mut staged) {
                        t.apply_op(iop, &ipay)?;
                    }
                    txn_start = None;
                    applied += 1 + n as u64;
                }
                // The runtime refuses plain ops while a transaction is
                // open (so rollback is a pure suffix truncation); a plain
                // frame between stage and commit is tampering.
                _ if txn_start.is_some() => {
                    return Err(WireError {
                        expected: "staged frame or commit marker",
                    });
                }
                OP_SHRED_PASS => {
                    let (offset, pass) = codec::decode_shred_pass(payload)?;
                    if let Some(s) = t.pending_shreds.get_mut(&offset) {
                        s.next_pass = pass + 1;
                    }
                    applied += 1;
                }
                OP_SHRED_DONE => {
                    let offset = codec::decode_shred_done(payload)?;
                    t.pending_shreds.remove(&offset);
                    applied += 1;
                }
                _ => {
                    t.apply_op(op, payload)?;
                    applied += 1;
                }
            }
        }
        let mut journal = journal;
        let rolled_back = staged.len() as u64;
        // Keep only replayable state: an uncommitted staged suffix rolls
        // back, and a torn tail (however the journal was handed over) is
        // discarded so post-recovery appends never land behind damage.
        let keep = txn_start.unwrap_or(consumed).min(consumed);
        journal.truncate_tail(journal.len_bytes() - keep);
        t.recovery = RecoveryStats {
            replayed: applied,
            torn_tail,
            rolled_back,
        };
        t.journal = journal;
        Ok(t)
    }

    /// Applies one (already committed) journal operation to the table.
    fn apply_op(&mut self, op: u8, payload: &[u8]) -> Result<(), WireError> {
        match op {
            OP_INSERT | OP_REPLACE => {
                let vrd = codec::decode_vrd(payload)?;
                self.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
            }
            OP_EXPIRE => {
                let p = codec::decode_deletion_proof(payload)?;
                self.entries.insert(p.sn, VrdtEntry::Expired(p));
            }
            OP_COMPACT => {
                let w = codec::decode_window_proof(payload)?;
                self.apply_compact(&w);
            }
            OP_HEAD => {
                self.head = Some(codec::decode_head_cert(payload)?);
            }
            OP_BASE => {
                let b = codec::decode_base_cert(payload)?;
                self.apply_base(&b);
            }
            OP_SHRED_BEGIN => {
                let s = codec::decode_shred_state(payload)?;
                self.pending_shreds.insert(s.rd.offset, s);
            }
            _ => {
                return Err(WireError {
                    expected: "known journal opcode",
                })
            }
        }
        Ok(())
    }

    /// The underlying journal bytes (what a real host would persist).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Attaches a durable sink: every subsequent frame is committed to it
    /// *before* the in-memory journal and table mutate. The sink's logical
    /// tail is first aligned to the in-memory journal and everything past
    /// it erased, so a rolled-back on-disk suffix can never replay.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the tail erase fails.
    pub fn attach_sink(&mut self, mut sink: Box<dyn DurableLog>) -> Result<(), WormError> {
        sink.truncate_to(self.journal.len_bytes() as u64);
        sink.erase_tail()?;
        self.sink = Some(sink);
        Ok(())
    }

    /// Records that the durable region scan discarded a torn tail (set by
    /// the server when [`wormstore::DiskJournal::open`] reports one; the
    /// in-memory replay in [`Vrdt::recover`] only ever sees the already
    /// cleaned prefix).
    pub fn mark_torn_tail(&mut self) {
        self.recovery.torn_tail = true;
    }

    /// What the most recent [`Vrdt::recover`] observed (all-zero for a
    /// table that was never recovered).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Whether a staged transaction is open (frames staged, no commit
    /// marker yet).
    pub fn has_open_txn(&self) -> bool {
        self.txn_start.is_some()
    }

    /// In-flight shreds (begun, not yet `SHRED_DONE`) by extent offset.
    /// After recovery these extents must stay reserved in the store until
    /// their remaining passes run.
    pub fn pending_shreds(&self) -> &BTreeMap<u64, ShredState> {
        &self.pending_shreds
    }

    fn ensure_no_txn(&self) -> Result<(), WormError> {
        if self.txn_start.is_some() {
            Err(WormError::TxnOpen)
        } else {
            Ok(())
        }
    }

    /// Journals one frame, durably first when a sink is attached. The
    /// in-memory journal extends only if the sink accepted, so memory
    /// never runs ahead of disk.
    fn log(&mut self, op: u8, payload: &[u8]) -> Result<(), WormError> {
        let mut frame = Vec::with_capacity(payload.len() + 1);
        frame.push(op);
        frame.extend_from_slice(payload);
        let res = match self.sink.as_mut() {
            Some(sink) => self.journal.append_via(&frame, |f| sink.append_frame(f)),
            None => self.journal.append(&frame),
        };
        res.map(|_| ()).map_err(WormError::from)
    }

    /// Inserts a freshly written VRD. A single insert is self-committing:
    /// the one frame *is* the atomic unit.
    ///
    /// # Errors
    ///
    /// [`WormError::TxnOpen`] during a staged transaction;
    /// [`WormError::Journal`] if the durable append fails (the table is
    /// left unchanged).
    pub fn insert(&mut self, vrd: Vrd) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_INSERT, &codec::encode_vrd(&vrd))?;
        self.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
        Ok(())
    }

    /// Replaces an active VRD (litigation-hold updates, strengthened
    /// witnesses). No-op on the entry map if the SN is not active.
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn replace(&mut self, vrd: Vrd) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_REPLACE, &codec::encode_vrd(&vrd))?;
        self.entries.insert(vrd.sn, VrdtEntry::Active(vrd));
        Ok(())
    }

    /// Replaces an entry with its deletion proof (record expired).
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn expire(&mut self, proof: DeletionProof) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_EXPIRE, &codec::encode_deletion_proof(&proof))?;
        self.entries.insert(proof.sn, VrdtEntry::Expired(proof));
        Ok(())
    }

    /// Installs a deleted-window proof, expelling the per-record deletion
    /// proofs it subsumes (§4.2.1 storage reduction).
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn compact(&mut self, window: WindowProof) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_COMPACT, &codec::encode_window_proof(&window))?;
        self.apply_compact(&window);
        Ok(())
    }

    fn apply_compact(&mut self, window: &WindowProof) {
        let range: Vec<SerialNumber> = self
            .entries
            .range(window.lo..=window.hi)
            .map(|(&sn, _)| sn)
            .collect();
        for sn in range {
            if matches!(self.entries.get(&sn), Some(VrdtEntry::Expired(_))) {
                self.entries.remove(&sn);
            }
        }
        let pos = self.windows.partition_point(|w| w.lo < window.lo);
        self.windows.insert(pos, window.clone());
    }

    /// Installs the freshest head certificate.
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn set_head(&mut self, head: HeadCert) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_HEAD, &codec::encode_head_cert(&head))?;
        self.head = Some(head);
        Ok(())
    }

    /// Installs a base certificate and expels all per-record state below
    /// the base (§4.2.1: proofs outside the active window "can be securely
    /// discarded").
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn set_base(&mut self, base: BaseCert) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_BASE, &codec::encode_base_cert(&base))?;
        self.apply_base(&base);
        Ok(())
    }

    fn apply_base(&mut self, base: &BaseCert) {
        let below: Vec<SerialNumber> = self
            .entries
            .range(..base.sn_base)
            .filter(|(_, e)| matches!(e, VrdtEntry::Expired(_)))
            .map(|(&sn, _)| sn)
            .collect();
        for sn in below {
            self.entries.remove(&sn);
        }
        self.windows.retain(|w| w.hi >= base.sn_base);
        self.base = Some(base.clone());
    }

    /// Stages one frame of an open transaction: journaled now (durably,
    /// with a sink), applied only at [`Vrdt::commit_txn`].
    fn stage(&mut self, inner_op: u8, inner: Vec<u8>) -> Result<(), WormError> {
        let mut payload = Vec::with_capacity(inner.len() + 1);
        payload.push(inner_op);
        payload.extend_from_slice(&inner);
        let at = self.journal.len_bytes();
        self.log(OP_STAGE, &payload)?;
        self.txn_start.get_or_insert(at);
        self.staged.push((inner_op, inner));
        Ok(())
    }

    /// Stages a VRD insert into the open transaction.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the durable append fails.
    pub fn stage_insert(&mut self, vrd: &Vrd) -> Result<(), WormError> {
        self.stage(OP_INSERT, codec::encode_vrd(vrd))
    }

    /// Stages a VRD replacement into the open transaction.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the durable append fails.
    pub fn stage_replace(&mut self, vrd: &Vrd) -> Result<(), WormError> {
        self.stage(OP_REPLACE, codec::encode_vrd(vrd))
    }

    /// Stages a record expiry into the open transaction.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the durable append fails.
    pub fn stage_expire(&mut self, proof: &DeletionProof) -> Result<(), WormError> {
        self.stage(OP_EXPIRE, codec::encode_deletion_proof(proof))
    }

    /// Stages a shred-begin (extent entering its overwrite passes) into
    /// the open transaction.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the durable append fails.
    pub fn stage_shred_begin(&mut self, state: &ShredState) -> Result<(), WormError> {
        self.stage(OP_SHRED_BEGIN, codec::encode_shred_state(state))
    }

    /// Commits the open transaction: journals the commit marker (the
    /// commitment point — durable before anything applies), then applies
    /// every staged frame. A crash before the marker rolls the whole unit
    /// back at recovery; a crash after replays it in full.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if the marker append fails (the transaction
    /// stays open — retry or [`Vrdt::abort_txn`]).
    pub fn commit_txn(&mut self) -> Result<(), WormError> {
        if self.staged.is_empty() {
            self.txn_start = None;
            return Ok(());
        }
        let n = u32::try_from(self.staged.len()).map_err(|_| {
            WormError::Wire(WireError {
                expected: "staged count within u32",
            })
        })?;
        self.log(OP_COMMIT, &n.to_be_bytes())?;
        self.txn_start = None;
        for (op, payload) in std::mem::take(&mut self.staged) {
            self.apply_op(op, &payload).map_err(WormError::Wire)?;
        }
        Ok(())
    }

    /// Aborts the open transaction: truncates its staged frames off the
    /// journal (and the durable sink) without applying them — the same
    /// rollback a crash-recovery would perform.
    ///
    /// # Errors
    ///
    /// [`WormError::Journal`] if erasing the sink tail fails; the
    /// transaction is logically gone regardless (any surviving staged
    /// frames on disk are uncommitted and roll back at the next
    /// recovery).
    pub fn abort_txn(&mut self) -> Result<(), WormError> {
        let Some(start) = self.txn_start.take() else {
            return Ok(());
        };
        self.staged.clear();
        self.journal.truncate_tail(self.journal.len_bytes() - start);
        if let Some(sink) = self.sink.as_mut() {
            sink.truncate_to(start as u64);
            sink.erase_tail()?;
        }
        Ok(())
    }

    /// Journals completion of shred pass `pass` (0-based) for the pending
    /// extent at `offset`, advancing its resume point. The marker goes to
    /// the journal *after* the pass bytes hit the medium: a crash between
    /// the two re-runs the pass, which is idempotent.
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn note_shred_pass(&mut self, offset: u64, pass: u32) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_SHRED_PASS, &codec::encode_shred_pass(offset, pass))?;
        if let Some(s) = self.pending_shreds.get_mut(&offset) {
            s.next_pass = pass + 1;
        }
        Ok(())
    }

    /// Journals completion of the whole shred at `offset`; the extent may
    /// now be reclaimed by the store.
    ///
    /// # Errors
    ///
    /// As [`Vrdt::insert`].
    pub fn note_shred_done(&mut self, offset: u64) -> Result<(), WormError> {
        self.ensure_no_txn()?;
        self.log(OP_SHRED_DONE, &codec::encode_shred_done(offset))?;
        self.pending_shreds.remove(&offset);
        Ok(())
    }

    /// The latest head certificate.
    pub fn head(&self) -> Option<&HeadCert> {
        self.head.as_ref()
    }

    /// The latest base certificate.
    pub fn base(&self) -> Option<&BaseCert> {
        self.base.as_ref()
    }

    /// Looks up a serial number.
    pub fn lookup(&self, sn: SerialNumber) -> Lookup<'_> {
        if let Some(entry) = self.entries.get(&sn) {
            return match entry {
                VrdtEntry::Active(v) => Lookup::Active(v),
                VrdtEntry::Expired(p) => Lookup::Expired(p),
            };
        }
        // Binary search over the sorted, non-overlapping windows.
        let idx = self.windows.partition_point(|w| w.hi < sn);
        if let Some(w) = self.windows.get(idx) {
            if w.contains(sn) {
                return Lookup::InWindow(w);
            }
        }
        if let Some(base) = &self.base {
            if sn < base.sn_base {
                return Lookup::BelowBase;
            }
        }
        if let Some(head) = &self.head {
            if sn > head.sn_current {
                return Lookup::Unknown;
            }
        }
        Lookup::Unknown
    }

    /// Iterates over active VRDs in SN order.
    pub fn iter_active(&self) -> impl Iterator<Item = &Vrd> {
        self.entries.values().filter_map(|e| match e {
            VrdtEntry::Active(v) => Some(v),
            VrdtEntry::Expired(_) => None,
        })
    }

    /// Iterates over resident expired entries in SN order.
    pub fn iter_expired(&self) -> impl Iterator<Item = &DeletionProof> {
        self.entries.values().filter_map(|e| match e {
            VrdtEntry::Active(_) => None,
            VrdtEntry::Expired(p) => Some(p),
        })
    }

    /// Finds maximal contiguous runs of ≥ `min_len` resident expired
    /// entries — compaction candidates per §4.2.1 ("3 or more expired
    /// VRs").
    pub fn expired_runs(&self, min_len: usize) -> Vec<(SerialNumber, SerialNumber)> {
        let mut runs = Vec::new();
        let mut cur: Option<(SerialNumber, SerialNumber)> = None;
        for p in self.iter_expired() {
            match cur {
                Some((lo, hi)) if p.sn == hi.next() => cur = Some((lo, p.sn)),
                Some((lo, hi)) => {
                    if (hi.get() - lo.get() + 1) as usize >= min_len {
                        runs.push((lo, hi));
                    }
                    cur = Some((p.sn, p.sn));
                }
                None => cur = Some((p.sn, p.sn)),
            }
        }
        if let Some((lo, hi)) = cur {
            if (hi.get() - lo.get() + 1) as usize >= min_len {
                runs.push((lo, hi));
            }
        }
        runs
    }

    /// Number of resident entries (active + expired).
    pub fn resident_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of resident deleted-window proofs.
    pub fn resident_windows(&self) -> usize {
        self.windows.len()
    }

    /// Checks the completeness invariant: every SN from 1 to the head is
    /// active, expired-with-proof, inside a window, or below the base.
    ///
    /// # Errors
    ///
    /// Returns the first unaccounted serial number.
    pub fn check_complete(&self) -> Result<(), SerialNumber> {
        let head = match &self.head {
            Some(h) => h.sn_current,
            None => return Ok(()),
        };
        // Everything below the base is accounted for by definition
        // (Lookup::Deleted via the base certificate), so start the walk
        // there. With no base yet, start at the head's lane origin —
        // walking up from SN 1 would take ~2^56 steps on a non-zero lane.
        let mut sn = match &self.base {
            Some(b) => b.sn_base,
            None => SerialNumber(SerialNumber::lane_origin(head.lane()) + 1),
        };
        while sn <= head {
            if matches!(self.lookup(sn), Lookup::Unknown) {
                return Err(sn);
            }
            sn = sn.next();
        }
        Ok(())
    }

    /// Direct mutable access to entries — **adversarial test hook**
    /// modelling Mallory's superuser edit of on-disk structures.
    #[doc(hidden)]
    pub fn entries_mut_for_attack(&mut self) -> &mut BTreeMap<SerialNumber, VrdtEntry> {
        &mut self.entries
    }

    /// Direct mutable access to windows — adversarial test hook.
    #[doc(hidden)]
    pub fn windows_mut_for_attack(&mut self) -> &mut Vec<WindowProof> {
        &mut self.windows
    }

    /// Overwrites the head certificate without journaling — adversarial
    /// test hook (stale-head replay).
    #[doc(hidden)]
    pub fn set_head_for_attack(&mut self, head: HeadCert) {
        self.head = Some(head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::RecordAttributes;
    use crate::policy::Regulation;
    use crate::witness::{Signature, Witness};
    use scpu::Timestamp;
    use std::sync::Arc;
    use wormstore::{DiskJournal, MemDisk, RecordId, Shredder};

    fn sig(b: u8) -> Signature {
        Signature {
            key_id: [b; 8],
            bytes: vec![b; 8],
        }
    }

    fn vrd(sn: u64) -> Vrd {
        Vrd {
            sn: SerialNumber(sn),
            attr: RecordAttributes {
                created_at: Timestamp::from_millis(0),
                retention_until: Timestamp::from_millis(1000),
                regulation: Regulation::Custom,
                shredder: Shredder::ZeroFill,
                litigation_hold: None,
                flags: 0,
            },
            rdl: vec![],
            metasig: Witness::Strong(sig(1)),
            datasig: Witness::Strong(sig(2)),
        }
    }

    fn del(sn: u64) -> DeletionProof {
        DeletionProof {
            sn: SerialNumber(sn),
            deleted_at: Timestamp::from_millis(50),
            sig: sig(3),
        }
    }

    fn head(sn: u64) -> HeadCert {
        HeadCert {
            sn_current: SerialNumber(sn),
            issued_at: Timestamp::from_millis(1),
            sig: sig(4),
        }
    }

    fn window(id: u64, lo: u64, hi: u64) -> WindowProof {
        WindowProof {
            window_id: id,
            lo: SerialNumber(lo),
            hi: SerialNumber(hi),
            lo_sig: sig(5),
            hi_sig: sig(6),
        }
    }

    fn shred_state(offset: u64) -> ShredState {
        ShredState {
            rd: RecordDescriptor {
                id: RecordId(7),
                offset,
                len: 64,
            },
            shredder: Shredder::MultiPass { passes: 2 },
            next_pass: 0,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.insert(vrd(2)).unwrap();
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(matches!(t.lookup(SerialNumber(3)), Lookup::Unknown));
        assert_eq!(t.resident_entries(), 2);
        assert_eq!(t.iter_active().count(), 2);
    }

    #[test]
    fn expire_replaces_entry() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.expire(del(1)).unwrap();
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Expired(_)));
        assert_eq!(t.iter_active().count(), 0);
        assert_eq!(t.iter_expired().count(), 1);
    }

    #[test]
    fn compaction_expels_expired_entries() {
        let mut t = Vrdt::new();
        for i in 1..=6 {
            t.insert(vrd(i)).unwrap();
        }
        for i in 2..=4 {
            t.expire(del(i)).unwrap();
        }
        assert_eq!(t.resident_entries(), 6);
        t.compact(window(99, 2, 4)).unwrap();
        assert_eq!(t.resident_entries(), 3);
        assert_eq!(t.resident_windows(), 1);
        for i in 2..=4 {
            match t.lookup(SerialNumber(i)) {
                Lookup::InWindow(w) => assert_eq!(w.window_id, 99),
                other => panic!("sn {i}: {other:?}"),
            }
        }
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(matches!(t.lookup(SerialNumber(5)), Lookup::Active(_)));
    }

    #[test]
    fn compaction_never_expels_active_entries() {
        let mut t = Vrdt::new();
        for i in 1..=5 {
            t.insert(vrd(i)).unwrap();
        }
        t.expire(del(2)).unwrap();
        t.expire(del(4)).unwrap();
        // Window covering 2..=4 where 3 is still active: 3 survives.
        t.compact(window(7, 2, 4)).unwrap();
        assert!(matches!(t.lookup(SerialNumber(3)), Lookup::Active(_)));
    }

    #[test]
    fn base_expels_below() {
        let mut t = Vrdt::new();
        for i in 1..=5 {
            t.insert(vrd(i)).unwrap();
        }
        for i in 1..=3 {
            t.expire(del(i)).unwrap();
        }
        t.set_base(BaseCert {
            sn_base: SerialNumber(4),
            expires_at: Timestamp::from_millis(10_000),
            sig: sig(7),
        })
        .unwrap();
        assert_eq!(t.resident_entries(), 2);
        assert!(matches!(t.lookup(SerialNumber(2)), Lookup::BelowBase));
        assert!(matches!(t.lookup(SerialNumber(4)), Lookup::Active(_)));
    }

    #[test]
    fn multiple_windows_binary_search() {
        let mut t = Vrdt::new();
        for i in 1..=30 {
            t.insert(vrd(i)).unwrap();
        }
        for i in (5..=10).chain(15..=20) {
            t.expire(del(i)).unwrap();
        }
        t.compact(window(1, 5, 10)).unwrap();
        t.compact(window(2, 15, 20)).unwrap();
        assert!(matches!(t.lookup(SerialNumber(7)), Lookup::InWindow(w) if w.window_id == 1));
        assert!(matches!(t.lookup(SerialNumber(20)), Lookup::InWindow(w) if w.window_id == 2));
        assert!(matches!(t.lookup(SerialNumber(12)), Lookup::Active(_)));
    }

    #[test]
    fn expired_runs_detection() {
        let mut t = Vrdt::new();
        for i in 1..=12 {
            t.insert(vrd(i)).unwrap();
        }
        for i in [2u64, 3, 4, 6, 8, 9, 10, 11] {
            t.expire(del(i)).unwrap();
        }
        let runs = t.expired_runs(3);
        assert_eq!(
            runs,
            vec![
                (SerialNumber(2), SerialNumber(4)),
                (SerialNumber(8), SerialNumber(11))
            ]
        );
        // Higher threshold drops the short run.
        assert_eq!(t.expired_runs(4), vec![(SerialNumber(8), SerialNumber(11))]);
    }

    #[test]
    fn completeness_invariant() {
        let mut t = Vrdt::new();
        for i in 1..=4 {
            t.insert(vrd(i)).unwrap();
        }
        t.set_head(head(4)).unwrap();
        assert!(t.check_complete().is_ok());
        // Remove an entry behind the table's back: invariant broken.
        t.entries_mut_for_attack().remove(&SerialNumber(3));
        assert_eq!(t.check_complete(), Err(SerialNumber(3)));
    }

    #[test]
    fn journal_recovery_roundtrip() {
        let mut t = Vrdt::new();
        for i in 1..=8 {
            t.insert(vrd(i)).unwrap();
        }
        for i in 2..=5 {
            t.expire(del(i)).unwrap();
        }
        t.compact(window(3, 2, 5)).unwrap();
        t.set_head(head(8)).unwrap();
        t.set_base(BaseCert {
            sn_base: SerialNumber(1),
            expires_at: Timestamp::from_millis(500),
            sig: sig(8),
        })
        .unwrap();

        let recovered =
            Vrdt::recover(Journal::from_bytes(t.journal().as_bytes().to_vec())).unwrap();
        assert_eq!(recovered.resident_entries(), t.resident_entries());
        assert_eq!(recovered.resident_windows(), 1);
        assert_eq!(recovered.head().unwrap().sn_current, SerialNumber(8));
        for i in 1..=8 {
            let a = format!("{:?}", t.lookup(SerialNumber(i)));
            let b = format!("{:?}", recovered.lookup(SerialNumber(i)));
            assert_eq!(a, b, "sn {i}");
        }
        assert_eq!(recovered.recovery_stats().rolled_back, 0);
    }

    #[test]
    fn torn_journal_recovers_prefix() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.insert(vrd(2)).unwrap();
        let mut j = Journal::from_bytes(t.journal().as_bytes().to_vec());
        j.truncate_tail(7); // tear the second frame
        let recovered = Vrdt::recover(j).unwrap();
        assert_eq!(recovered.resident_entries(), 1);
        assert!(matches!(
            recovered.lookup(SerialNumber(1)),
            Lookup::Active(_)
        ));
    }

    #[test]
    fn recovery_rejects_garbage_opcode() {
        let mut j = Journal::new();
        j.append(&[200, 1, 2, 3]).unwrap();
        assert!(Vrdt::recover(j).is_err());
    }

    #[test]
    fn staged_txn_applies_only_on_commit() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.stage_expire(&del(1)).unwrap();
        t.stage_shred_begin(&shred_state(128)).unwrap();
        assert!(t.has_open_txn());
        // Nothing applied yet.
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(t.pending_shreds().is_empty());
        // Plain mutations are refused mid-transaction.
        assert!(matches!(t.insert(vrd(2)), Err(WormError::TxnOpen)));
        assert!(matches!(t.set_head(head(1)), Err(WormError::TxnOpen)));
        assert!(matches!(t.note_shred_done(128), Err(WormError::TxnOpen)));
        t.commit_txn().unwrap();
        assert!(!t.has_open_txn());
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Expired(_)));
        assert_eq!(t.pending_shreds().len(), 1);
        assert_eq!(t.pending_shreds()[&128].next_pass, 0);
    }

    #[test]
    fn recovery_rolls_back_uncommitted_staged_suffix() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.insert(vrd(2)).unwrap();
        t.stage_expire(&del(1)).unwrap();
        t.stage_shred_begin(&shred_state(64)).unwrap();
        // Crash before the commit marker: recover from the raw bytes.
        let crashed = Journal::from_bytes(t.journal().as_bytes().to_vec());
        let pre_txn_len = crashed.len_bytes();
        let r = Vrdt::recover(crashed).unwrap();
        assert!(matches!(r.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert!(r.pending_shreds().is_empty());
        let stats = r.recovery_stats();
        assert_eq!(stats.rolled_back, 2);
        assert_eq!(stats.replayed, 2); // the two plain inserts
                                       // The staged suffix was truncated off the journal.
        assert!(r.journal().len_bytes() < pre_txn_len);
        // And the table keeps working post-rollback.
        let mut r = r;
        r.expire(del(2)).unwrap();
        assert!(matches!(r.lookup(SerialNumber(2)), Lookup::Expired(_)));
    }

    #[test]
    fn committed_txn_replays_atomically() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        t.stage_expire(&del(1)).unwrap();
        t.stage_shred_begin(&shred_state(96)).unwrap();
        t.commit_txn().unwrap();
        let r = Vrdt::recover(Journal::from_bytes(t.journal().as_bytes().to_vec())).unwrap();
        assert!(matches!(r.lookup(SerialNumber(1)), Lookup::Expired(_)));
        assert_eq!(r.pending_shreds().len(), 1);
        let stats = r.recovery_stats();
        assert_eq!(stats.rolled_back, 0);
        // 1 insert + 2 staged + 1 commit marker.
        assert_eq!(stats.replayed, 4);
    }

    #[test]
    fn shred_markers_recover_resume_state() {
        let mut t = Vrdt::new();
        t.stage_shred_begin(&shred_state(256)).unwrap();
        t.commit_txn().unwrap();
        t.note_shred_pass(256, 0).unwrap();
        t.note_shred_pass(256, 1).unwrap();
        let r = Vrdt::recover(Journal::from_bytes(t.journal().as_bytes().to_vec())).unwrap();
        assert_eq!(r.pending_shreds()[&256].next_pass, 2);
        // Finish it: done marker clears the pending entry on replay too.
        t.note_shred_done(256).unwrap();
        assert!(t.pending_shreds().is_empty());
        let r = Vrdt::recover(Journal::from_bytes(t.journal().as_bytes().to_vec())).unwrap();
        assert!(r.pending_shreds().is_empty());
    }

    #[test]
    fn abort_txn_truncates_journal() {
        let mut t = Vrdt::new();
        t.insert(vrd(1)).unwrap();
        let before = t.journal().len_bytes();
        t.stage_expire(&del(1)).unwrap();
        t.abort_txn().unwrap();
        assert!(!t.has_open_txn());
        assert_eq!(t.journal().len_bytes(), before);
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Active(_)));
        // Table keeps working after the abort.
        t.expire(del(1)).unwrap();
        assert!(matches!(t.lookup(SerialNumber(1)), Lookup::Expired(_)));
    }

    #[test]
    fn recovery_rejects_commit_count_mismatch() {
        // Hand-craft: one staged frame, commit marker claiming two.
        let mut j = Journal::new();
        let mut frame = vec![OP_STAGE, OP_INSERT];
        frame.extend_from_slice(&codec::encode_vrd(&vrd(1)));
        j.append(&frame).unwrap();
        let mut commit = vec![OP_COMMIT];
        commit.extend_from_slice(&2u32.to_be_bytes());
        j.append(&commit).unwrap();
        assert!(Vrdt::recover(j).is_err());
    }

    #[test]
    fn recovery_rejects_plain_frame_inside_txn() {
        // A plain frame between stage and commit can only be tampering:
        // the runtime refuses plain ops while a transaction is open.
        let mut j = Journal::new();
        let mut frame = vec![OP_STAGE, OP_INSERT];
        frame.extend_from_slice(&codec::encode_vrd(&vrd(1)));
        j.append(&frame).unwrap();
        let mut plain = vec![OP_INSERT];
        plain.extend_from_slice(&codec::encode_vrd(&vrd(2)));
        j.append(&plain).unwrap();
        assert!(Vrdt::recover(j).is_err());
    }

    #[test]
    fn sink_mirrors_appends_durably() {
        let dev = Arc::new(MemDisk::unmetered(16 * 1024));
        let dj = DiskJournal::create(dev.clone(), 0, 8 * 1024).unwrap();
        let mut t = Vrdt::new();
        t.attach_sink(Box::new(dj)).unwrap();
        t.insert(vrd(1)).unwrap();
        t.stage_expire(&del(1)).unwrap();
        t.stage_shred_begin(&shred_state(512)).unwrap();
        t.commit_txn().unwrap();
        // Reopen from the device alone.
        let (_, j, scan) = DiskJournal::open(dev, 0, 8 * 1024).unwrap();
        assert!(!scan.torn_tail);
        let r = Vrdt::recover(j).unwrap();
        assert!(matches!(r.lookup(SerialNumber(1)), Lookup::Expired(_)));
        assert_eq!(r.pending_shreds().len(), 1);
    }

    #[test]
    fn abort_txn_erases_sink_tail() {
        let dev = Arc::new(MemDisk::unmetered(16 * 1024));
        let dj = DiskJournal::create(dev.clone(), 0, 8 * 1024).unwrap();
        let mut t = Vrdt::new();
        t.attach_sink(Box::new(dj)).unwrap();
        t.insert(vrd(1)).unwrap();
        t.stage_expire(&del(1)).unwrap();
        t.abort_txn().unwrap();
        let (_, j, scan) = DiskJournal::open(dev, 0, 8 * 1024).unwrap();
        assert!(
            !scan.torn_tail,
            "aborted frames must be erased, not just dropped"
        );
        let r = Vrdt::recover(j).unwrap();
        assert!(matches!(r.lookup(SerialNumber(1)), Lookup::Active(_)));
        assert_eq!(r.recovery_stats().rolled_back, 0);
    }
}
