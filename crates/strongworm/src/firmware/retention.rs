//! The Retention Monitor (RM) and its VEXP expiration list (§4.2.2).
//!
//! "To amortize linear scans of the VRDT while ensuring timely deletion of
//! records, the SCPU maintains a sorted (on expiration times) list of
//! serial numbers (VEXP), subject to secure storage space. [...] the RM is
//! designed to wake up according to the next expiring entry in VEXP and
//! invokes a delete operation on this entry."
//!
//! Deletions cross the boundary as [`OutboxItem::Deleted`] orders: the
//! proof `S_d(SN)` plus the shredding discipline the host must apply to
//! the medium. Litigation holds defer deletion until the hold lapses.

use std::collections::BTreeMap;

use scpu::{Env, SecureMemory, SecureMemoryExhausted, Timestamp};
use wormcrypt::{ct_eq, Hmac, Sha256};
use wormstore::Shredder;

use super::signer::shredder_code;
use super::{reject, FirmwareError, OutboxItem, WormFirmware, WormResponse};
use crate::proofs::DeletionProof;
use crate::sn::SerialNumber;
use crate::witness::deletion_payload;

/// Secure-memory charge per VEXP entry.
pub const VEXP_ENTRY_BYTES: usize = 32;

/// The sorted expiration list held in secure memory.
#[derive(Debug, Default)]
pub(crate) struct VexpTable {
    /// `(expiry, sn) → shredder`, sorted by expiry.
    entries: BTreeMap<(Timestamp, SerialNumber), Shredder>,
    /// Reverse index for rescheduling.
    index: BTreeMap<SerialNumber, Timestamp>,
}

impl VexpTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts an entry, charging secure memory.
    pub(crate) fn insert(
        &mut self,
        mem: &mut SecureMemory,
        sn: SerialNumber,
        expires_at: Timestamp,
        shredder: Shredder,
    ) -> Result<(), SecureMemoryExhausted> {
        if self.index.contains_key(&sn) {
            // Already scheduled; keep the earlier reservation.
            return Ok(());
        }
        mem.reserve(VEXP_ENTRY_BYTES)?;
        self.entries.insert((expires_at, sn), shredder);
        self.index.insert(sn, expires_at);
        Ok(())
    }

    /// Earliest wake-up time, if any entries exist.
    pub(crate) fn next_wakeup(&self) -> Option<Timestamp> {
        self.entries.keys().next().map(|&(t, _)| t)
    }

    /// Pops the first entry due at or before `now`, releasing its memory.
    pub(crate) fn pop_due(
        &mut self,
        mem: &mut SecureMemory,
        now: Timestamp,
    ) -> Option<(SerialNumber, Timestamp, Shredder)> {
        let (&(t, _), _) = self.entries.iter().next()?;
        if t > now {
            return None;
        }
        let ((t, sn), shredder) = self.entries.pop_first()?;
        self.index.remove(&sn);
        mem.release(VEXP_ENTRY_BYTES);
        Some((sn, t, shredder))
    }

    /// Moves an entry to a new wake time, keeping its memory reservation.
    pub(crate) fn defer(&mut self, sn: SerialNumber, new_time: Timestamp) {
        if let Some(old) = self.index.get(&sn).copied() {
            if let Some(shredder) = self.entries.remove(&(old, sn)) {
                self.entries.insert((new_time, sn), shredder);
                self.index.insert(sn, new_time);
            }
        }
    }

    /// Re-inserts a popped entry at a later time *without* re-charging
    /// memory would be wrong — use this immediately after `pop_due` by
    /// re-reserving through `insert`; kept private to the RM.
    pub(crate) fn contains(&self, sn: SerialNumber) -> bool {
        self.index.contains_key(&sn)
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

impl WormFirmware {
    /// Runs the Retention Monitor over all due VEXP entries.
    pub(crate) fn run_retention_monitor(&mut self, env: &mut Env) {
        let now = env.now();
        loop {
            let due = self.vexp.pop_due(env.memory(), now);
            let (sn, _expiry, shredder) = match due {
                Some(d) => d,
                None => break,
            };
            // Litigation hold: defer to the hold's lapse time.
            if let Some(&hold_until) = self.holds.get(&sn) {
                if hold_until > now {
                    // Re-schedule at the lapse time. This reserves exactly
                    // the bytes `pop_due` released above with nothing in
                    // between, so it cannot fail — and a deletion schedule
                    // must never be dropped silently, so assert it.
                    let r = self.vexp.insert(env.memory(), sn, hold_until, shredder);
                    #[allow(clippy::expect_used)]
                    // wormlint: allow(panic) -- re-reserves exactly the bytes pop_due just released, so failure is impossible; silently dropping a deletion schedule would violate the retention contract
                    r.expect("re-reserving bytes released by pop_due");
                    continue;
                }
                self.holds.remove(&sn);
            }
            self.delete_record(env, sn, shredder);
        }
    }

    /// Deletes one record: signs `S_d(SN)`, orders the host to shred, and
    /// advances the base window if possible (§4.2.2 *Delete*).
    pub(crate) fn delete_record(&mut self, env: &mut Env, sn: SerialNumber, shredder: Shredder) {
        let now = env.now();
        let payload = deletion_payload(sn, now);
        let sig = self.sign_deletion(env, payload.as_slice());
        self.outbox.push(OutboxItem::Deleted {
            proof: DeletionProof {
                sn,
                deleted_at: now,
                sig,
            },
            shredder,
        });
        self.drop_pending_for(env, sn);
        if self.mark_expired(sn) {
            if let Ok(base) = self.refresh_base(env) {
                self.outbox.push(OutboxItem::NewBase(base));
            }
        }
    }

    /// `SyncVexpFromAttr`: re-schedules a record's expiration from its own
    /// SCPU-signed attributes — the host-crash recovery path. The firmware
    /// verifies `metasig` with its own keys, so the host cannot shorten
    /// the retention or change the shredding discipline; litigation holds
    /// embedded in the attributes are re-armed as well.
    ///
    /// If the monitor has already expired the record (the host crashed
    /// after the proof was signed but before its deletion transaction
    /// committed, then rolled back), the deletion is re-driven through
    /// the outbox so host and monitor converge instead of wedging.
    pub(crate) fn sync_vexp_from_attr(
        &mut self,
        env: &mut Env,
        sn: SerialNumber,
        attr: crate::attr::RecordAttributes,
        metasig: crate::witness::Witness,
    ) -> Result<WormResponse, FirmwareError> {
        let already_deleted = {
            let s = self.booted()?;
            if sn == SerialNumber(0) || sn > s.sn_current {
                return reject(format!("{sn} was never issued"));
            }
            sn < s.sn_base
                || s.expired.contains(&sn)
                || s.windows.iter().any(|&(lo, hi)| lo <= sn && sn <= hi)
        };
        let payload = crate::witness::meta_payload(sn, &attr.encode());
        if !self.verify_own_witness(env.now(), &payload, &metasig) {
            return reject("presented attributes fail metasig verification");
        }
        if already_deleted {
            // The monitor already committed this deletion — the proof was
            // signed and the VEXP entry consumed — yet the host presents
            // the record as live: it crashed before the deletion became
            // durable and rolled its journal back. Refusing here would
            // wedge the record forever (the host cannot delete without a
            // proof, and the monitor never fires twice). Roll the host
            // FORWARD instead: re-sign the deletion proof and re-order
            // the shred through the outbox. The statement is true — the
            // record is deleted — so re-issuing it forges nothing.
            self.delete_record(env, sn, attr.shredder);
            return Ok(WormResponse::Synced);
        }
        if let Some(hold) = &attr.litigation_hold {
            if hold.hold_until > env.now() {
                self.holds.insert(sn, hold.hold_until);
            }
        }
        if self.vexp.contains(sn) {
            return Ok(WormResponse::Synced);
        }
        match self
            .vexp
            .insert(env.memory(), sn, attr.retention_until, attr.shredder)
        {
            Ok(()) => Ok(WormResponse::Synced),
            Err(e) => reject(format!("secure memory exhausted: {e}")),
        }
    }

    /// `SyncVexp`: re-admits a spilled expiration entry. The sealing token
    /// (HMAC under the firmware-internal key) stops the host from altering
    /// the expiry or the shredding discipline.
    pub(crate) fn sync_vexp(
        &mut self,
        env: &mut Env,
        sn: SerialNumber,
        expires_at: Timestamp,
        shredder: Shredder,
        seal: Vec<u8>,
    ) -> Result<WormResponse, FirmwareError> {
        let s = self.booted()?;
        let mut payload = crate::witness::sealed_expiry_payload(sn, expires_at);
        payload.push(shredder_code(shredder));
        let expect = Hmac::<Sha256>::mac(&s.seal_key, &payload);
        if !ct_eq(&expect, &seal) {
            return reject("invalid vexp seal");
        }
        if self.vexp.contains(sn) {
            return Ok(WormResponse::Synced);
        }
        match self.vexp.insert(env.memory(), sn, expires_at, shredder) {
            Ok(()) => Ok(WormResponse::Synced),
            Err(e) => reject(format!("secure memory still exhausted: {e}")),
        }
    }
}
