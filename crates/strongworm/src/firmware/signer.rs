//! Witnessing: the write path and the deferred-strength machinery (§4.3).
//!
//! During bursts the firmware issues cheap short-lived signatures (512-bit
//! RSA) or HMACs and queues the signed payloads; during idle periods it
//! re-signs them with the permanent key `s` and pushes the strengthened
//! witnesses to the host through the outbox — "within their security
//! lifetime".

use scpu::{Env, Op, Timestamp};
use wormcrypt::{ct_eq, Hmac, Sha256};

use crate::attr::RecordAttributes;
use crate::config::WitnessMode;
use crate::policy::RetentionPolicy;
use crate::sn::SerialNumber;
use crate::witness::{data_payload, meta_payload, weak_wrap, Signature, Witness};

use super::{
    reject, FirmwareError, OutboxItem, WitnessField, WormFirmware, WormResponse, WriteData,
    WriteReceipt,
};

/// Secure-memory estimate per pending-strengthen entry (payload + keys).
const PENDING_OVERHEAD_BYTES: usize = 48;

/// A deferred witness awaiting idle-time strengthening.
#[derive(Clone, Debug)]
pub(crate) struct PendingStrengthen {
    /// The exact payload the strong signature must cover.
    pub payload: Vec<u8>,
    /// Secure memory reserved for this entry.
    pub reserved: usize,
}

impl WitnessField {
    fn code(self) -> u8 {
        match self {
            WitnessField::Meta => 0,
            WitnessField::Data => 1,
        }
    }
}

impl WormFirmware {
    /// `Write` (§4.2.2): issues the next serial number, stamps trusted
    /// attributes, and witnesses `(SN, attr)` and `(SN, Hash(data))` at
    /// the requested strength tier.
    pub(crate) fn write(
        &mut self,
        env: &mut Env,
        policy: RetentionPolicy,
        flags: u32,
        data: WriteData,
        witness: WitnessMode,
    ) -> Result<WormResponse, FirmwareError> {
        self.booted()?;
        if witness == WitnessMode::Deferred {
            self.maybe_rotate_weak_key(env);
        }
        let now = env.now();

        // Compute (or accept) the incremental data hash (Table 1: chained
        // or multiset, per deployment configuration).
        let scheme = self.cfg.data_hash;
        let expected_len = crate::vrd::data_hash_len(scheme);
        let (chain_hash, audit_pending) = match &data {
            WriteData::Full(records) => {
                let total: usize = records.iter().map(|r| r.len()).sum();
                env.charge(Op::DmaIn { bytes: total });
                env.charge(Op::Sha256 { bytes: total });
                let digest = crate::vrd::data_hash(scheme, records.iter().map(|r| r.as_slice()));
                (digest, false)
            }
            WriteData::HostHash { chain_hash, .. } => {
                if chain_hash.len() != expected_len {
                    return reject(format!(
                        "host-provided data hash must be {expected_len} bytes for {scheme:?}"
                    ));
                }
                env.charge(Op::DmaIn {
                    bytes: expected_len,
                });
                (chain_hash.clone(), true)
            }
        };

        let attr = {
            let s = self.booted_mut()?;
            s.sn_current = s.sn_current.next();
            RecordAttributes {
                created_at: now,
                retention_until: now.after(policy.retention),
                regulation: policy.regulation,
                shredder: policy.shredder,
                litigation_hold: None,
                flags,
            }
        };
        let sn = self.booted()?.sn_current;
        let meta = meta_payload(sn, &attr.encode());
        let datap = data_payload(sn, &chain_hash);

        let metasig = self.issue_witness(env, sn, WitnessField::Meta, &meta, witness)?;
        let datasig = self.issue_witness(env, sn, WitnessField::Data, &datap, witness)?;

        if audit_pending {
            if let WriteData::HostHash { chain_hash, .. } = data {
                self.pending_audits.insert(sn, chain_hash);
            }
        }

        // Schedule expiration; on secure-memory exhaustion, seal the entry
        // out to the host instead (§4.2.2: VEXP "subject to secure storage
        // space").
        let shred_code = shredder_code(policy.shredder);
        let vexp_seal =
            match self
                .vexp
                .insert(env.memory(), sn, attr.retention_until, policy.shredder)
            {
                Ok(()) => None,
                Err(_) => {
                    self.spilled += 1;
                    Some(self.seal_expiry(sn, attr.retention_until, shred_code))
                }
            };

        Ok(WormResponse::Written(WriteReceipt {
            sn,
            attr,
            metasig,
            datasig,
            vexp_seal,
        }))
    }

    /// Issues one witness at the requested tier, registering deferred
    /// tiers for idle-time strengthening.
    fn issue_witness(
        &mut self,
        env: &mut Env,
        sn: SerialNumber,
        field: WitnessField,
        payload: &[u8],
        mode: WitnessMode,
    ) -> Result<Witness, FirmwareError> {
        match mode {
            WitnessMode::Strong => Ok(self.sign_strong(env, payload)),
            WitnessMode::Deferred => {
                let now = env.now();
                let (sig, expires_at) = {
                    let weak_bits = self.cfg.weak_bits;
                    let lifetime = self.cfg.weak_lifetime;
                    env.charge(Op::RsaSign { bits: weak_bits });
                    let s = self.booted()?;
                    let expires_at = now.after(lifetime).min(s.weak_cert.max_sig_expiry);
                    let wrapped = weak_wrap(payload, expires_at);
                    (Signature::sign(&s.weak_key, &wrapped), expires_at)
                };
                self.register_pending(env, sn, field, payload);
                Ok(Witness::Weak { sig, expires_at })
            }
            WitnessMode::Hmac => {
                env.charge(Op::Hmac {
                    bytes: payload.len(),
                });
                let tag = {
                    let s = self.booted()?;
                    Hmac::<Sha256>::mac(&s.hmac_key, payload)
                };
                self.register_pending(env, sn, field, payload);
                Ok(Witness::Mac { tag })
            }
        }
    }

    /// Signs `payload` with the permanent key `s`.
    pub(crate) fn sign_strong(&mut self, env: &mut Env, payload: &[u8]) -> Witness {
        env.charge(Op::RsaSign {
            bits: self.cfg.strong_bits,
        });
        let s = self.booted_invariant();
        Witness::Strong(Signature::sign(&s.sign_key, payload))
    }

    /// Signs a deletion payload with the deletion key `d`.
    pub(crate) fn sign_deletion(&mut self, env: &mut Env, payload: &[u8]) -> Signature {
        env.charge(Op::RsaSign {
            bits: self.cfg.strong_bits,
        });
        let s = self.booted_invariant();
        Signature::sign(&s.del_key, payload)
    }

    /// Queues a deferred witness for strengthening. If secure memory is
    /// exhausted the firmware degrades gracefully by strengthening
    /// *immediately* (correct but slow — exactly the trade-off the paper's
    /// memory constraint forces).
    fn register_pending(
        &mut self,
        env: &mut Env,
        sn: SerialNumber,
        field: WitnessField,
        payload: &[u8],
    ) {
        let reserved = payload.len() + PENDING_OVERHEAD_BYTES;
        if env.memory().reserve(reserved).is_ok() {
            self.pending.insert(
                (sn, field.code()),
                PendingStrengthen {
                    payload: payload.to_vec(),
                    reserved,
                },
            );
        } else {
            let witness = self.sign_strong(env, payload);
            self.outbox
                .push(OutboxItem::Strengthened { sn, field, witness });
        }
    }

    /// Removes any deferred entries for `sn` (record deleted before
    /// strengthening — no point signing a dead record).
    pub(crate) fn drop_pending_for(&mut self, env: &mut Env, sn: SerialNumber) {
        for code in [0u8, 1u8] {
            if let Some(p) = self.pending.remove(&(sn, code)) {
                env.memory().release(p.reserved);
            }
        }
        self.pending_audits.remove(&sn);
    }

    /// Idle-time strengthening: re-signs queued payloads with `s` until
    /// the virtual-time budget runs out (§4.3).
    pub(crate) fn strengthen_pending(&mut self, env: &mut Env, budget_ns: u64) {
        let per_sig = env.peek_cost(Op::RsaSign {
            bits: self.cfg.strong_bits,
        });
        let mut spent = 0u64;
        while spent + per_sig <= budget_ns || (per_sig == 0 && !self.pending.is_empty()) {
            let Some((key, entry)) = self.pending.pop_first() else {
                break;
            };
            env.memory().release(entry.reserved);
            let witness = self.sign_strong(env, &entry.payload);
            spent += per_sig;
            let (sn, code) = key;
            let field = if code == 0 {
                WitnessField::Meta
            } else {
                WitnessField::Data
            };
            self.outbox
                .push(OutboxItem::Strengthened { sn, field, witness });
            if per_sig == 0 && self.pending.is_empty() {
                break;
            }
        }
    }

    /// Verifies a witness the host presents back to the firmware (e.g.,
    /// the current `metasig` in a litigation request). Uses the device's
    /// own public keys, the weak-key history, and the HMAC key.
    pub(crate) fn verify_own_witness(
        &self,
        now: Timestamp,
        payload: &[u8],
        witness: &Witness,
    ) -> bool {
        let s = match self.state.as_ref() {
            Some(s) => s,
            None => return false,
        };
        match witness {
            Witness::Strong(sig) => sig.verify(s.sign_key.public(), payload),
            Witness::Weak { sig, expires_at } => {
                if *expires_at < now {
                    return false;
                }
                let wrapped = weak_wrap(payload, *expires_at);
                if sig.verify(s.weak_key.public(), &wrapped) {
                    return true;
                }
                s.weak_history.iter().any(|k| sig.verify(k, &wrapped))
            }
            Witness::Mac { tag } => ct_eq(&Hmac::<Sha256>::mac(&s.hmac_key, payload), tag),
        }
    }

    /// `AuditData`: verifies a trust-host-hash write's claimed chain hash
    /// against the full data (§4.2.2: "verified later during idle times").
    pub(crate) fn audit_data(
        &mut self,
        env: &mut Env,
        sn: SerialNumber,
        data: Vec<Vec<u8>>,
    ) -> Result<WormResponse, FirmwareError> {
        self.booted()?;
        let claimed = match self.pending_audits.remove(&sn) {
            Some(h) => h,
            None => return reject(format!("{sn} has no pending audit")),
        };
        let total: usize = data.iter().map(|r| r.len()).sum();
        env.charge(Op::DmaIn { bytes: total });
        env.charge(Op::Sha256 { bytes: total });
        let digest = crate::vrd::data_hash(self.cfg.data_hash, data.iter().map(|r| r.as_slice()));
        let ok = ct_eq(&digest, &claimed);
        if !ok {
            self.outbox.push(OutboxItem::AuditFailure { sn });
        }
        Ok(WormResponse::Audited(ok))
    }
}

/// Stable shredder code used inside sealed expiry tokens.
pub(crate) fn shredder_code(s: wormstore::Shredder) -> u8 {
    match s {
        wormstore::Shredder::ZeroFill => 0,
        wormstore::Shredder::MultiPass { passes } => 0x10 | passes,
        wormstore::Shredder::RandomPass => 1,
    }
}
