//! Litigation holds and releases (§4.2.2, *Litigation*).
//!
//! "A court can then mandate a litigation hold to be placed on such active
//! records, which in effect will prevent their deletion even if mandated
//! retention periods have expired." Holds are authorized by regulator
//! credentials `S_reg(SN, current_time)`; the firmware verifies the
//! presented attributes against their `metasig` (so the host cannot feed
//! it fabricated state), verifies the credential, updates `attr`, and
//! re-signs `metasig`.

use scpu::Env;

use crate::attr::{LitigationHold, RecordAttributes};
use crate::authority::{HoldCredential, ReleaseCredential};
use crate::sn::SerialNumber;
use crate::witness::{meta_payload, Witness};

use super::{reject, FirmwareError, WormFirmware, WormResponse};

impl WormFirmware {
    /// Confirms `sn` names a record that has been issued and not deleted.
    fn check_active(&self, sn: SerialNumber) -> Result<(), FirmwareError> {
        let s = self.booted()?;
        if sn == SerialNumber::ZERO || sn > s.sn_current {
            return reject(format!("{sn} was never issued"));
        }
        if sn < s.sn_base
            || s.expired.contains(&sn)
            || s.windows.iter().any(|&(lo, hi)| lo <= sn && sn <= hi)
        {
            return reject(format!("{sn} has been deleted"));
        }
        Ok(())
    }

    /// Verifies the host-presented `(attr, metasig)` pair for `sn`.
    fn check_attr_authentic(
        &self,
        env: &Env,
        sn: SerialNumber,
        attr: &RecordAttributes,
        metasig: &Witness,
    ) -> Result<(), FirmwareError> {
        let payload = meta_payload(sn, &attr.encode());
        if !self.verify_own_witness(env.now(), &payload, metasig) {
            return reject("presented attributes fail metasig verification");
        }
        Ok(())
    }

    /// `LitHold`.
    pub(crate) fn lit_hold(
        &mut self,
        env: &mut Env,
        mut attr: RecordAttributes,
        metasig: Witness,
        credential: HoldCredential,
    ) -> Result<WormResponse, FirmwareError> {
        let sn = credential.sn;
        self.check_active(sn)?;
        self.check_attr_authentic(env, sn, &attr, &metasig)?;
        {
            let s = self.booted()?;
            if !credential.verify(&s.regulator) {
                return reject("litigation hold credential is not from the regulator");
            }
        }
        let now = env.now();
        if credential.hold_until <= now {
            return reject("hold timeout already in the past");
        }
        if let Some(existing) = &attr.litigation_hold {
            if existing.hold_until > now {
                return reject(format!(
                    "record already held by litigation {}",
                    existing.litigation_id
                ));
            }
        }
        attr.litigation_hold = Some(LitigationHold {
            litigation_id: credential.litigation_id,
            hold_until: credential.hold_until,
            credential: credential.sig.bytes.clone(),
        });
        let payload = meta_payload(sn, &attr.encode());
        let metasig = self.sign_strong(env, &payload);
        self.holds.insert(sn, credential.hold_until);
        Ok(WormResponse::AttrUpdated { attr, metasig })
    }

    /// `LitRelease`.
    pub(crate) fn lit_release(
        &mut self,
        env: &mut Env,
        mut attr: RecordAttributes,
        metasig: Witness,
        credential: ReleaseCredential,
    ) -> Result<WormResponse, FirmwareError> {
        let sn = credential.sn;
        self.check_active(sn)?;
        self.check_attr_authentic(env, sn, &attr, &metasig)?;
        {
            let s = self.booted()?;
            if !credential.verify(&s.regulator) {
                return reject("release credential is not from the regulator");
            }
        }
        let held = match &attr.litigation_hold {
            Some(h) => h.clone(),
            None => return reject("record is not under a litigation hold"),
        };
        if held.litigation_id != credential.litigation_id {
            return reject(format!(
                "release is for litigation {} but the hold belongs to {}",
                credential.litigation_id, held.litigation_id
            ));
        }
        attr.litigation_hold = None;
        let payload = meta_payload(sn, &attr.encode());
        let metasig = self.sign_strong(env, &payload);
        self.holds.remove(&sn);
        // If the retention period already elapsed while held, let the RM
        // delete at its next wake-up rather than at the stale hold time.
        let now = env.now();
        if self.vexp.contains(sn) {
            let due = attr.retention_until.max(now);
            self.vexp.defer(sn, due);
        }
        Ok(WormResponse::AttrUpdated { attr, metasig })
    }
}
