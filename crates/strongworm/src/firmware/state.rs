//! Key material, serial-number issuing, and window/base tracking.
//!
//! "The SCPU securely maintains two private signature keys, s and d
//! respectively, that can be verified by WORM data clients" (§4.2.1).
//! This module owns those keys plus the deferred-strength weak key, the
//! serial counter, and the in-enclosure view of which serial numbers have
//! expired — the ground truth behind base certificates and deleted-window
//! signatures.

use std::collections::BTreeSet;

use scpu::{Env, Op, Timestamp};
use wormcrypt::{Hmac, RsaPrivateKey, RsaPublicKey, Sha256};

use crate::proofs::{BaseCert, CompositeBinding, HeadCert, WindowProof};
use crate::sn::SerialNumber;
use crate::witness::{
    base_payload, composite_payload, head_payload, weak_cert_payload, window_payload, Signature,
    WindowSide,
};

use super::{
    reject, DeviceKeys, FirmwareError, OutboxItem, WeakKeyCert, WormFirmware, WormResponse,
};

/// How many retired weak public keys the firmware remembers so it can
/// still verify not-yet-strengthened witnesses presented back to it.
const WEAK_KEY_HISTORY: usize = 8;

/// State that exists only after `Init`.
#[derive(Debug)]
pub(crate) struct BootedState {
    /// Permanent witnessing key `s`.
    pub sign_key: RsaPrivateKey,
    /// Deletion-proof key `d`.
    pub del_key: RsaPrivateKey,
    /// Current short-lived burst key.
    pub weak_key: RsaPrivateKey,
    /// Certificate (by `s`) for the current weak key.
    pub weak_cert: WeakKeyCert,
    /// When the weak key must rotate so signatures can keep claiming a
    /// full lifetime.
    pub weak_rotate_after: Timestamp,
    /// Retired weak public keys (newest last).
    pub weak_history: Vec<RsaPublicKey>,
    /// HMAC witnessing key (never leaves the device).
    pub hmac_key: [u8; 32],
    /// Key sealing spilled VEXP entries to the host.
    pub seal_key: [u8; 32],
    /// Regulator public key for litigation credentials.
    pub regulator: RsaPublicKey,
    /// Highest issued serial number.
    pub sn_current: SerialNumber,
    /// Lowest possibly-active serial number; everything below has been
    /// rightfully deleted.
    pub sn_base: SerialNumber,
    /// Expired SNs at or above the base, not yet compacted into windows.
    pub expired: BTreeSet<SerialNumber>,
    /// Compacted deleted windows (disjoint, sorted).
    pub windows: Vec<(SerialNumber, SerialNumber)>,
    /// Last head-certificate issue time (heartbeat scheduling).
    pub last_head_issue: Timestamp,
}

impl WormFirmware {
    pub(crate) fn booted(&self) -> Result<&BootedState, FirmwareError> {
        self.state
            .as_ref()
            .ok_or_else(|| FirmwareError("device not initialized".into()))
    }

    pub(crate) fn booted_mut(&mut self) -> Result<&mut BootedState, FirmwareError> {
        self.state
            .as_mut()
            .ok_or_else(|| FirmwareError("device not initialized".into()))
    }

    /// The booted state on internal paths that cannot be reached before
    /// `Init`: every command handler gates on [`WormFirmware::booted`]
    /// first, and the alarm/idle hooks return early while `state` is
    /// `None`. A `None` here is firmware memory corruption, and the
    /// enclosure halts rather than fabricate evidence.
    #[allow(clippy::expect_used)]
    pub(crate) fn booted_invariant(&self) -> &BootedState {
        // wormlint: allow(panic) -- reachable only behind a `booted()?` gate or an explicit `state.is_none()` early return (see doc); a `None` here must halt the enclosure
        self.state.as_ref().expect("booted invariant")
    }

    /// `Init`: generates all key material inside the enclosure.
    pub(crate) fn init(
        &mut self,
        env: &mut Env,
        regulator: RsaPublicKey,
    ) -> Result<WormResponse, FirmwareError> {
        if self.state.is_some() {
            return reject("device already initialized");
        }
        let now = env.now();
        let strong_bits = self.cfg.strong_bits;
        let weak_bits = self.cfg.weak_bits;
        let sign_key = RsaPrivateKey::generate(env.rng(), strong_bits);
        let del_key = RsaPrivateKey::generate(env.rng(), strong_bits);
        let weak_key = RsaPrivateKey::generate(env.rng(), weak_bits);
        let mut hmac_key = [0u8; 32];
        env.rng().fill(&mut hmac_key);
        let mut seal_key = [0u8; 32];
        env.rng().fill(&mut seal_key);

        let max_sig_expiry = now.after(2 * self.cfg.weak_lifetime);
        let weak_cert = Self::make_weak_cert(env, &sign_key, weak_key.public(), max_sig_expiry);

        self.state = Some(BootedState {
            sign_key,
            del_key,
            weak_key,
            weak_cert,
            weak_rotate_after: now.after(self.cfg.weak_lifetime),
            weak_history: Vec::new(),
            hmac_key,
            seal_key,
            regulator,
            // Boot the counter at the configured origin: 0 for a lone
            // SCPU, or the shard's lane origin `i·2^56` in a sharded
            // deployment — within a lane numbering stays dense, so the
            // base-advance and window-adjacency invariants hold verbatim.
            sn_current: SerialNumber(self.cfg.sn_origin),
            sn_base: SerialNumber(self.cfg.sn_origin + 1),
            expired: BTreeSet::new(),
            windows: Vec::new(),
            last_head_issue: now,
        });
        Ok(WormResponse::Ready)
    }

    fn make_weak_cert(
        env: &mut Env,
        sign_key: &RsaPrivateKey,
        weak_pub: &RsaPublicKey,
        max_sig_expiry: Timestamp,
    ) -> WeakKeyCert {
        env.charge(Op::RsaSign {
            bits: sign_key.public().modulus_bits(),
        });
        let payload = weak_cert_payload(weak_pub, max_sig_expiry);
        WeakKeyCert {
            key: weak_pub.clone(),
            max_sig_expiry,
            sig: Signature::sign(sign_key, &payload),
        }
    }

    /// Rotates the weak key if its certificate can no longer cover a full
    /// signature lifetime. Publishes the new certificate via the outbox.
    pub(crate) fn maybe_rotate_weak_key(&mut self, env: &mut Env) {
        let now = env.now();
        let cfg_lifetime = self.cfg.weak_lifetime;
        let weak_bits = self.cfg.weak_bits;
        let state = match self.state.as_mut() {
            Some(s) => s,
            None => return,
        };
        if now < state.weak_rotate_after {
            return;
        }
        let new_key = RsaPrivateKey::generate(env.rng(), weak_bits);
        let max_sig_expiry = now.after(2 * cfg_lifetime);
        let cert = Self::make_weak_cert(env, &state.sign_key, new_key.public(), max_sig_expiry);
        let old = std::mem::replace(&mut state.weak_key, new_key);
        state.weak_history.push(old.public().clone());
        if state.weak_history.len() > WEAK_KEY_HISTORY {
            state.weak_history.remove(0);
        }
        state.weak_cert = cert.clone();
        state.weak_rotate_after = now.after(cfg_lifetime);
        self.outbox.push(OutboxItem::NewWeakKey(cert));
    }

    /// `GetKeys`.
    pub(crate) fn get_keys(&self) -> Result<WormResponse, FirmwareError> {
        let s = self.booted()?;
        Ok(WormResponse::Keys(DeviceKeys {
            data_hash: self.cfg.data_hash,
            sign: s.sign_key.public().clone(),
            delete: s.del_key.public().clone(),
            weak_cert: s.weak_cert.clone(),
        }))
    }

    /// Issues a fresh timestamped head certificate.
    pub(crate) fn refresh_head(&mut self, env: &mut Env) -> Result<HeadCert, FirmwareError> {
        let now = env.now();
        let bits = self.cfg.strong_bits;
        env.charge(Op::RsaSign { bits });
        let s = self.booted_mut()?;
        let payload = head_payload(s.sn_current, now);
        let cert = HeadCert {
            sn_current: s.sn_current,
            issued_at: now,
            sig: Signature::sign(&s.sign_key, &payload),
        };
        s.last_head_issue = now;
        Ok(cert)
    }

    /// `SignComposite`: signs a composite-freshness binding over a shard
    /// count and per-shard head root. The SCPU stamps the trusted issue
    /// time; the host supplies the root, so the statement signed is only
    /// "these shard heads were presented together at time t" — each
    /// constituent head is still independently signed by its own shard.
    pub(crate) fn sign_composite(
        &mut self,
        env: &mut Env,
        shard_count: u32,
        root: Vec<u8>,
    ) -> Result<CompositeBinding, FirmwareError> {
        self.booted()?;
        if shard_count == 0 {
            return reject("composite binding over zero shards");
        }
        if root.len() != 32 {
            return reject("composite root must be a SHA-256 digest");
        }
        let now = env.now();
        let bits = self.cfg.strong_bits;
        env.charge(Op::RsaSign { bits });
        let s = self.booted()?;
        let payload = composite_payload(shard_count, &root, now);
        Ok(CompositeBinding {
            shard_count,
            root,
            issued_at: now,
            sig: Signature::sign(&s.sign_key, &payload),
        })
    }

    /// Signs an audit-chain anchor over `(seq, chain_hash)` with the
    /// permanent key `s`, stamping the trusted issue time itself. The
    /// payload is domain-separated (`wormaudit.anchor.v1`), so the
    /// signature can never be replayed as any other SCPU statement.
    pub(crate) fn sign_audit_anchor(
        &mut self,
        env: &mut Env,
        seq: u64,
        chain_hash: Vec<u8>,
    ) -> Result<wormaudit::AuditAnchor, FirmwareError> {
        self.booted()?;
        if chain_hash.len() != 32 {
            return reject("audit chain hash must be a SHA-256 digest");
        }
        let now = env.now();
        let bits = self.cfg.strong_bits;
        env.charge(Op::RsaSign { bits });
        let s = self.booted()?;
        let issued_at_ms = now.as_millis();
        let payload = wormaudit::anchor_payload(seq, &chain_hash, issued_at_ms);
        let sig = Signature::sign(&s.sign_key, &payload);
        let chain_hash: [u8; 32] = chain_hash.as_slice().try_into().map_err(|_| {
            // Length was checked above; this arm is unreachable but kept
            // typed rather than panicking inside the enclosure.
            FirmwareError("audit chain hash must be a SHA-256 digest".into())
        })?;
        Ok(wormaudit::AuditAnchor {
            seq,
            chain_hash,
            issued_at_ms,
            key_id: sig.key_id,
            sig: sig.bytes,
        })
    }

    /// Issues a fresh base certificate.
    pub(crate) fn refresh_base(&mut self, env: &mut Env) -> Result<BaseCert, FirmwareError> {
        let now = env.now();
        let bits = self.cfg.strong_bits;
        let lifetime = self.cfg.base_cert_lifetime;
        env.charge(Op::RsaSign { bits });
        let s = self.booted()?;
        let expires_at = now.after(lifetime);
        let payload = base_payload(s.sn_base, expires_at);
        Ok(BaseCert {
            sn_base: s.sn_base,
            expires_at,
            sig: Signature::sign(&s.sign_key, &payload),
        })
    }

    /// Records that `sn` was deleted and advances the base past any
    /// contiguous deleted prefix. Returns `true` if the base moved.
    pub(crate) fn mark_expired(&mut self, sn: SerialNumber) -> bool {
        // Unbooted firmware has no base to advance.
        let Some(s) = self.state.as_mut() else {
            return false;
        };
        if sn >= s.sn_base {
            s.expired.insert(sn);
        }
        let mut moved = false;
        loop {
            if s.expired.remove(&s.sn_base) {
                s.sn_base = s.sn_base.next();
                moved = true;
                continue;
            }
            // The base may sit at the start of a compacted window.
            let base = s.sn_base;
            if let Some(&(_, hi)) = s.windows.iter().find(|&&(lo, hi)| lo <= base && base <= hi) {
                s.sn_base = hi.next();
                moved = true;
                continue;
            }
            break;
        }
        if moved {
            // Windows fully below the base carry no information any more.
            let base = s.sn_base;
            s.windows.retain(|&(_, hi)| hi >= base);
        }
        moved
    }

    /// `CompactWindow`: verifies the whole segment is expired and signs
    /// correlated lower/upper bounds (§4.2.1).
    pub(crate) fn compact_window(
        &mut self,
        env: &mut Env,
        lo: SerialNumber,
        hi: SerialNumber,
    ) -> Result<WormResponse, FirmwareError> {
        self.booted()?;
        if lo > hi {
            return reject("window bounds inverted");
        }
        let run = hi.get() - lo.get() + 1;
        if (run as usize) < self.cfg.min_compaction_run {
            return reject(format!(
                "window of {run} entries below the minimum of {}",
                self.cfg.min_compaction_run
            ));
        }
        {
            let s = self.booted()?;
            let mut sn = lo;
            while sn <= hi {
                let covered = s.expired.contains(&sn)
                    || s.windows.iter().any(|&(wlo, whi)| wlo <= sn && sn <= whi)
                    || sn < s.sn_base;
                if !covered {
                    return reject(format!("{sn} is not expired; refusing to certify window"));
                }
                sn = sn.next();
            }
        }
        let window_id = env.rng().next_u64();
        let bits = self.cfg.strong_bits;
        env.charge(Op::RsaSign { bits });
        env.charge(Op::RsaSign { bits });
        let s = self.booted_mut()?;
        let lo_sig = Signature::sign(
            &s.sign_key,
            &window_payload(window_id, lo, WindowSide::Lower),
        );
        let hi_sig = Signature::sign(
            &s.sign_key,
            &window_payload(window_id, hi, WindowSide::Upper),
        );
        // Externalize: per-SN knowledge is replaced by the interval.
        let mut sn = lo;
        while sn <= hi {
            s.expired.remove(&sn);
            sn = sn.next();
        }
        let pos = s.windows.partition_point(|&(wlo, _)| wlo < lo);
        s.windows.insert(pos, (lo, hi));
        Ok(WormResponse::Window(WindowProof {
            window_id,
            lo,
            hi,
            lo_sig,
            hi_sig,
        }))
    }

    /// Seals a spilled VEXP entry so the host can re-submit it later
    /// without being able to alter the expiry or shredder.
    pub(crate) fn seal_expiry(
        &self,
        sn: SerialNumber,
        expires_at: Timestamp,
        shredder_code: u8,
    ) -> Vec<u8> {
        let s = self.booted_invariant();
        let mut payload = crate::witness::sealed_expiry_payload(sn, expires_at);
        payload.push(shredder_code);
        Hmac::<Sha256>::mac(&s.seal_key, &payload)
    }
}
