//! WORM firmware — the certified logic running *inside* the SCPU.
//!
//! Everything in this module executes within the trusted enclosure
//! (`scpu::Device`). The host talks to it exclusively through
//! [`WormRequest`]/[`WormResponse`]; private keys, the serial-number
//! counter, the VEXP expiration list, and the expired-SN tracking never
//! leave the device except as signed statements.
//!
//! Responsibilities (paper sections in parentheses):
//!
//! * issuing consecutive serial numbers and the `metasig`/`datasig`
//!   witnesses on writes (§4.2.2 *Write*);
//! * the Retention Monitor: VEXP-driven wake/sleep deletion with
//!   litigation-hold awareness (§4.2.2 *Record Expiration*, *Litigation*);
//! * head/base certificates and deleted-window bound pairs (§4.2.1);
//! * the deferred-strength scheme: weak/HMAC witnessing during bursts and
//!   idle-time strengthening (§4.3).

mod litigation;
mod retention;
mod signer;
mod state;

pub use retention::VEXP_ENTRY_BYTES;

use std::collections::BTreeMap;
use std::time::Duration;

use scpu::{Applet, Env, Timestamp};
use wormcrypt::RsaPublicKey;
use wormstore::Shredder;

use crate::attr::RecordAttributes;
use crate::authority::{HoldCredential, ReleaseCredential};
use crate::config::{DataHashScheme, WitnessMode};
use crate::policy::RetentionPolicy;
use crate::proofs::{BaseCert, CompositeBinding, DeletionProof, HeadCert, WindowProof};
use crate::sn::SerialNumber;
use crate::witness::{Signature, Witness};

use retention::VexpTable;
use signer::PendingStrengthen;
use state::BootedState;

/// Which VRD witness field an item refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WitnessField {
    /// `metasig` over `(SN, attr)`.
    Meta,
    /// `datasig` over `(SN, Hash(data))`.
    Data,
}

/// Data supplied with a write (§4.2.2).
#[derive(Clone, Debug)]
pub enum WriteData {
    /// Full record bytes: the SCPU DMAs them in and hashes them itself.
    Full(Vec<Vec<u8>>),
    /// Host-computed chain hash plus total length — the trust-host-hash
    /// burst mode; the firmware queues the record for later audit.
    HostHash {
        /// Claimed chained hash of the record list.
        chain_hash: Vec<u8>,
        /// Total data length (for throughput accounting and audit).
        total_len: u64,
    },
}

/// A weak (short-lived) key certificate chained off the permanent key `s`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeakKeyCert {
    /// The short-lived public key.
    pub key: RsaPublicKey,
    /// Latest `expires_at` any signature by this key may claim. Because
    /// factoring the weak modulus takes at least the security lifetime,
    /// by the time Alice recovers the private key every expiry it could
    /// assert is already in the past.
    pub max_sig_expiry: Timestamp,
    /// Signature by `s` over `(key, max_sig_expiry)`.
    pub sig: Signature,
}

/// Public keys and certificates the host publishes to clients.
#[derive(Clone, Debug)]
pub struct DeviceKeys {
    /// The data-hash scheme this deployment's `datasig` uses (clients
    /// must recompute `Hash(data)` the same way).
    pub data_hash: DataHashScheme,
    /// The permanent witnessing key `s`.
    pub sign: RsaPublicKey,
    /// The deletion-proof key `d`.
    pub delete: RsaPublicKey,
    /// Currently valid weak-key certificate.
    pub weak_cert: WeakKeyCert,
}

/// Receipt returned by a successful write.
#[derive(Clone, Debug)]
pub struct WriteReceipt {
    /// The freshly issued serial number.
    pub sn: SerialNumber,
    /// Attributes as stamped by the firmware (trusted `created_at` and
    /// `retention_until`).
    pub attr: RecordAttributes,
    /// Witness over `(SN, attr)`.
    pub metasig: Witness,
    /// Witness over `(SN, Hash(data))`.
    pub datasig: Witness,
    /// Sealing token handed back when secure memory had no room for the
    /// VEXP entry; the host must re-submit it via
    /// [`WormRequest::SyncVexp`] during an idle period.
    pub vexp_seal: Option<Vec<u8>>,
}

/// Items the firmware pushes out for the host to apply.
#[derive(Clone, Debug)]
pub enum OutboxItem {
    /// A record's retention elapsed: here is its deletion proof; shred the
    /// data with the given discipline.
    Deleted {
        /// SCPU-signed proof of rightful deletion.
        proof: DeletionProof,
        /// Shredding discipline from the record's attributes.
        shredder: Shredder,
    },
    /// A deferred witness has been strengthened to a permanent signature.
    Strengthened {
        /// The record whose witness was upgraded.
        sn: SerialNumber,
        /// Which field.
        field: WitnessField,
        /// The new strong witness.
        witness: Witness,
    },
    /// A new base certificate (the active window's lower bound advanced).
    NewBase(BaseCert),
    /// A periodic head re-issue (freshness heartbeat, §4.2.1).
    NewHead(HeadCert),
    /// The weak key rotated; publish the new certificate to clients.
    NewWeakKey(WeakKeyCert),
    /// A trust-host-hash audit failed: the host lied about a data hash.
    AuditFailure {
        /// The record whose claimed hash did not match.
        sn: SerialNumber,
    },
}

/// Commands accepted over the device channel.
#[derive(Clone, Debug)]
pub enum WormRequest {
    /// Generates keys and installs the regulator's public key. Must be the
    /// first command.
    Init {
        /// Public key of the regulatory authority (for litigation
        /// credentials).
        regulator: RsaPublicKey,
    },
    /// Returns the public keys / certificates for client distribution.
    GetKeys,
    /// Commits a new virtual record.
    Write {
        /// Retention policy for the new record.
        policy: RetentionPolicy,
        /// Free-form flag bits stored in `attr`.
        flags: u32,
        /// Record data (full or host-hashed).
        data: WriteData,
        /// Requested witnessing tier.
        witness: WitnessMode,
    },
    /// Re-issues the timestamped head certificate.
    RefreshHead,
    /// Re-issues the base certificate.
    RefreshBase,
    /// Signs a composite-freshness binding over the given shard count and
    /// per-shard head root (coordinator shard of a sharded deployment).
    /// The SCPU stamps the trusted issue time itself; it only attests
    /// "these heads were presented together at time t", which is exactly
    /// the statement clients need to reject mixed-instant head sets.
    SignComposite {
        /// Number of shards folded into the root.
        shard_count: u32,
        /// SHA-256 over the canonical per-shard head encodings.
        root: Vec<u8>,
    },
    /// Signs an audit-chain anchor: "audit event `seq` had chain hash
    /// `chain_hash` at trusted time t". The SCPU stamps the issue time
    /// itself, so the host cannot back- or forward-date the statement;
    /// the audit journal thereby inherits the device's tamper evidence.
    SignAuditAnchor {
        /// Sequence number of the chain tip being anchored.
        seq: u64,
        /// SHA-256 chain hash of that event.
        chain_hash: Vec<u8>,
    },
    /// Requests a signed deleted-window pair over `[lo, hi]` (§4.2.1).
    CompactWindow {
        /// First SN of the expired segment.
        lo: SerialNumber,
        /// Last SN of the expired segment.
        hi: SerialNumber,
    },
    /// Places a litigation hold on an active record.
    LitHold {
        /// Current attributes (verified against `metasig`).
        attr: RecordAttributes,
        /// Current metasig witness.
        metasig: Witness,
        /// Regulator authorization.
        credential: HoldCredential,
    },
    /// Releases a litigation hold.
    LitRelease {
        /// Current attributes (verified against `metasig`).
        attr: RecordAttributes,
        /// Current metasig witness.
        metasig: Witness,
        /// Regulator authorization.
        credential: ReleaseCredential,
    },
    /// Re-schedules a record's expiration from its SCPU-signed attributes
    /// (host-crash recovery; the firmware re-verifies `metasig`).
    SyncVexpFromAttr {
        /// Serial number of the record.
        sn: SerialNumber,
        /// The record's current attributes.
        attr: RecordAttributes,
        /// The metasig witness covering them.
        metasig: Witness,
    },
    /// Re-submits a spilled VEXP entry with its sealing token.
    SyncVexp {
        /// Serial number of the record.
        sn: SerialNumber,
        /// Its sealed expiration time.
        expires_at: Timestamp,
        /// Its sealed shredding discipline code.
        shredder: Shredder,
        /// The token issued at write time.
        seal: Vec<u8>,
    },
    /// Submits full record data for audit of a trust-host-hash write.
    AuditData {
        /// The record to audit.
        sn: SerialNumber,
        /// The full record bytes.
        data: Vec<Vec<u8>>,
    },
    /// Drains accumulated outbox items.
    DrainOutbox,
}

/// Successful responses.
#[derive(Clone, Debug)]
pub enum WormResponse {
    /// Device initialized.
    Ready,
    /// Public keys for clients.
    Keys(DeviceKeys),
    /// Write receipt.
    Written(WriteReceipt),
    /// Fresh head certificate.
    Head(HeadCert),
    /// Fresh base certificate.
    Base(BaseCert),
    /// Signed composite-freshness binding.
    Composite(CompositeBinding),
    /// Signed deleted-window pair.
    Window(WindowProof),
    /// SCPU-signed audit-chain anchor.
    AuditAnchor(wormaudit::AuditAnchor),
    /// Litigation hold/release applied: updated attributes and metasig.
    AttrUpdated {
        /// New attributes (hold set or cleared).
        attr: RecordAttributes,
        /// Fresh strong metasig over the new attributes.
        metasig: Witness,
    },
    /// VEXP entry accepted.
    Synced,
    /// Audit result for a trust-host-hash record (`true` = hash matched).
    Audited(bool),
    /// Drained outbox items.
    Outbox(Vec<OutboxItem>),
}

/// Firmware-level rejection (typed separately from transport errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FirmwareError(pub String);

impl std::fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FirmwareError {}

fn reject<T>(msg: impl Into<String>) -> Result<T, FirmwareError> {
    Err(FirmwareError(msg.into()))
}

/// Firmware configuration burned in before boot.
#[derive(Clone, Debug)]
pub struct FirmwareConfig {
    /// Permanent key width in bits.
    pub strong_bits: usize,
    /// Weak (burst) key width in bits.
    pub weak_bits: usize,
    /// Security lifetime of weak signatures.
    pub weak_lifetime: Duration,
    /// Head-certificate heartbeat interval.
    pub head_refresh_interval: Duration,
    /// Base-certificate validity period.
    pub base_cert_lifetime: Duration,
    /// Minimum expired-run length for window compaction.
    pub min_compaction_run: usize,
    /// Which incremental hash binds record lists into `datasig`.
    pub data_hash: DataHashScheme,
    /// Pre-first serial value `Init` boots `SN_current` to (a shard's
    /// lane origin; 0 for a single-SCPU deployment).
    pub sn_origin: u64,
}

impl Default for FirmwareConfig {
    fn default() -> Self {
        FirmwareConfig {
            strong_bits: 1024,
            weak_bits: 512,
            weak_lifetime: Duration::from_secs(120 * 60),
            head_refresh_interval: Duration::from_secs(120),
            base_cert_lifetime: Duration::from_secs(24 * 60 * 60),
            min_compaction_run: 3,
            data_hash: DataHashScheme::Chained,
            sn_origin: 0,
        }
    }
}

/// The Strong WORM applet.
#[derive(Debug)]
pub struct WormFirmware {
    pub(crate) cfg: FirmwareConfig,
    /// Key material and SN tracking; `None` until `Init`.
    pub(crate) state: Option<BootedState>,
    /// Sorted expiration list (Retention Monitor input).
    pub(crate) vexp: VexpTable,
    /// Active litigation holds: SN → hold lapse time.
    pub(crate) holds: BTreeMap<SerialNumber, Timestamp>,
    /// Deferred witnesses awaiting strengthening.
    pub(crate) pending: BTreeMap<(SerialNumber, u8), PendingStrengthen>,
    /// Trust-host-hash writes awaiting audit: SN → claimed chain hash.
    pub(crate) pending_audits: BTreeMap<SerialNumber, Vec<u8>>,
    /// Items for the host to collect.
    pub(crate) outbox: Vec<OutboxItem>,
    /// Count of records whose VEXP entry was spilled to the host.
    pub(crate) spilled: u64,
}

impl WormFirmware {
    /// Creates un-booted firmware with the given configuration.
    pub fn new(cfg: FirmwareConfig) -> Self {
        WormFirmware {
            cfg,
            state: None,
            vexp: VexpTable::new(),
            holds: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_audits: BTreeMap::new(),
            outbox: Vec::new(),
            spilled: 0,
        }
    }

    /// Number of VEXP entries currently resident in secure memory.
    pub fn vexp_len(&self) -> usize {
        self.vexp.len()
    }

    /// Number of deferred witnesses awaiting strengthening.
    pub fn pending_strengthen(&self) -> usize {
        self.pending.len()
    }

    /// Number of writes whose VEXP entry was spilled to the host.
    pub fn spilled_count(&self) -> u64 {
        self.spilled
    }

    fn dispatch(
        &mut self,
        env: &mut Env,
        request: WormRequest,
    ) -> Result<WormResponse, FirmwareError> {
        match request {
            WormRequest::Init { regulator } => self.init(env, regulator),
            WormRequest::GetKeys => self.get_keys(),
            WormRequest::Write {
                policy,
                flags,
                data,
                witness,
            } => self.write(env, policy, flags, data, witness),
            WormRequest::RefreshHead => self.refresh_head(env).map(WormResponse::Head),
            WormRequest::RefreshBase => self.refresh_base(env).map(WormResponse::Base),
            WormRequest::SignComposite { shard_count, root } => self
                .sign_composite(env, shard_count, root)
                .map(WormResponse::Composite),
            WormRequest::SignAuditAnchor { seq, chain_hash } => self
                .sign_audit_anchor(env, seq, chain_hash)
                .map(WormResponse::AuditAnchor),
            WormRequest::CompactWindow { lo, hi } => self.compact_window(env, lo, hi),
            WormRequest::LitHold {
                attr,
                metasig,
                credential,
            } => self.lit_hold(env, attr, metasig, credential),
            WormRequest::LitRelease {
                attr,
                metasig,
                credential,
            } => self.lit_release(env, attr, metasig, credential),
            WormRequest::SyncVexpFromAttr { sn, attr, metasig } => {
                self.sync_vexp_from_attr(env, sn, attr, metasig)
            }
            WormRequest::SyncVexp {
                sn,
                expires_at,
                shredder,
                seal,
            } => self.sync_vexp(env, sn, expires_at, shredder, seal),
            WormRequest::AuditData { sn, data } => self.audit_data(env, sn, data),
            WormRequest::DrainOutbox => Ok(WormResponse::Outbox(std::mem::take(&mut self.outbox))),
        }
    }
}

impl Applet for WormFirmware {
    type Request = WormRequest;
    type Response = Result<WormResponse, FirmwareError>;

    fn handle(&mut self, env: &mut Env, request: WormRequest) -> Self::Response {
        self.dispatch(env, request)
    }

    fn kind_of(request: &WormRequest) -> &'static str {
        match request {
            WormRequest::Init { .. } => "scpu.init",
            WormRequest::GetKeys => "scpu.get_keys",
            WormRequest::Write { .. } => "scpu.write",
            WormRequest::RefreshHead => "scpu.refresh_head",
            WormRequest::RefreshBase => "scpu.refresh_base",
            WormRequest::SignComposite { .. } => "scpu.sign_composite",
            WormRequest::SignAuditAnchor { .. } => "scpu.sign_audit_anchor",
            WormRequest::CompactWindow { .. } => "scpu.compact_window",
            WormRequest::LitHold { .. } => "scpu.lit_hold",
            WormRequest::LitRelease { .. } => "scpu.lit_release",
            WormRequest::SyncVexpFromAttr { .. } | WormRequest::SyncVexp { .. } => "scpu.sync_vexp",
            WormRequest::AuditData { .. } => "scpu.audit",
            WormRequest::DrainOutbox => "scpu.drain_outbox",
        }
    }

    fn next_alarm(&self) -> Option<Timestamp> {
        let rm = self.vexp.next_wakeup();
        let head = self
            .state
            .as_ref()
            .map(|s| s.last_head_issue.after(self.cfg.head_refresh_interval));
        match (rm, head) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_alarm(&mut self, env: &mut Env) {
        if self.state.is_none() {
            return;
        }
        let now = env.now();
        // Head heartbeat (§4.2.1: the SCPU updates the signed timestamp
        // every few minutes even in the absence of data updates).
        let due_head = self
            .state
            .as_ref()
            .is_some_and(|s| s.last_head_issue.after(self.cfg.head_refresh_interval) <= now);
        if due_head {
            if let Ok(head) = self.refresh_head(env) {
                self.outbox.push(OutboxItem::NewHead(head));
            }
        }
        // Retention Monitor: delete due records.
        self.run_retention_monitor(env);
    }

    fn on_idle(&mut self, env: &mut Env, budget_ns: u64) {
        if self.state.is_none() {
            return;
        }
        self.strengthen_pending(env, budget_ns);
    }

    fn zeroize(&mut self) {
        self.state = None;
        self.vexp.clear();
        self.holds.clear();
        self.pending.clear();
        self.pending_audits.clear();
        self.outbox.clear();
    }
}
