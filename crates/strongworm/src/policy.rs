//! Retention policies and regulation presets.
//!
//! Table 1's `attr` field carries the "applicable regulation policy" and
//! retention period. This module provides the common presets the paper's
//! introduction cites, plus fully custom policies.

use std::time::Duration;
use wormstore::Shredder;

const DAY: u64 = 24 * 60 * 60;
const YEAR: u64 = 365 * DAY;

/// The regulation a record is stored under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Regulation {
    /// SEC Rule 17a-4 — broker-dealer records.
    Sec17a4,
    /// HIPAA — health records.
    Hipaa,
    /// FERPA — educational records.
    Ferpa,
    /// DoD 5015.2 — defense records management.
    Dod5015,
    /// Sarbanes-Oxley — audit work papers.
    SarbanesOxley,
    /// FDA 21 CFR Part 11 — electronic records/signatures.
    Fda21Cfr11,
    /// Unregulated / site-specific policy.
    Custom,
}

impl Regulation {
    /// Stable numeric code used in the canonical encoding.
    pub fn code(self) -> u8 {
        match self {
            Regulation::Sec17a4 => 1,
            Regulation::Hipaa => 2,
            Regulation::Ferpa => 3,
            Regulation::Dod5015 => 4,
            Regulation::SarbanesOxley => 5,
            Regulation::Fda21Cfr11 => 6,
            Regulation::Custom => 0,
        }
    }

    /// Decodes a numeric code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Regulation::Custom,
            1 => Regulation::Sec17a4,
            2 => Regulation::Hipaa,
            3 => Regulation::Ferpa,
            4 => Regulation::Dod5015,
            5 => Regulation::SarbanesOxley,
            6 => Regulation::Fda21Cfr11,
            _ => return None,
        })
    }
}

/// A complete retention policy attached to a virtual record at write time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Governing regulation.
    pub regulation: Regulation,
    /// How long the record must be retained after creation.
    pub retention: Duration,
    /// Shredding discipline applied on expiry.
    pub shredder: Shredder,
}

impl RetentionPolicy {
    /// SEC 17a-4: six-year retention, multi-pass shredding.
    pub fn sec17a4() -> Self {
        RetentionPolicy {
            regulation: Regulation::Sec17a4,
            retention: Duration::from_secs(6 * YEAR),
            shredder: Shredder::MultiPass { passes: 3 },
        }
    }

    /// HIPAA: six-year retention.
    pub fn hipaa() -> Self {
        RetentionPolicy {
            regulation: Regulation::Hipaa,
            retention: Duration::from_secs(6 * YEAR),
            shredder: Shredder::MultiPass { passes: 3 },
        }
    }

    /// FERPA: five-year retention.
    pub fn ferpa() -> Self {
        RetentionPolicy {
            regulation: Regulation::Ferpa,
            retention: Duration::from_secs(5 * YEAR),
            shredder: Shredder::ZeroFill,
        }
    }

    /// DoD 5015.2 representative schedule: 25-year retention.
    pub fn dod5015() -> Self {
        RetentionPolicy {
            regulation: Regulation::Dod5015,
            retention: Duration::from_secs(25 * YEAR),
            shredder: Shredder::MultiPass { passes: 7 },
        }
    }

    /// Sarbanes-Oxley: seven-year retention for audit work papers.
    pub fn sarbanes_oxley() -> Self {
        RetentionPolicy {
            regulation: Regulation::SarbanesOxley,
            retention: Duration::from_secs(7 * YEAR),
            shredder: Shredder::MultiPass { passes: 3 },
        }
    }

    /// Custom policy with an arbitrary retention period.
    pub fn custom(retention: Duration, shredder: Shredder) -> Self {
        RetentionPolicy {
            regulation: Regulation::Custom,
            retention,
            shredder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for r in [
            Regulation::Sec17a4,
            Regulation::Hipaa,
            Regulation::Ferpa,
            Regulation::Dod5015,
            Regulation::SarbanesOxley,
            Regulation::Fda21Cfr11,
            Regulation::Custom,
        ] {
            assert_eq!(Regulation::from_code(r.code()), Some(r));
        }
        assert_eq!(Regulation::from_code(200), None);
    }

    #[test]
    fn presets_have_multiyear_retention() {
        for p in [
            RetentionPolicy::sec17a4(),
            RetentionPolicy::hipaa(),
            RetentionPolicy::ferpa(),
            RetentionPolicy::dod5015(),
            RetentionPolicy::sarbanes_oxley(),
        ] {
            assert!(p.retention >= Duration::from_secs(5 * YEAR));
        }
        assert!(RetentionPolicy::dod5015().retention > RetentionPolicy::hipaa().retention);
    }

    #[test]
    fn custom_policy() {
        let p = RetentionPolicy::custom(Duration::from_secs(60), Shredder::ZeroFill);
        assert_eq!(p.regulation, Regulation::Custom);
        assert_eq!(p.retention, Duration::from_secs(60));
    }
}
