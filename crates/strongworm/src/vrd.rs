//! Virtual records and their descriptors (Table 1).
//!
//! A *virtual record* (VR) groups data records that fall under the same
//! regulation and must be handled together; the *virtual record
//! descriptor* (VRD) is its securely issued identity: serial number,
//! attributes, the physical record descriptor list (RDL), and the two SCPU
//! signatures `metasig` and `datasig`.

use wormcrypt::{ChainHash, MultisetHash};
use wormstore::RecordDescriptor;

use crate::attr::RecordAttributes;
use crate::config::DataHashScheme;
use crate::sn::SerialNumber;
use crate::witness::Witness;

/// Virtual record descriptor — one row of the VRDT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vrd {
    /// SCPU-issued, system-wide unique serial number.
    pub sn: SerialNumber,
    /// WORM attributes (covered by `metasig`).
    pub attr: RecordAttributes,
    /// Record descriptor list: physical locations of the VR's data
    /// records, in order (covered by `datasig` via the chained data hash).
    pub rdl: Vec<RecordDescriptor>,
    /// SCPU witness over `(SN, attr)`.
    pub metasig: Witness,
    /// SCPU witness over `(SN, Hash(data))`.
    pub datasig: Witness,
}

impl Vrd {
    /// Total payload size of the VR in bytes.
    pub fn data_len(&self) -> u64 {
        self.rdl.iter().map(|rd| rd.len).sum()
    }

    /// Number of data records grouped in this VR.
    pub fn record_count(&self) -> usize {
        self.rdl.len()
    }

    /// Whether either witness still awaits SCPU strengthening.
    pub fn needs_strengthening(&self) -> bool {
        self.metasig.needs_strengthening() || self.datasig.needs_strengthening()
    }
}

/// Computes the chained hash of an ordered record list — the `Hash(data)`
/// that `datasig` covers under [`DataHashScheme::Chained`].
pub fn data_chain_hash<'a, I>(records: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    ChainHash::digest_records(records)
}

/// Computes the additive multiset hash of a record list
/// ([`DataHashScheme::Multiset`], Table 1's incremental alternative).
pub fn data_multiset_hash<'a, I>(records: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut m = MultisetHash::new();
    for r in records {
        m.add(r);
    }
    m.digest()
}

/// Computes `Hash(data)` under the given scheme.
pub fn data_hash<'a, I>(scheme: DataHashScheme, records: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    match scheme {
        DataHashScheme::Chained => data_chain_hash(records),
        DataHashScheme::Multiset => data_multiset_hash(records),
    }
}

/// Expected digest length for a scheme (32 for chained, 40 for multiset).
pub fn data_hash_len(scheme: DataHashScheme) -> usize {
    match scheme {
        DataHashScheme::Chained => 32,
        DataHashScheme::Multiset => 40,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Regulation;
    use crate::witness::Signature;
    use scpu::Timestamp;
    use wormstore::{RecordId, Shredder};

    fn witness() -> Witness {
        Witness::Strong(Signature {
            key_id: [0; 8],
            bytes: vec![1],
        })
    }

    fn vrd() -> Vrd {
        Vrd {
            sn: SerialNumber(1),
            attr: RecordAttributes {
                created_at: Timestamp::from_millis(0),
                retention_until: Timestamp::from_millis(1000),
                regulation: Regulation::Custom,
                shredder: Shredder::ZeroFill,
                litigation_hold: None,
                flags: 0,
            },
            rdl: vec![
                RecordDescriptor {
                    id: RecordId(1),
                    offset: 0,
                    len: 100,
                },
                RecordDescriptor {
                    id: RecordId(2),
                    offset: 100,
                    len: 28,
                },
            ],
            metasig: witness(),
            datasig: witness(),
        }
    }

    #[test]
    fn size_accessors() {
        let v = vrd();
        assert_eq!(v.data_len(), 128);
        assert_eq!(v.record_count(), 2);
        assert!(!v.needs_strengthening());
    }

    #[test]
    fn strengthening_flag() {
        let mut v = vrd();
        v.datasig = Witness::Mac { tag: vec![0; 32] };
        assert!(v.needs_strengthening());
    }

    #[test]
    fn chain_hash_is_order_sensitive() {
        let a = data_chain_hash([b"one".as_slice(), b"two".as_slice()]);
        let b = data_chain_hash([b"two".as_slice(), b"one".as_slice()]);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
