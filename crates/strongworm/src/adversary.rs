//! Mallory — the paper's adversary, as a test harness.
//!
//! The threat model (§2.1): Alice legitimately stores a record, later
//! regrets it, and — with superuser powers and physical access to disks —
//! acts as "Mallory" to alter it, delete it early, or deny its existence,
//! all *undetectably*. This module gives tests a first-class Mallory whose
//! methods perform exactly those manipulations against live server state,
//! bypassing the WORM API the way a root insider bypasses access control.
//!
//! Every method either mutates host-side state in place or fabricates the
//! malicious [`ReadOutcome`] Mallory would serve; the accompanying test
//! suites assert that [`Verifier`](crate::Verifier) rejects each one
//! (Theorems 1 and 2).

use wormstore::BlockDevice;

use crate::attr::RecordAttributes;
use crate::proofs::{DeletionEvidence, DeletionProof, HeadCert, ReadOutcome, WindowProof};
use crate::server::WormServer;
use crate::sn::SerialNumber;
use crate::vrdt::VrdtEntry;
use crate::witness::Signature;

/// Handle over a server's internals, as wielded by a malicious insider.
///
/// Holds only a shared reference: the insider needs no cooperation from
/// the server's API surface — each method grabs the VRDT write lock or
/// the raw device interface directly, exactly like a root process
/// scribbling on mounted disks while the server runs.
pub struct Mallory<'a, D: BlockDevice> {
    server: &'a WormServer<D>,
}

impl<D: BlockDevice> WormServer<D> {
    /// Opens the insider attack surface (tests only).
    pub fn mallory(&self) -> Mallory<'_, D> {
        Mallory { server: self }
    }
}

impl<D: BlockDevice> Mallory<'_, D> {
    /// Flips bits in the stored bytes of record `sn` directly on the
    /// medium (the physical-access attack that defeats soft-WORM, §3).
    ///
    /// Returns `false` if the record is not active or has no data.
    pub fn corrupt_record_data(&mut self, sn: SerialNumber) -> bool {
        let (vrdt, store) = self.server.parts_mut_for_attack();
        let rd = match vrdt.lookup(sn) {
            crate::vrdt::Lookup::Active(v) => match v.rdl.first() {
                Some(rd) => *rd,
                None => return false,
            },
            _ => return false,
        };
        if rd.len == 0 {
            return false;
        }
        let mut byte = [0u8; 1];
        if store.device().read_at(rd.offset, &mut byte).is_err() {
            return false;
        }
        byte[0] ^= 0xFF;
        store.device().write_at(rd.offset, &byte).is_ok()
    }

    /// Rewrites a record's attributes in the VRDT (e.g., shortening its
    /// retention period) without involving the SCPU.
    ///
    /// Returns `false` if the record is not active.
    pub fn rewrite_attributes(
        &mut self,
        sn: SerialNumber,
        edit: impl FnOnce(&mut RecordAttributes),
    ) -> bool {
        let (mut vrdt, _) = self.server.parts_mut_for_attack();
        match vrdt.entries_mut_for_attack().get_mut(&sn) {
            Some(VrdtEntry::Active(v)) => {
                edit(&mut v.attr);
                true
            }
            _ => false,
        }
    }

    /// Swaps the witnesses of two active records (signature transplant).
    ///
    /// Returns `false` unless both records are active.
    pub fn swap_witnesses(&mut self, a: SerialNumber, b: SerialNumber) -> bool {
        let (mut vrdt, _) = self.server.parts_mut_for_attack();
        let entries = vrdt.entries_mut_for_attack();
        let wa = match entries.get(&a) {
            Some(VrdtEntry::Active(v)) => (v.metasig.clone(), v.datasig.clone()),
            _ => return false,
        };
        let wb = match entries.get(&b) {
            Some(VrdtEntry::Active(v)) => (v.metasig.clone(), v.datasig.clone()),
            _ => return false,
        };
        if let Some(VrdtEntry::Active(v)) = entries.get_mut(&a) {
            v.metasig = wb.0;
            v.datasig = wb.1;
        }
        if let Some(VrdtEntry::Active(v)) = entries.get_mut(&b) {
            v.metasig = wa.0;
            v.datasig = wa.1;
        }
        true
    }

    /// Serves "this record never existed" for `sn`, backed by the current
    /// (honest) head certificate — the naïve denial a fresh head defeats.
    pub fn deny_existence(&mut self, sn: SerialNumber) -> Option<ReadOutcome> {
        let _ = sn;
        let (vrdt, _) = self.server.parts_mut_for_attack();
        let head = vrdt.head().cloned()?;
        Some(ReadOutcome::NeverExisted { head })
    }

    /// Serves "this record never existed" backed by a *replayed* old head
    /// certificate from before the record was written (§4.2.1's replay
    /// attack; defeated by the head's timestamp).
    pub fn deny_existence_with_replayed_head(
        &mut self,
        sn: SerialNumber,
        old_head: HeadCert,
    ) -> ReadOutcome {
        let _ = sn;
        ReadOutcome::NeverExisted { head: old_head }
    }

    /// Installs a replayed old head into the VRDT so subsequent honest
    /// reads serve stale freshness evidence.
    pub fn install_replayed_head(&mut self, old_head: HeadCert) {
        let (mut vrdt, _) = self.server.parts_mut_for_attack();
        vrdt.set_head_for_attack(old_head);
    }

    /// Fabricates a deletion proof for an active record (removing history
    /// before its retention elapsed) with a forged signature.
    pub fn forge_deletion(&mut self, sn: SerialNumber) -> ReadOutcome {
        let (vrdt, _) = self.server.parts_mut_for_attack();
        #[allow(clippy::expect_used)]
        // wormlint: allow(panic) -- attack-harness precondition: `WormServer::boot` installs a head before any adversary is constructed, and a broken harness must fail loudly, not model a different attack
        let head = vrdt.head().cloned().expect("head installed at boot");
        let deleted_at = head.issued_at;
        let proof = DeletionProof {
            sn,
            deleted_at,
            // Mallory cannot sign with `d`; the best she can do is reuse
            // unrelated signature bytes.
            sig: Signature {
                key_id: head.sig.key_id,
                bytes: head.sig.bytes.clone(),
            },
        };
        ReadOutcome::Deleted {
            evidence: DeletionEvidence::Proof(proof),
            head,
        }
    }

    /// Replays a legitimate deletion proof of record `victim` as evidence
    /// that a *different* record was deleted.
    pub fn replay_deletion_proof(&mut self, victim_proof: DeletionProof) -> Option<ReadOutcome> {
        let (vrdt, _) = self.server.parts_mut_for_attack();
        let head = vrdt.head().cloned()?;
        Some(ReadOutcome::Deleted {
            evidence: DeletionEvidence::Proof(victim_proof),
            head,
        })
    }

    /// Splices the lower bound of one signed window with the upper bound
    /// of another, fabricating a wider "deleted" window (the attack the
    /// correlated window ids prevent, §4.2.1).
    pub fn splice_windows(&self, w1: &WindowProof, w2: &WindowProof) -> WindowProof {
        WindowProof {
            window_id: w1.window_id,
            lo: w1.lo,
            hi: w2.hi,
            lo_sig: w1.lo_sig.clone(),
            hi_sig: w2.hi_sig.clone(),
        }
    }

    /// Claims an active record is covered by an existing (legitimate)
    /// deleted window.
    pub fn claim_in_window(
        &mut self,
        sn: SerialNumber,
        window: WindowProof,
    ) -> Option<ReadOutcome> {
        let _ = sn;
        let (vrdt, _) = self.server.parts_mut_for_attack();
        let head = vrdt.head().cloned()?;
        Some(ReadOutcome::Deleted {
            evidence: DeletionEvidence::InWindow(window),
            head,
        })
    }

    /// Removes a record's VRDT entry outright (the crude "lost it" play).
    pub fn drop_entry(&mut self, sn: SerialNumber) -> bool {
        let (mut vrdt, _) = self.server.parts_mut_for_attack();
        vrdt.entries_mut_for_attack().remove(&sn).is_some()
    }

    /// Re-inserts a previously captured VRD + data (resurrection of a
    /// rightfully deleted record — allowed by the model: "remembering" is
    /// not preventable, only *rewriting* is).
    pub fn resurrect_entry(&mut self, vrd: crate::vrd::Vrd) {
        let (mut vrdt, _) = self.server.parts_mut_for_attack();
        vrdt.entries_mut_for_attack()
            .insert(vrd.sn, VrdtEntry::Active(vrd));
    }
}
