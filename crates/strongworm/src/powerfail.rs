//! Deterministic power-fail torture harness.
//!
//! The paper's Theorems 1 and 2 assume the untrusted host can lose power
//! at any instant without silently losing committed WORM state or
//! resurrecting shredded bytes. This module makes that assumption an
//! executable check: it runs a canonical lifecycle [`Scenario`] (write,
//! expire-and-shred, compact, write again) against a durable server on a
//! [`TornDisk`], cuts power at an exact write boundary with one of the
//! four [`wormstore::CutStyle`] torn-sector behaviours, recovers via
//! [`WormServer::recover_durable`], and re-verifies the invariants
//! end-to-end through a client [`Verifier`]:
//!
//! * **No committed record lost** — every acknowledged write reads back
//!   byte-identical and verifier-accepted (Theorem 1).
//! * **No shredded record recoverable** — every acknowledged deletion's
//!   plaintext is absent from a raw scan of the whole medium (Theorem 2).
//! * **No forged state accepted** — whatever the recovered host serves,
//!   the verifier either accepts it as exactly the committed state or
//!   rejects it; torn garbage is never verifier-approved.
//!
//! Operations the cut interrupted *without* an acknowledgement are in
//! limbo: they may have rolled back (still active, bytes intact) or
//! committed (deletion proven, bytes destroyed) — but never anything in
//! between.
//!
//! The harness is two-phase: [`Torture::profile`] counts the write
//! boundaries an unarmed run crosses, then the caller enumerates every
//! boundary and style via [`Torture::torture`] — optionally arming a
//! *second* cut during recovery itself (recover-then-crash-again).
//! Everything is deterministically seeded, so a failing cut point replays
//! bit-identically.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use scpu::VirtualClock;
use wormstore::{
    BlockDevice, BlockError, CutPlan, JournalError, MemDisk, Partition, Shredder, StoreError,
    TornDisk,
};

use crate::authority::RegulatoryAuthority;
use crate::client::{ReadVerdict, Verifier};
use crate::config::WormConfig;
use crate::error::{VerifyError, WormError};
use crate::policy::RetentionPolicy;
use crate::proofs::ReadOutcome;
use crate::server::WormServer;
use crate::sn::SerialNumber;

/// The fault-injected medium the harness tortures.
pub type TornMedium = TornDisk<MemDisk>;
/// The durable server type under torture.
pub type TornServer = WormServer<Partition<TornMedium>>;

/// A torture verdict: what went wrong at a cut point.
#[derive(Debug)]
pub enum TortureError {
    /// The scenario failed with an error that is not a power cut — a
    /// real bug in the serving path, independent of crash atomicity.
    Scenario(WormError),
    /// Recovery failed on a revived medium (it must always succeed).
    Recovery(WormError),
    /// A Theorem 1/2 invariant did not survive the cut.
    Invariant(String),
    /// The client verifier rejected state the recovered server served.
    Verify(VerifyError),
}

impl std::fmt::Display for TortureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TortureError::Scenario(e) => write!(f, "scenario failed outside the cut: {e}"),
            TortureError::Recovery(e) => write!(f, "recovery failed on a revived medium: {e}"),
            TortureError::Invariant(what) => write!(f, "invariant violated: {what}"),
            TortureError::Verify(e) => write!(f, "verifier rejected recovered state: {e}"),
        }
    }
}

impl std::error::Error for TortureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TortureError::Scenario(e) | TortureError::Recovery(e) => Some(e),
            TortureError::Verify(e) => Some(e),
            TortureError::Invariant(_) => None,
        }
    }
}

fn invariant(what: String) -> TortureError {
    TortureError::Invariant(what)
}

/// True when `e` is the device reporting the armed power cut (the one
/// error class the torture loop expects and absorbs).
pub fn is_power_cut(e: &WormError) -> bool {
    match e {
        WormError::Store(StoreError::Device(b)) => matches!(b, BlockError::PowerLost { .. }),
        WormError::Journal(JournalError::Device(b)) => {
            matches!(b, BlockError::PowerLost { .. })
        }
        _ => false,
    }
}

/// The canonical lifecycle workload, sized by the caller (the torture
/// test runs it small and exhaustively; the bench runs it large).
///
/// Order matters: victims are written *below* keepers so their shredded
/// extents open free space that compaction relocates the keepers into,
/// exercising the full relocate-replace-shred transaction.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Short-retention records written first, then expired and shredded.
    pub victims: usize,
    /// Long-lived multi-pass-shredder records written above the victims.
    pub keepers: usize,
    /// Run store compaction after the deletions.
    pub compact: bool,
    /// Records written after the churn.
    pub tail_writes: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            victims: 2,
            keepers: 2,
            compact: true,
            tail_writes: 1,
        }
    }
}

/// What the scenario had acknowledged before the cut fired — the ground
/// truth the recovered server is checked against.
#[derive(Clone, Debug, Default)]
pub struct Acked {
    /// Acked writes never deleted: must read back `Intact` with exactly
    /// these bytes, present exactly once on the medium.
    pub must_live: Vec<(SerialNumber, Vec<u8>)>,
    /// Acked writes whose deletion was also acked: must read back
    /// `ConfirmedDeleted`, bytes absent from the medium.
    pub must_be_dead: Vec<(SerialNumber, Vec<u8>)>,
    /// Acked writes whose deletion was in flight (or merely scheduled)
    /// when the cut hit: either intact or proven-deleted is legal, but
    /// nothing in between.
    pub limbo: Vec<(SerialNumber, Vec<u8>)>,
}

/// Outcome of one survived cut point.
#[derive(Clone, Copy, Debug)]
pub struct CutOutcome {
    /// Whether the armed cut actually fired (false when `at_write` lay
    /// beyond the scenario's writes: the run degenerates to a clean-
    /// shutdown crash).
    pub cut_fired: bool,
    /// Write boundaries the (first) recovery crossed — the enumeration
    /// range for recover-then-crash-again plans.
    pub recovery_writes: u64,
    /// Wall-clock nanoseconds from the first recovery attempt to a
    /// booted server (spans both attempts when the recovery itself was
    /// cut; excludes invariant verification).
    pub recovery_nanos: u64,
}

/// Write-boundary range a scenario's cuts enumerate (1-based, inclusive;
/// boundaries below `first` belong to server boot).
#[derive(Clone, Copy, Debug)]
pub struct CutRange {
    /// First boundary the scenario itself crosses.
    pub first: u64,
    /// Last boundary of the scenario (from [`TornDisk::writes_seen`]).
    pub last: u64,
}

/// xorshift64* for deterministic record patterns (independent of the
/// `rand` stand-in so patterns are stable across the workspace).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A 48-byte record payload unique to `tag` — long and entropic enough
/// that a raw-medium scan cannot false-positive on journal frames,
/// shred noise, or torn garbage.
pub fn pattern(tag: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ tag.wrapping_mul(0xD134_2543_DE82_EF95);
    for _ in 0..6 {
        x = mix(x);
        out.extend_from_slice(&x.to_be_bytes());
    }
    out
}

fn count_occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    haystack
        .windows(needle.len())
        .filter(|w| *w == needle)
        .count()
}

/// The torture rig: one regulator key pair (the slow part) reused across
/// every cut point, plus the medium geometry.
pub struct Torture {
    config: WormConfig,
    regulator: RegulatoryAuthority,
    capacity: u64,
    journal_bytes: u64,
}

impl Torture {
    /// Builds a rig with `capacity` bytes of medium, the first
    /// `journal_bytes` of which hold the VRDT journal region.
    pub fn new(capacity: u64, journal_bytes: u64) -> Self {
        Torture {
            config: WormConfig::test_small(),
            regulator: RegulatoryAuthority::generate(&mut StdRng::seed_from_u64(0x70D7), 512),
            capacity,
            journal_bytes,
        }
    }

    /// A rig sized for the exhaustive-but-small torture test.
    pub fn small() -> Self {
        Torture::new(1 << 17, 1 << 15)
    }

    fn boot(&self) -> Result<(TornServer, TornMedium, Arc<VirtualClock>), TortureError> {
        let clock = VirtualClock::starting_at_millis(1_000_000);
        let torn = TornDisk::new(MemDisk::unmetered(self.capacity as usize));
        let srv = WormServer::with_durable(
            torn.clone(),
            self.journal_bytes,
            self.config.clone(),
            clock.clone(),
            self.regulator.public(),
        )
        .map_err(TortureError::Scenario)?;
        Ok((srv, torn, clock))
    }

    /// Runs the scenario, recording acknowledgements as they happen.
    /// Returns the acked ground truth plus how the run ended.
    fn run_scenario(
        &self,
        srv: &TornServer,
        clock: &Arc<VirtualClock>,
        sc: &Scenario,
    ) -> (Acked, Result<(), WormError>) {
        let mut acked = Acked::default();
        for i in 0..sc.victims {
            let pat = pattern(0x2000 + i as u64);
            let policy = RetentionPolicy::custom(Duration::from_secs(100), Shredder::ZeroFill);
            match srv.write(&[&pat], policy) {
                // Until its deletion is acked too, an expiring record is
                // in limbo: recovery may complete a scheduled expiry.
                Ok(sn) => acked.limbo.push((sn, pat)),
                Err(e) => return (acked, Err(e)),
            }
        }
        for i in 0..sc.keepers {
            let pat = pattern(0x1000 + i as u64);
            let policy = RetentionPolicy::custom(
                Duration::from_secs(1_000_000),
                Shredder::MultiPass { passes: 2 },
            );
            match srv.write(&[&pat], policy) {
                Ok(sn) => acked.must_live.push((sn, pat)),
                Err(e) => return (acked, Err(e)),
            }
        }
        clock.advance(Duration::from_secs(150));
        match srv.tick() {
            Ok(()) => acked.must_be_dead.append(&mut acked.limbo),
            Err(e) => return (acked, Err(e)),
        }
        if sc.compact {
            if let Err(e) = srv.compact_store() {
                return (acked, Err(e));
            }
        }
        for i in 0..sc.tail_writes {
            let pat = pattern(0x3000 + i as u64);
            let policy =
                RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
            match srv.write(&[&pat], policy) {
                Ok(sn) => acked.must_live.push((sn, pat)),
                Err(e) => return (acked, Err(e)),
            }
        }
        (acked, Ok(()))
    }

    /// Phase 1: the write-boundary range an unarmed run of `sc` crosses.
    ///
    /// # Errors
    ///
    /// The scenario failing on a healthy medium.
    pub fn profile(&self, sc: &Scenario) -> Result<CutRange, TortureError> {
        let (srv, torn, clock) = self.boot()?;
        let boot_writes = torn.writes_seen();
        let (_, end) = self.run_scenario(&srv, &clock, sc);
        end.map_err(TortureError::Scenario)?;
        Ok(CutRange {
            first: boot_writes + 1,
            last: torn.writes_seen(),
        })
    }

    /// Phase 2: cut power per `plan`, recover, and verify. When
    /// `recovery_plan` is armed, the *recovery itself* is cut at that
    /// boundary and a second recovery must then succeed (recover-then-
    /// crash-again).
    ///
    /// # Errors
    ///
    /// Any [`TortureError`]: the cut point is a counterexample to crash
    /// atomicity.
    pub fn torture(
        &self,
        sc: &Scenario,
        plan: CutPlan,
        recovery_plan: Option<CutPlan>,
    ) -> Result<CutOutcome, TortureError> {
        let (srv, torn, clock) = self.boot()?;
        torn.arm(plan);
        let (acked, end) = self.run_scenario(&srv, &clock, sc);
        match end {
            Ok(()) => {}
            Err(e) if is_power_cut(&e) => {}
            Err(e) => return Err(TortureError::Scenario(e)),
        }
        let cut_fired = torn.cut_fired().is_some();
        // The host dies; only the battery-backed SCPU and the medium
        // survive. (When the plan lay beyond the scenario, this is a
        // clean-shutdown crash of fully committed state.)
        let (device, _store, _journal) = srv.into_parts();
        torn.revive();
        if let Some(rp) = recovery_plan {
            torn.arm(rp);
        }
        let recovery_started = Instant::now();
        let recovered = WormServer::recover_durable(
            torn.clone(),
            self.journal_bytes,
            device,
            self.config.clone(),
            clock.clone(),
        );
        let (srv, recovery_writes) = match recovered {
            Ok(s) => (s, torn.writes_seen()),
            Err((e, device)) if is_power_cut(&e) && recovery_plan.is_some() => {
                // Crash during recovery: reboot once more; the second
                // recovery must succeed unarmed.
                let first_recovery_writes = torn.writes_seen();
                torn.revive();
                match WormServer::recover_durable(
                    torn.clone(),
                    self.journal_bytes,
                    device,
                    self.config.clone(),
                    clock.clone(),
                ) {
                    Ok(s) => (s, first_recovery_writes),
                    Err((e, _)) => return Err(TortureError::Recovery(e)),
                }
            }
            Err((e, _)) => return Err(TortureError::Recovery(e)),
        };
        let recovery_nanos = recovery_started.elapsed().as_nanos() as u64;
        self.verify(&srv, &torn, &clock, &acked)?;
        Ok(CutOutcome {
            cut_fired,
            recovery_writes,
            recovery_nanos,
        })
    }

    fn read_verified(
        &self,
        srv: &TornServer,
        verifier: &Verifier,
        sn: SerialNumber,
    ) -> Result<(ReadOutcome, ReadVerdict), TortureError> {
        let outcome = srv
            .read(sn)
            .map_err(|e| invariant(format!("read of acked {sn} failed after recovery: {e}")))?;
        let verdict = verifier
            .verify_read(sn, &outcome)
            .map_err(TortureError::Verify)?;
        Ok((outcome, verdict))
    }

    /// Checks the Theorem 1/2 invariants of a recovered server against
    /// the acked ground truth, then proves the server still serves by
    /// writing and verifying a probe record.
    fn verify(
        &self,
        srv: &TornServer,
        torn: &TornMedium,
        clock: &Arc<VirtualClock>,
        acked: &Acked,
    ) -> Result<(), TortureError> {
        let verifier = Verifier::new(srv.keys(), Duration::from_secs(300), clock.clone())
            .map_err(TortureError::Verify)?;
        let mut raw = vec![0u8; self.capacity as usize];
        torn.inner()
            .read_at(0, &mut raw)
            .map_err(|e| invariant(format!("raw medium scan failed: {e}")))?;

        for (sn, pat) in &acked.must_live {
            let (outcome, verdict) = self.read_verified(srv, &verifier, *sn)?;
            if !matches!(verdict, ReadVerdict::Intact { .. }) {
                return Err(invariant(format!(
                    "committed {sn} lost: verdict {verdict:?}"
                )));
            }
            let matches_bytes = match &outcome {
                ReadOutcome::Data { records, .. } => {
                    records.first().map(|b| b.as_ref()) == Some(pat.as_slice())
                }
                _ => false,
            };
            if !matches_bytes {
                return Err(invariant(format!(
                    "committed {sn}: recovered bytes differ from committed bytes"
                )));
            }
            let copies = count_occurrences(&raw, pat);
            if copies != 1 {
                return Err(invariant(format!(
                    "committed {sn}: plaintext appears {copies} times on the medium \
                     (want exactly 1 — relocation must shred or scrub the source)"
                )));
            }
        }
        for (sn, pat) in &acked.must_be_dead {
            let (_, verdict) = self.read_verified(srv, &verifier, *sn)?;
            if !matches!(verdict, ReadVerdict::ConfirmedDeleted { .. }) {
                return Err(invariant(format!(
                    "acked-deleted {sn} resurfaced: verdict {verdict:?}"
                )));
            }
            if count_occurrences(&raw, pat) != 0 {
                return Err(invariant(format!(
                    "shredded {sn}: plaintext survives on the medium"
                )));
            }
        }
        for (sn, pat) in &acked.limbo {
            let (outcome, verdict) = self.read_verified(srv, &verifier, *sn)?;
            match verdict {
                ReadVerdict::Intact { .. } => {
                    let matches_bytes = match &outcome {
                        ReadOutcome::Data { records, .. } => {
                            records.first().map(|b| b.as_ref()) == Some(pat.as_slice())
                        }
                        _ => false,
                    };
                    if !matches_bytes {
                        return Err(invariant(format!(
                            "limbo {sn} rolled back with corrupted bytes"
                        )));
                    }
                }
                ReadVerdict::ConfirmedDeleted { .. } => {
                    if count_occurrences(&raw, pat) != 0 {
                        return Err(invariant(format!(
                            "limbo {sn} proven deleted but plaintext survives"
                        )));
                    }
                }
                other => {
                    return Err(invariant(format!(
                        "limbo {sn} neither intact nor proven deleted: {other:?}"
                    )));
                }
            }
        }
        // Liveness: the recovered server must still accept and serve.
        let probe = pattern(0x4000);
        let policy = RetentionPolicy::custom(Duration::from_secs(1_000_000), Shredder::ZeroFill);
        let sn = srv
            .write(&[&probe], policy)
            .map_err(|e| invariant(format!("recovered server refuses new writes: {e}")))?;
        let (_, verdict) = self.read_verified(srv, &verifier, sn)?;
        if !matches!(verdict, ReadVerdict::Intact { .. }) {
            return Err(invariant(format!(
                "post-recovery probe write does not verify: {verdict:?}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormstore::CutStyle;

    #[test]
    fn patterns_are_unique_and_entropic() {
        let a = pattern(1);
        let b = pattern(2);
        assert_eq!(a.len(), 48);
        assert_ne!(a, b);
        assert!(a.iter().any(|&x| x != 0));
        assert_eq!(pattern(1), a, "patterns must be deterministic");
    }

    #[test]
    fn counts_overlapping_occurrences() {
        assert_eq!(count_occurrences(b"abcabcab", b"abc"), 2);
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 3);
        assert_eq!(count_occurrences(b"abc", b""), 0);
        assert_eq!(count_occurrences(b"ab", b"abc"), 0);
    }

    #[test]
    fn power_cut_detection_is_specific() {
        let cut = WormError::Store(StoreError::Device(BlockError::PowerLost { at_write: 3 }));
        assert!(is_power_cut(&cut));
        let other = WormError::Firmware("no".into());
        assert!(!is_power_cut(&other));
    }

    #[test]
    fn clean_run_profiles_and_survives_unfired_cut() {
        let rig = Torture::small();
        let sc = Scenario {
            victims: 1,
            keepers: 1,
            compact: true,
            tail_writes: 1,
        };
        let range = rig.profile(&sc).expect("clean scenario runs");
        assert!(range.last > range.first, "scenario must cross boundaries");
        // A plan beyond the last boundary never fires: clean-shutdown
        // crash, everything committed, everything verifies.
        let out = rig
            .torture(
                &sc,
                CutPlan {
                    at_write: range.last + 100,
                    style: CutStyle::Drop,
                    seed: 1,
                },
                None,
            )
            .expect("clean shutdown recovers");
        assert!(!out.cut_fired);
        assert!(out.recovery_writes > 0, "recovery journals its own work");
    }
}
